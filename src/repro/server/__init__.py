"""``repro.server`` — a networked front end for the design service.

A dependency-free asyncio HTTP layer over
:class:`repro.service.DesignService`: JSON design/sweep endpoints, an
SSE streaming sweep, request micro-batching into ``submit_many``,
admission control with backpressure (429 + ``Retry-After``), per-tenant
token-bucket quotas, Prometheus metrics, per-request trace spans, and
graceful drain on SIGTERM. Served results are byte-identical to the
in-process pipeline because both sides serialize the same
``result_summary`` dict through ``canonical_json``.

Layering (each module only imports downward):

``runtime`` → ``app`` → {``admission``, ``quota``, ``batcher``,
``protocol``, ``http``} → ``repro.service``. The blocking ``client``
and the ``loadtest`` harness sit beside the server and speak only the
wire protocol.
"""

from ..obs.runtime.events import NULL_LOG, EventLog
from ..obs.runtime.tracecontext import (
    TraceContext,
    format_traceparent,
    new_trace_context,
    parse_traceparent,
)
from .admission import AdmissionController
from .app import DesignServer, ServerConfig
from .batcher import RequestBatcher
from .client import DesignClient
from .loadtest import LoadtestConfig, merge_into_bench, run_loadtest
from .quota import QuotaManager, sanitize_tenant
from .runtime import ServerHandle, run_server, serve, start_in_thread

__all__ = [
    "AdmissionController",
    "DesignClient",
    "DesignServer",
    "EventLog",
    "LoadtestConfig",
    "NULL_LOG",
    "QuotaManager",
    "RequestBatcher",
    "ServerConfig",
    "ServerHandle",
    "TraceContext",
    "format_traceparent",
    "merge_into_bench",
    "new_trace_context",
    "parse_traceparent",
    "run_server",
    "sanitize_tenant",
    "serve",
    "start_in_thread",
]
