"""Per-tenant token-bucket quotas for the design server.

Tenancy is declared by the ``X-Tenant`` request header; requests without
one are pooled under :data:`DEFAULT_TENANT`. Each tenant owns one
classic token bucket — ``burst`` capacity, refilled at ``rate`` tokens
per second — so short spikes up to the burst are absorbed while the
sustained rate is capped. A rejected request learns exactly how long
until the next token (the 429's ``Retry-After``).

Tenant names are *client-controlled* strings that end up as metric label
values, so they pass through :func:`sanitize_tenant` first: length-capped
and stripped of control characters (the sanitizer lives in
:mod:`repro.obs.runtime.events`, which applies the same scrubbing to
event-log fields, and is re-exported here), then escaped per the
Prometheus exposition format by
:func:`repro.service.metrics.metric_key` at the labelling site. The
injection regression tests in ``tests/test_server.py`` hold both
layers to that contract.

The clock is injected (defaults to ``time.monotonic``) so quota math is
unit-testable with a fake clock and the module stays deterministic under
test.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..errors import ConfigurationError

# The sanitizer (and its constants) moved to repro.obs.runtime.events
# when the runtime event log started scrubbing tenant ids with the
# same policy; re-exported here so existing importers keep working.
from ..obs.runtime.events import (  # noqa: F401  (re-export)
    DEFAULT_TENANT,
    MAX_TENANT_CHARS,
    sanitize_tenant,
)


@dataclass
class TokenBucket:
    """One tenant's bucket: ``burst`` capacity, ``rate`` tokens/second."""

    rate: float
    burst: float
    tokens: float
    last: float

    def refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.last)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.last = now

    def try_take(self, now: float) -> Tuple[bool, float]:
        """Consume one token; on failure return seconds until the next."""
        self.refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        if self.rate <= 0:
            return False, math.inf
        return False, (1.0 - self.tokens) / self.rate


class QuotaManager:
    """Token buckets keyed by sanitized tenant id.

    ``rate <= 0`` with ``burst > 0`` gives every tenant a fixed budget
    that never refills; ``rate=None``-style unlimited service is spelled
    as a very large rate by the caller (the server's default is generous
    enough that single-tenant test traffic never trips it).
    """

    def __init__(
        self,
        rate: float = 50.0,
        burst: float = 100.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if burst < 1:
            raise ConfigurationError(
                f"quota burst must be >= 1, got {burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}

    def allow(self, tenant: str) -> Tuple[bool, float]:
        """Charge one request to ``tenant``.

        Returns ``(True, 0.0)`` when admitted, else ``(False,
        retry_after_s)`` where ``retry_after_s`` is the time until the
        bucket holds a full token again.
        """
        now = self._clock()
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                rate=self.rate, burst=self.burst,
                tokens=self.burst, last=now,
            )
            self._buckets[tenant] = bucket
        return bucket.try_take(now)

    def tenants(self) -> Tuple[str, ...]:
        """Every tenant that has been charged at least once."""
        return tuple(sorted(self._buckets))

    def remaining(self, tenant: str) -> float:
        """Current token count for ``tenant`` (burst if never seen)."""
        bucket = self._buckets.get(tenant)
        if bucket is None:
            return self.burst
        bucket.refill(self._clock())
        return bucket.tokens
