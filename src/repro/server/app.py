"""The design server: routes, middleware, and streaming.

Request path for design work (the order is the architecture):

```
accept → parse → admission (bounded queue, 429 + Retry-After)
               → quota     (per-tenant token bucket, 429 + Retry-After)
               → batcher   (micro-batch into DesignService.submit_many)
               → service   (cache / coalesce / execute)
               → respond   (canonical JSON, byte-identical to in-process)
```

Routes:

* ``POST /v1/design`` — one job; responds with the flat result summary.
* ``POST /v1/sweep`` — a grid; all point records in one response.
* ``POST /v1/sweep?stream=1`` (or ``/v1/sweep/stream``) — SSE: one
  ``point`` event per completed grid point, a final ``done`` event.
* ``GET /v1/jobs/<fingerprint>`` — cache lookup by job fingerprint
  (side-effect-free: uses :meth:`ResultCache.peek`).
* ``GET /healthz`` — liveness (always 200 while the process runs).
* ``GET /readyz`` — readiness (503 once draining).
* ``GET /metrics`` — Prometheus text exposition: the server's own
  registry plus the wrapped service's, via :mod:`repro.obs.export`.

Every request runs inside a tracer span (``category="server"``) carrying
route/tenant/status, so one Chrome trace shows the HTTP layer and the
pipeline stages it triggered.
"""

from __future__ import annotations

import asyncio
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import (
    ConfigurationError,
    JobExecutionError,
    ProtocolError,
    ReproError,
)
from ..obs.export import escape_label_value, to_prometheus
from ..obs.flight import (
    FlightRecorder,
    RingTracer,
    StallWatchdog,
    build_flight_report,
    write_flight_dump,
)
from ..obs.runtime.events import EventLog
from ..obs.runtime.tracecontext import (
    TraceContext,
    new_trace_context,
    parse_traceparent,
)
from ..obs.trace import Tracer, active
from ..service.api import DesignService
from ..service.jobs import job_for_point
from ..service.metrics import MetricsRegistry
from . import protocol
from .admission import AdmissionController
from .batcher import RequestBatcher
from .http import HttpRequest, HttpResponse, SseStream, read_request, response_bytes
from .quota import QuotaManager, sanitize_tenant


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``repro serve`` lets you turn."""

    host: str = "127.0.0.1"
    port: int = 8014
    #: Service parallelism (worker processes; 1 = in-process serial).
    jobs: int = 1
    #: Optional on-disk result cache shared across restarts.
    cache_dir: Optional[str] = None
    #: Admission bounds: executing + queued requests.
    max_inflight: int = 8
    max_queue: int = 32
    #: Per-tenant token bucket (tokens/second, bucket capacity).
    quota_rate: float = 50.0
    quota_burst: float = 100.0
    #: Micro-batching window and size cap.
    batch_window_s: float = 0.002
    batch_max: int = 16
    #: Request-body and sweep-size ceilings.
    max_body_bytes: int = 1 << 20
    max_sweep_points: int = 4096
    #: Graceful-drain budget before the server stops waiting.
    drain_timeout_s: float = 10.0
    #: Runtime event-log ring size and optional JSONL sink path.
    event_capacity: int = 512
    event_log_path: Optional[str] = None
    #: Size cap for the JSONL sink in MB; crossing it rotates the file
    #: to ``<path>.1`` (0 = unbounded).
    event_log_max_mb: float = 0.0
    #: Events shown in the ``/v1/debug`` tail.
    debug_tail: int = 32
    #: Flight recorder: where post-mortem dumps land, span-ring size,
    #: metrics-snapshot ring size and cadence. The recorder itself is
    #: always on — these only bound what it remembers.
    flight_dir: str = "."
    flight_spans: int = 256
    flight_snapshots: int = 32
    flight_snapshot_interval_s: float = 5.0
    #: Stall watchdog: check cadence, the event loop's heartbeat budget,
    #: and how old a pending batch / in-flight flush may grow before the
    #: batcher (or the worker pool behind it) is declared wedged.
    #: ``watchdog_enabled=False`` skips the thread entirely (tests).
    watchdog_enabled: bool = True
    watchdog_interval_s: float = 0.25
    watchdog_loop_lag_s: float = 2.0
    watchdog_batch_stall_s: float = 30.0
    #: Simulation backend for the wrapped service's jobs (``None`` =
    #: env/default resolution; see :mod:`repro.sim.backend`). Results
    #: are byte-identical across backends, so this is a pure throughput
    #: knob — it never affects response payloads or cache validity.
    sim_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.batch_window_s < 0:
            raise ConfigurationError(
                f"batch_window_s must be >= 0, got {self.batch_window_s}"
            )
        if self.event_log_max_mb < 0:
            raise ConfigurationError(
                f"event_log_max_mb must be >= 0, got {self.event_log_max_mb}"
            )
        if self.watchdog_interval_s <= 0 or self.watchdog_loop_lag_s <= 0 \
                or self.watchdog_batch_stall_s <= 0:
            raise ConfigurationError(
                "watchdog intervals/budgets must be > 0"
            )
        if self.max_body_bytes < 1:
            raise ConfigurationError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        if self.sim_backend is not None:
            # Typed rejection at config time: a typo'd backend must not
            # surface as a per-request failure after the server is up.
            from ..sim.backend import resolve_backend

            resolve_backend(self.sim_backend)


class DesignServer:
    """Asyncio HTTP front end over one :class:`DesignService`."""

    def __init__(
        self,
        service: DesignService,
        config: ServerConfig = ServerConfig(),
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        clock: Any = time.monotonic,
        events: Optional[EventLog] = None,
    ) -> None:
        self.service = service
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        # Span capture is always on: callers may inject their own
        # tracer, otherwise a bounded ring keeps the most recent spans
        # for flight dumps at a fixed memory cost. Tracing never touches
        # response payloads, so served summaries stay byte-identical.
        self.tracer = (
            active(tracer) if tracer is not None
            else RingTracer(capacity=config.flight_spans)
        )
        sink_cap = (
            int(config.event_log_max_mb * 1_000_000)
            if config.event_log_max_mb > 0 else None
        )
        self.events = events if events is not None else EventLog(
            capacity=config.event_capacity, sink=config.event_log_path,
            sink_max_bytes=sink_cap,
        )
        # The wrapped service reports into the same log unless it was
        # built with its own — cache hits/misses and pool recycles then
        # appear in this server's /v1/debug tail.
        if not service.events.enabled:
            service.attach_events(self.events)
        self.quotas = QuotaManager(
            rate=config.quota_rate, burst=config.quota_burst, clock=clock
        )
        self.admission = AdmissionController(
            max_inflight=config.max_inflight, max_queue=config.max_queue
        )
        self.batcher = RequestBatcher(
            service,
            window_s=config.batch_window_s,
            max_batch=config.batch_max,
            registry=self.registry,
            events=self.events,
        )
        self.flight = FlightRecorder(
            tracer=self.tracer,
            events=self.events,
            registry=self.registry,
            snapshot_capacity=config.flight_snapshots,
            snapshot_interval_s=config.flight_snapshot_interval_s,
        )
        self.watchdog = StallWatchdog(
            interval_s=config.watchdog_interval_s,
            events=self.events,
            on_trip=self._on_stall,
            on_clear=self._on_stall_cleared,
        )
        self._loop_heartbeat = self.watchdog.heartbeat(
            "event_loop", config.watchdog_loop_lag_s
        )
        self.watchdog.probe(
            "batcher",
            self.batcher.stall_probe(config.watchdog_batch_stall_s),
        )
        self._beat_task: Optional["asyncio.Task[None]"] = None
        #: ``"source: detail"`` while the watchdog says we are stalled;
        #: surfaced as a 503 on /readyz. Written from the watchdog
        #: thread, read on the event loop (atomic str/None store).
        self._stalled: Optional[str] = None
        self.last_flight_dump: Optional[str] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = time.monotonic()
        # In-flight request table for /v1/debug: request id -> live row.
        # Event-loop-thread-only, like the admission controller.
        self._active: Dict[int, Dict[str, Any]] = {}
        self._next_request_id = 0
        # Exemplar-style labels: route -> (trace id, latency seconds) of
        # the most recent request, exported as bounded-cardinality
        # gauges next to the latency summary.
        self._last_latency: Dict[str, tuple] = {}

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port
        )
        if self.config.watchdog_enabled:
            self._beat_task = asyncio.get_running_loop().create_task(
                self._beat_loop()
            )
            self.watchdog.start()

    async def _beat_loop(self) -> None:
        """Heartbeat the watchdog from the event loop; feed the recorder.

        A blocked loop cannot run this task — which is exactly how the
        watchdog detects event-loop lag. Metrics snapshots piggyback on
        the same tick (rate-limited inside the recorder), keeping the
        request paths free of snapshot work.
        """
        while True:
            self._loop_heartbeat.beat()
            self.flight.maybe_snapshot()
            await asyncio.sleep(self.config.watchdog_interval_s)

    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0``)."""
        assert self._server is not None and self._server.sockets
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def drain(self) -> bool:
        """Graceful shutdown: refuse new work, wait out the in-flight.

        Returns ``True`` if the house emptied inside the configured
        drain budget. The listening socket closes immediately so new
        connections are refused at the TCP level; requests already
        admitted run to completion and are answered.
        """
        self.admission.start_drain()
        self.watchdog.stop()
        if self._beat_task is not None:
            self._beat_task.cancel()
            self._beat_task = None
        if self.events.enabled:
            self.events.emit("drain_begin")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_timeout_s
        clean = True
        while not self.admission.drained():
            if time.monotonic() >= deadline:
                clean = False
                break
            await asyncio.sleep(0.01)
        if clean:
            await self.batcher.wait_idle()
            if self.events.enabled:
                self.events.emit("drain_idle")
        if self.events.enabled:
            self.events.emit("drain_done", clean=clean)
        self.events.close()
        return clean

    # -- flight recorder / watchdog ----------------------------------------
    def _on_stall(self, source: str, message: str) -> None:
        """Watchdog trip (watchdog thread): degrade readiness, dump."""
        self._stalled = f"{source}: {message}"
        try:
            self.flight_dump(f"watchdog:{source}")
        except OSError:
            pass  # a full disk must not take down the watchdog

    def _on_stall_cleared(self, source: str) -> None:
        if not self.watchdog.tripped:
            self._stalled = None

    def _flight_state(self) -> Dict[str, Any]:
        """Admission/batcher/pool counters for the dump's ``state``.

        Read lock-free from whatever thread triggers the dump — every
        field is an atomic attribute read, and a post-mortem prefers a
        near-consistent answer *now* over a consistent one never.
        """
        return {
            "admission": {
                "inflight": self.admission.inflight,
                "queue_depth": self.admission.queue_depth,
                "rejected": self.admission.rejected,
                "draining": self.admission.draining,
            },
            "batcher": {
                "pending": self.batcher.pending,
                "inflight_flushes": self.batcher.inflight_flushes,
                "oldest_pending_age_s": round(
                    self.batcher.oldest_pending_age_s(), 3
                ),
                "longest_flush_age_s": round(
                    self.batcher.longest_flush_age_s(), 3
                ),
            },
            "service": {
                "execution_mode": self.service.execution_mode,
                "jobs_submitted": self.service.metrics.counter(
                    "jobs_submitted"
                ),
                "jobs_completed": self.service.metrics.counter(
                    "jobs_completed"
                ),
                "jobs_failed": self.service.metrics.counter("jobs_failed"),
            },
            "active_requests": len(self._active),
        }

    def flight_dump(self, reason: str) -> "pathlib.Path":
        """Write a post-mortem ``flight-report`` now; returns its path.

        Callable from any thread (SIGQUIT handler, watchdog, crash
        path). The dump is assembled from the recorder's bounded rings
        plus live thread stacks, so it is cheap even mid-incident.
        """
        doc = build_flight_report(
            reason,
            recorder=self.flight,
            watchdog=self.watchdog,
            state=self._flight_state(),
        )
        path = write_flight_dump(doc, self.config.flight_dir)
        self.last_flight_dump = str(path)
        if self.events.enabled:
            self.events.emit("flight_dump", reason=reason, path=str(path))
        return path

    # -- connection handling -----------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(
                    reader, self.config.max_body_bytes
                )
            except ProtocolError as exc:
                await self._write(writer, self._error_response(exc))
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            if request is None:
                return
            await self._serve_request(request, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_request(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        route = self._route_label(request)
        tenant = sanitize_tenant(request.header("x-tenant"))
        # Adopt the caller's W3C trace context, or mint one for clients
        # that sent none — every request has a trace id either way, and
        # it is echoed in the response envelope.
        ctx = parse_traceparent(request.header("traceparent"))
        if ctx is None:
            ctx = new_trace_context()
        request_id = self._next_request_id
        self._next_request_id += 1
        self._active[request_id] = {
            "trace_id": ctx.trace_id,
            "route": route,
            "tenant": tenant,
            "since": time.monotonic(),
        }
        if self.events.enabled:
            self.events.emit("request_start", trace_id=ctx.trace_id,
                             tenant=tenant, route=route)
        start = time.perf_counter()
        status = 500
        try:
            with self.tracer.span(
                "http_request", category="server",
                route=route, tenant=tenant, trace_id=ctx.trace_id,
            ):
                response = await self._dispatch(
                    request, writer, route, tenant, ctx
                )
            if response is None:  # handler streamed its own body
                status = 200
                return
            status = response.status
            await self._write(writer, response)
        except ProtocolError as exc:
            status = exc.status or 400
            await self._write(writer, self._error_response(exc, ctx))
        except JobExecutionError as exc:
            status = 500
            await self._write(
                writer, self._json_error(500, str(exc), ctx=ctx)
            )
        except ReproError as exc:
            status = 400
            await self._write(
                writer, self._json_error(400, str(exc), ctx=ctx)
            )
        finally:
            duration = time.perf_counter() - start
            self._active.pop(request_id, None)
            self._last_latency[route] = (ctx.trace_id, duration)
            # Tenant values are client-supplied: sanitize_tenant bounded
            # them and metric_key escapes them into the series name.
            self.registry.incr(
                "http_requests",
                labels={"route": route, "status": status, "tenant": tenant},
            )
            self.registry.observe(
                "http_request", duration, labels={"route": route}
            )
            if self.events.enabled:
                self.events.emit(
                    "request_finish", trace_id=ctx.trace_id, tenant=tenant,
                    route=route, status=status,
                    duration_ms=round(duration * 1e3, 3),
                )

    async def _write(
        self, writer: asyncio.StreamWriter, response: HttpResponse
    ) -> None:
        writer.write(response_bytes(response))
        await writer.drain()

    # -- routing -----------------------------------------------------------
    @staticmethod
    def _route_label(request: HttpRequest) -> str:
        """Bounded-cardinality route label for metrics."""
        path = request.path
        if path.startswith("/v1/jobs/"):
            return "/v1/jobs/{fingerprint}"
        known = {
            "/v1/design", "/v1/sweep", "/v1/sweep/stream", "/v1/debug",
            "/healthz", "/readyz", "/metrics",
        }
        return path if path in known else "<unknown>"

    async def _dispatch(
        self,
        request: HttpRequest,
        writer: asyncio.StreamWriter,
        route: str,
        tenant: str,
        ctx: TraceContext,
    ) -> Optional[HttpResponse]:
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            return self._text(200, "ok\n")
        if path == "/readyz" and method == "GET":
            if self.admission.draining:
                return self._text(503, "draining\n")
            stalled = self._stalled
            if stalled is not None:
                return self._text(503, f"stalled: {stalled}\n")
            return self._text(200, "ready\n")
        if path == "/metrics" and method == "GET":
            return self._metrics_response()
        if path == "/v1/debug" and method == "GET":
            return self._debug_endpoint(ctx)
        if path.startswith("/v1/jobs/") and method == "GET":
            return self._job_lookup(path[len("/v1/jobs/"):], ctx)
        if path == "/v1/design" and method == "POST":
            return await self._design(request, tenant, ctx)
        if path in ("/v1/sweep", "/v1/sweep/stream") and method == "POST":
            stream = (
                path.endswith("/stream")
                or request.query.get("stream") in ("1", "true")
            )
            return await self._sweep(request, writer, tenant, stream, ctx)
        if path in ("/healthz", "/readyz", "/metrics", "/v1/design",
                    "/v1/sweep", "/v1/sweep/stream", "/v1/debug") or \
                path.startswith("/v1/jobs/"):
            return self._json_error(
                405, f"{method} not allowed on {path}", ctx=ctx
            )
        return self._json_error(404, f"no route for {path}", ctx=ctx)

    # -- admission / quota middleware ---------------------------------------
    def _gate(
        self, tenant: str, route: str, ctx: TraceContext
    ) -> Optional[HttpResponse]:
        """Admission + quota; a response means 'rejected, send this'."""
        if self.admission.draining:
            return self._json_error(
                503, "server is draining", retry_after_s=5.0, ctx=ctx
            )
        admitted, retry_after = self.admission.try_acquire()
        if not admitted:
            self.registry.incr("admission_rejections")
            if self.events.enabled:
                self.events.emit(
                    "admission_reject", trace_id=ctx.trace_id,
                    tenant=tenant, route=route,
                    retry_after_s=retry_after,
                )
            return self._json_error(
                429, "server at capacity", retry_after_s=retry_after,
                ctx=ctx,
            )
        allowed, quota_retry = self.quotas.allow(tenant)
        if not allowed:
            # Undo the admission slot — this request will not execute.
            self.admission.release(-1.0)
            self.registry.incr(
                "quota_rejections", labels={"tenant": tenant}
            )
            retry = float(max(1, int(quota_retry) + 1))
            if self.events.enabled:
                self.events.emit(
                    "quota_reject", trace_id=ctx.trace_id,
                    tenant=tenant, route=route, retry_after_s=retry,
                )
            return self._json_error(
                429, f"tenant {tenant!r} over quota", retry_after_s=retry,
                ctx=ctx,
            )
        return None

    # -- handlers -----------------------------------------------------------
    async def _design(
        self, request: HttpRequest, tenant: str, ctx: TraceContext
    ) -> HttpResponse:
        rejection = self._gate(tenant, "/v1/design", ctx)
        if rejection is not None:
            return rejection
        start = time.perf_counter()
        try:
            job = protocol.parse_design_request(
                protocol.decode_body(request.body)
            )
            result = await self.batcher.submit(job, trace_id=ctx.trace_id)
            return self._json(
                200, protocol.design_response(result, trace_id=ctx.trace_id)
            )
        finally:
            self.admission.release(time.perf_counter() - start)

    async def _sweep(
        self,
        request: HttpRequest,
        writer: asyncio.StreamWriter,
        tenant: str,
        stream: bool,
        ctx: TraceContext,
    ) -> Optional[HttpResponse]:
        rejection = self._gate(
            tenant, "/v1/sweep/stream" if stream else "/v1/sweep", ctx
        )
        if rejection is not None:
            return rejection
        start = time.perf_counter()
        try:
            grid = protocol.parse_sweep_request(
                protocol.decode_body(request.body),
                max_points=self.config.max_sweep_points,
            )
            specs = [
                job_for_point(
                    app=coord["app"], scale=coord["scale"], seed=grid.seed,
                    params=coord["params"], simulate=grid.simulate,
                )
                for coord in grid.points()
            ]
            if not stream:
                loop = asyncio.get_running_loop()
                trace_ids = [ctx.trace_id] * len(specs)
                results = await loop.run_in_executor(
                    None, lambda: self.service.submit_many(
                        specs, trace_ids=trace_ids
                    )
                )
                return self._json(
                    200,
                    protocol.sweep_response(
                        grid, results, trace_id=ctx.trace_id
                    ),
                )
            sse = SseStream(writer)
            await sse.start()
            for spec in specs:
                result = await self.batcher.submit(
                    spec, trace_id=ctx.trace_id
                )
                record = protocol.point_record(grid, result)
                # Echo the request's trace id on every point event so a
                # client can join a partially consumed stream against
                # server-side spans/events (mirrors /v1/design).
                record["trace_id"] = ctx.trace_id
                await sse.event(
                    "point", protocol.encode(record).decode("utf-8")
                )
            await sse.event(
                "done",
                protocol.encode(
                    {"count": len(specs), "fingerprints": len(
                        {s.fingerprint() for s in specs}),
                     "trace_id": ctx.trace_id}
                ).decode("utf-8"),
            )
            await sse.close()
            self.registry.incr("sweep_streams")
            return None
        finally:
            self.admission.release(time.perf_counter() - start)

    def _job_lookup(
        self, fingerprint: str, ctx: TraceContext
    ) -> HttpResponse:
        summary = self.service.cache.peek(fingerprint)
        if summary is None:
            return self._json_error(
                404, f"no cached result for fingerprint {fingerprint!r}",
                ctx=ctx,
            )
        return self._json(
            200,
            protocol.job_response(fingerprint, summary,
                                  trace_id=ctx.trace_id),
        )

    def _metrics_response(self) -> HttpResponse:
        # Two registries, one exposition: server-side series (http_*,
        # quota_*, admission, batching) plus the wrapped service's
        # (jobs_*, cache) — names are disjoint by construction.
        #
        # Each registry's state is captured by dump() (one lock
        # acquisition per registry) and merged into a scratch registry
        # before rendering, so one scrape is a consistent cut: the old
        # per-registry to_prometheus calls re-read live state between
        # sections and could interleave a half-applied update from a
        # concurrent request into the same exposition.
        self.registry.gauge("inflight_requests", self.admission.inflight)
        self.registry.gauge("queue_depth", self.admission.queue_depth)
        for key, count in self.events.metric_counts().items():
            self.registry.gauge(key, float(count))
        merged = MetricsRegistry()
        merged.merge(self.registry.dump())
        merged.merge(self.service.metrics.dump())
        text = to_prometheus(merged.snapshot())
        cache = self.service.cache.stats
        hits, misses = cache.hits, cache.misses
        text += (
            f"# TYPE repro_cache_hits counter\n"
            f"repro_cache_hits {hits}\n"
            f"# TYPE repro_cache_misses counter\n"
            f"repro_cache_misses {misses}\n"
        )
        text += self._exemplar_lines()
        return HttpResponse(
            status=200,
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def _exemplar_lines(self) -> str:
        """Exemplar-style gauges: last latency + trace id per route.

        The classic exposition format has no exemplar syntax, so the
        trace id rides as a label on a dedicated last-value gauge next
        to the ``repro_http_request`` summary. Cardinality is bounded
        by the route set (one line per route, latest trace wins).
        """
        if not self._last_latency:
            return ""
        lines = ["# TYPE repro_http_request_last_seconds gauge"]
        for route in sorted(self._last_latency):
            trace_id, duration = self._last_latency[route]
            lines.append(
                f'repro_http_request_last_seconds'
                f'{{route="{escape_label_value(route)}",'
                f'trace_id="{escape_label_value(trace_id)}"}} '
                f"{duration:.9f}"
            )
        return "\n".join(lines) + "\n"

    def _debug_endpoint(self, ctx: TraceContext) -> HttpResponse:
        """``GET /v1/debug``: one consistent view of the live server.

        Assembled on the event-loop thread, so the admission counters,
        in-flight table, and batcher state are one coherent instant.
        """
        now = time.monotonic()
        inflight_rows = sorted(
            (
                {
                    "trace_id": row["trace_id"],
                    "route": row["route"],
                    "tenant": row["tenant"],
                    "age_s": round(now - row["since"], 6),
                }
                for row in self._active.values()
            ),
            key=lambda row: -float(row["age_s"]),
        )
        cache = self.service.cache.stats
        metrics = self.service.metrics
        debug: Dict[str, Any] = {
            "uptime_s": round(now - self._started, 3),
            "inflight_requests": inflight_rows,
            "admission": {
                "inflight": self.admission.inflight,
                "queue_depth": self.admission.queue_depth,
                "max_inflight": self.admission.max_inflight,
                "max_queue": self.admission.max_queue,
                "capacity": self.admission.capacity,
                "rejected": self.admission.rejected,
                "draining": self.admission.draining,
                "latency_ewma_s": self.admission.latency_ewma_s,
            },
            "batcher": {
                "pending": self.batcher.pending,
                "inflight_flushes": self.batcher.inflight_flushes,
                "window_s": self.batcher.window_s,
                "max_batch": self.batcher.max_batch,
            },
            "tenants": {
                tenant: {
                    "remaining": round(self.quotas.remaining(tenant), 3),
                    "burst": self.quotas.burst,
                    "rate": self.quotas.rate,
                }
                for tenant in self.quotas.tenants()
            },
            "cache": cache.as_dict(),
            "service": {
                "jobs_submitted": metrics.counter("jobs_submitted"),
                "jobs_completed": metrics.counter("jobs_completed"),
                "jobs_coalesced": metrics.counter("jobs_coalesced"),
                "jobs_joined": metrics.counter("jobs_joined"),
                "jobs_failed": metrics.counter("jobs_failed"),
                "last_mode": self.service.execution_mode,
            },
            "events": {
                "counts": self.events.counts(),
                "recent": [
                    event.as_dict()
                    for event in self.events.tail(self.config.debug_tail)
                ],
            },
            "flight": {
                "recorder": self.flight.state(),
                "watchdog": self.watchdog.status(),
                "stalled": self._stalled,
                "dir": self.config.flight_dir,
                "last_dump": self.last_flight_dump,
            },
        }
        return self._json(
            200, protocol.debug_response(debug, trace_id=ctx.trace_id)
        )

    # -- response helpers ----------------------------------------------------
    @staticmethod
    def _json(status: int, doc: Dict[str, Any]) -> HttpResponse:
        return HttpResponse(status=status, body=protocol.encode(doc))

    @staticmethod
    def _text(status: int, text: str) -> HttpResponse:
        return HttpResponse(
            status=status,
            body=text.encode("utf-8"),
            content_type="text/plain; charset=utf-8",
        )

    def _json_error(
        self,
        status: int,
        message: str,
        retry_after_s: Optional[float] = None,
        ctx: Optional[TraceContext] = None,
    ) -> HttpResponse:
        headers: Dict[str, str] = {}
        if retry_after_s is not None:
            headers["Retry-After"] = str(max(1, int(retry_after_s)))
        return HttpResponse(
            status=status,
            body=protocol.encode(
                protocol.error_body(
                    status, message, retry_after_s,
                    trace_id=ctx.trace_id if ctx is not None else "",
                )
            ),
            headers=headers,
        )

    def _error_response(
        self, exc: ProtocolError, ctx: Optional[TraceContext] = None
    ) -> HttpResponse:
        return self._json_error(exc.status or 400, str(exc), ctx=ctx)
