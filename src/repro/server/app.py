"""The design server: routes, middleware, and streaming.

Request path for design work (the order is the architecture):

```
accept → parse → admission (bounded queue, 429 + Retry-After)
               → quota     (per-tenant token bucket, 429 + Retry-After)
               → batcher   (micro-batch into DesignService.submit_many)
               → service   (cache / coalesce / execute)
               → respond   (canonical JSON, byte-identical to in-process)
```

Routes:

* ``POST /v1/design`` — one job; responds with the flat result summary.
* ``POST /v1/sweep`` — a grid; all point records in one response.
* ``POST /v1/sweep?stream=1`` (or ``/v1/sweep/stream``) — SSE: one
  ``point`` event per completed grid point, a final ``done`` event.
* ``GET /v1/jobs/<fingerprint>`` — cache lookup by job fingerprint
  (side-effect-free: uses :meth:`ResultCache.peek`).
* ``GET /healthz`` — liveness (always 200 while the process runs).
* ``GET /readyz`` — readiness (503 once draining).
* ``GET /metrics`` — Prometheus text exposition: the server's own
  registry plus the wrapped service's, via :mod:`repro.obs.export`.

Every request runs inside a tracer span (``category="server"``) carrying
route/tenant/status, so one Chrome trace shows the HTTP layer and the
pipeline stages it triggered.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import (
    ConfigurationError,
    JobExecutionError,
    ProtocolError,
    ReproError,
)
from ..obs.export import to_prometheus
from ..obs.trace import Tracer, active
from ..service.api import DesignService
from ..service.jobs import job_for_point
from ..service.metrics import MetricsRegistry
from . import protocol
from .admission import AdmissionController
from .batcher import RequestBatcher
from .http import HttpRequest, HttpResponse, SseStream, read_request, response_bytes
from .quota import QuotaManager, sanitize_tenant


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``repro serve`` lets you turn."""

    host: str = "127.0.0.1"
    port: int = 8014
    #: Service parallelism (worker processes; 1 = in-process serial).
    jobs: int = 1
    #: Optional on-disk result cache shared across restarts.
    cache_dir: Optional[str] = None
    #: Admission bounds: executing + queued requests.
    max_inflight: int = 8
    max_queue: int = 32
    #: Per-tenant token bucket (tokens/second, bucket capacity).
    quota_rate: float = 50.0
    quota_burst: float = 100.0
    #: Micro-batching window and size cap.
    batch_window_s: float = 0.002
    batch_max: int = 16
    #: Request-body and sweep-size ceilings.
    max_body_bytes: int = 1 << 20
    max_sweep_points: int = 4096
    #: Graceful-drain budget before the server stops waiting.
    drain_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.batch_window_s < 0:
            raise ConfigurationError(
                f"batch_window_s must be >= 0, got {self.batch_window_s}"
            )
        if self.max_body_bytes < 1:
            raise ConfigurationError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )


class DesignServer:
    """Asyncio HTTP front end over one :class:`DesignService`."""

    def __init__(
        self,
        service: DesignService,
        config: ServerConfig = ServerConfig(),
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        clock: Any = time.monotonic,
    ) -> None:
        self.service = service
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = active(tracer)
        self.quotas = QuotaManager(
            rate=config.quota_rate, burst=config.quota_burst, clock=clock
        )
        self.admission = AdmissionController(
            max_inflight=config.max_inflight, max_queue=config.max_queue
        )
        self.batcher = RequestBatcher(
            service,
            window_s=config.batch_window_s,
            max_batch=config.batch_max,
            registry=self.registry,
        )
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port
        )

    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0``)."""
        assert self._server is not None and self._server.sockets
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def drain(self) -> bool:
        """Graceful shutdown: refuse new work, wait out the in-flight.

        Returns ``True`` if the house emptied inside the configured
        drain budget. The listening socket closes immediately so new
        connections are refused at the TCP level; requests already
        admitted run to completion and are answered.
        """
        self.admission.start_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_timeout_s
        while not self.admission.drained():
            if time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.01)
        await self.batcher.wait_idle()
        return True

    # -- connection handling -----------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(
                    reader, self.config.max_body_bytes
                )
            except ProtocolError as exc:
                await self._write(writer, self._error_response(exc))
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            if request is None:
                return
            await self._serve_request(request, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_request(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        route = self._route_label(request)
        tenant = sanitize_tenant(request.header("x-tenant"))
        start = time.perf_counter()
        status = 500
        try:
            with self.tracer.span(
                "http_request", category="server",
                route=route, tenant=tenant,
            ):
                response = await self._dispatch(request, writer, route, tenant)
            if response is None:  # handler streamed its own body
                status = 200
                return
            status = response.status
            await self._write(writer, response)
        except ProtocolError as exc:
            status = exc.status or 400
            await self._write(writer, self._error_response(exc))
        except JobExecutionError as exc:
            status = 500
            await self._write(writer, self._json_error(500, str(exc)))
        except ReproError as exc:
            status = 400
            await self._write(writer, self._json_error(400, str(exc)))
        finally:
            duration = time.perf_counter() - start
            # Tenant values are client-supplied: sanitize_tenant bounded
            # them and metric_key escapes them into the series name.
            self.registry.incr(
                "http_requests",
                labels={"route": route, "status": status, "tenant": tenant},
            )
            self.registry.observe(
                "http_request", duration, labels={"route": route}
            )

    async def _write(
        self, writer: asyncio.StreamWriter, response: HttpResponse
    ) -> None:
        writer.write(response_bytes(response))
        await writer.drain()

    # -- routing -----------------------------------------------------------
    @staticmethod
    def _route_label(request: HttpRequest) -> str:
        """Bounded-cardinality route label for metrics."""
        path = request.path
        if path.startswith("/v1/jobs/"):
            return "/v1/jobs/{fingerprint}"
        known = {
            "/v1/design", "/v1/sweep", "/v1/sweep/stream",
            "/healthz", "/readyz", "/metrics",
        }
        return path if path in known else "<unknown>"

    async def _dispatch(
        self,
        request: HttpRequest,
        writer: asyncio.StreamWriter,
        route: str,
        tenant: str,
    ) -> Optional[HttpResponse]:
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            return self._text(200, "ok\n")
        if path == "/readyz" and method == "GET":
            if self.admission.draining:
                return self._text(503, "draining\n")
            return self._text(200, "ready\n")
        if path == "/metrics" and method == "GET":
            return self._metrics_response()
        if path.startswith("/v1/jobs/") and method == "GET":
            return self._job_lookup(path[len("/v1/jobs/"):])
        if path == "/v1/design" and method == "POST":
            return await self._design(request, tenant)
        if path in ("/v1/sweep", "/v1/sweep/stream") and method == "POST":
            stream = (
                path.endswith("/stream")
                or request.query.get("stream") in ("1", "true")
            )
            return await self._sweep(request, writer, tenant, stream)
        if path in ("/healthz", "/readyz", "/metrics", "/v1/design",
                    "/v1/sweep", "/v1/sweep/stream") or \
                path.startswith("/v1/jobs/"):
            return self._json_error(405, f"{method} not allowed on {path}")
        return self._json_error(404, f"no route for {path}")

    # -- admission / quota middleware ---------------------------------------
    def _gate(self, tenant: str) -> Optional[HttpResponse]:
        """Admission + quota; a response means 'rejected, send this'."""
        if self.admission.draining:
            return self._json_error(
                503, "server is draining", retry_after_s=5.0
            )
        admitted, retry_after = self.admission.try_acquire()
        if not admitted:
            self.registry.incr("admission_rejections")
            return self._json_error(
                429, "server at capacity", retry_after_s=retry_after
            )
        allowed, quota_retry = self.quotas.allow(tenant)
        if not allowed:
            # Undo the admission slot — this request will not execute.
            self.admission.release(-1.0)
            self.registry.incr(
                "quota_rejections", labels={"tenant": tenant}
            )
            retry = float(max(1, int(quota_retry) + 1))
            return self._json_error(
                429, f"tenant {tenant!r} over quota", retry_after_s=retry
            )
        return None

    # -- handlers -----------------------------------------------------------
    async def _design(
        self, request: HttpRequest, tenant: str
    ) -> HttpResponse:
        rejection = self._gate(tenant)
        if rejection is not None:
            return rejection
        start = time.perf_counter()
        try:
            job = protocol.parse_design_request(
                protocol.decode_body(request.body)
            )
            result = await self.batcher.submit(job)
            return self._json(200, protocol.design_response(result))
        finally:
            self.admission.release(time.perf_counter() - start)

    async def _sweep(
        self,
        request: HttpRequest,
        writer: asyncio.StreamWriter,
        tenant: str,
        stream: bool,
    ) -> Optional[HttpResponse]:
        rejection = self._gate(tenant)
        if rejection is not None:
            return rejection
        start = time.perf_counter()
        try:
            grid = protocol.parse_sweep_request(
                protocol.decode_body(request.body),
                max_points=self.config.max_sweep_points,
            )
            specs = [
                job_for_point(
                    app=coord["app"], scale=coord["scale"], seed=grid.seed,
                    params=coord["params"], simulate=grid.simulate,
                )
                for coord in grid.points()
            ]
            if not stream:
                loop = asyncio.get_running_loop()
                results = await loop.run_in_executor(
                    None, self.service.submit_many, specs
                )
                return self._json(200, protocol.sweep_response(grid, results))
            sse = SseStream(writer)
            await sse.start()
            for spec in specs:
                result = await self.batcher.submit(spec)
                record = protocol.point_record(grid, result)
                await sse.event(
                    "point", protocol.encode(record).decode("utf-8")
                )
            await sse.event(
                "done",
                protocol.encode(
                    {"count": len(specs), "fingerprints": len(
                        {s.fingerprint() for s in specs})}
                ).decode("utf-8"),
            )
            await sse.close()
            self.registry.incr("sweep_streams")
            return None
        finally:
            self.admission.release(time.perf_counter() - start)

    def _job_lookup(self, fingerprint: str) -> HttpResponse:
        summary = self.service.cache.peek(fingerprint)
        if summary is None:
            return self._json_error(
                404, f"no cached result for fingerprint {fingerprint!r}"
            )
        return self._json(200, protocol.job_response(fingerprint, summary))

    def _metrics_response(self) -> HttpResponse:
        # Two registries, one exposition: server-side series (http_*,
        # quota_*, admission, batching) plus the wrapped service's
        # (jobs_*, cache) — names are disjoint by construction.
        self.registry.gauge("inflight_requests", self.admission.inflight)
        self.registry.gauge("queue_depth", self.admission.queue_depth)
        text = to_prometheus(self.registry.snapshot())
        text += to_prometheus(self.service.stats())
        cache = self.service.cache.stats
        text += (
            f"# TYPE repro_cache_hits counter\n"
            f"repro_cache_hits {cache.hits}\n"
            f"# TYPE repro_cache_misses counter\n"
            f"repro_cache_misses {cache.misses}\n"
        )
        return HttpResponse(
            status=200,
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    # -- response helpers ----------------------------------------------------
    @staticmethod
    def _json(status: int, doc: Dict[str, Any]) -> HttpResponse:
        return HttpResponse(status=status, body=protocol.encode(doc))

    @staticmethod
    def _text(status: int, text: str) -> HttpResponse:
        return HttpResponse(
            status=status,
            body=text.encode("utf-8"),
            content_type="text/plain; charset=utf-8",
        )

    def _json_error(
        self,
        status: int,
        message: str,
        retry_after_s: Optional[float] = None,
    ) -> HttpResponse:
        headers: Dict[str, str] = {}
        if retry_after_s is not None:
            headers["Retry-After"] = str(max(1, int(retry_after_s)))
        return HttpResponse(
            status=status,
            body=protocol.encode(
                protocol.error_body(status, message, retry_after_s)
            ),
            headers=headers,
        )

    def _error_response(self, exc: ProtocolError) -> HttpResponse:
        return self._json_error(exc.status or 400, str(exc))
