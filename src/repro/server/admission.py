"""Admission control: a bounded house for in-flight design work.

The design pipeline is CPU-bound, so accepting every connection and
letting requests pile up in the batcher would just trade an honest 429
for unbounded latency. The controller admits up to ``max_inflight``
executing requests plus ``max_queue`` waiting ones; past that, requests
are rejected immediately with a ``Retry-After`` estimate derived from an
exponentially-weighted moving average of recent request latency — the
client learns roughly when a queue slot will open rather than a made-up
constant.

All state is touched only from the server's event-loop thread (handlers
acquire before any ``await``, release in their ``finally``), so plain
attributes suffice — no lock, no atomics.

Drain mode is the graceful-shutdown half: once :meth:`start_drain` is
called new work is refused with 503 (and ``readyz`` goes red) while
already-admitted requests finish; :meth:`drained` flips when the house
is empty.
"""

from __future__ import annotations

import math
from typing import Tuple

from ..errors import ConfigurationError


class AdmissionController:
    """Bounded in-flight + queue admission with latency-aware retry hints."""

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue: int = 32,
        initial_latency_s: float = 0.05,
    ) -> None:
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if max_queue < 0:
            raise ConfigurationError(
                f"max_queue must be >= 0, got {max_queue}"
            )
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.inflight = 0
        self.rejected = 0
        self.draining = False
        #: EWMA of observed request latency, seeding the retry hints.
        self.latency_ewma_s = initial_latency_s

    @property
    def capacity(self) -> int:
        """Total admitted requests the controller tolerates."""
        return self.max_inflight + self.max_queue

    @property
    def queue_depth(self) -> int:
        """Admitted requests beyond the executing set."""
        return max(0, self.inflight - self.max_inflight)

    def retry_after_s(self) -> float:
        """Seconds a rejected client should wait before retrying.

        The full queue must drain ``queue_depth`` requests through
        ``max_inflight`` lanes, each taking ~one EWMA latency; floor of
        one second because sub-second ``Retry-After`` rounds to zero in
        the integer HTTP header and would invite a tight retry loop.
        """
        backlog = max(1, self.queue_depth)
        estimate = self.latency_ewma_s * backlog / self.max_inflight
        return float(max(1, math.ceil(estimate)))

    def try_acquire(self) -> Tuple[bool, float]:
        """Admit one request; on refusal return the retry hint."""
        if self.draining or self.inflight >= self.capacity:
            self.rejected += 1
            return False, self.retry_after_s()
        self.inflight += 1
        return True, 0.0

    def release(self, duration_s: float) -> None:
        """Return a slot and fold the request's latency into the EWMA."""
        self.inflight = max(0, self.inflight - 1)
        if duration_s >= 0:
            self.latency_ewma_s = (
                0.8 * self.latency_ewma_s + 0.2 * duration_s
            )

    # -- graceful shutdown -------------------------------------------------
    def start_drain(self) -> None:
        """Refuse new work; in-flight requests are allowed to finish."""
        self.draining = True

    def drained(self) -> bool:
        """Whether the house is empty (safe to stop the server)."""
        return self.inflight == 0
