"""Dependency-free HTTP/1.1 plumbing over asyncio streams.

Just enough protocol for the design API: request parsing (method,
target, headers, ``Content-Length`` body), fixed-length JSON responses,
and chunked transfer encoding for the SSE streaming endpoint. Keeping
it ~200 lines of stdlib is a feature — the container bakes in no web
framework, and the surface the server needs (two verbs, six routes,
one streaming mode) does not justify growing one.

Simplifications, stated loudly:

* every response carries ``Connection: close`` and the server closes
  the socket afterwards — one request per connection. The client and
  load harness open cheap localhost connections; keep-alive bookkeeping
  buys nothing at this fidelity;
* request bodies require ``Content-Length`` (no chunked *requests*);
* header count/size and body size are bounded; breaches are 4xx, not
  crashes.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from ..errors import ProtocolError

#: Reason phrases for every status the server emits.
REASONS: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

SERVER_NAME = "repro-server"

#: Hard parse limits (requests breaching them get a 4xx).
MAX_HEADER_LINES = 64
MAX_LINE_BYTES = 8192


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]  # keys lower-cased
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


@dataclass
class HttpResponse:
    """A fixed-length response a handler returns for normal routes."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Optional[HttpRequest]:
    """Parse one request; ``None`` on a cleanly closed connection."""
    try:
        request_line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise ProtocolError(f"oversized request line: {exc}",
                            status=400) from exc
    if not request_line:
        return None
    if len(request_line) > MAX_LINE_BYTES:
        raise ProtocolError("request line too long", status=400)
    parts = request_line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line: {parts!r}",
                            status=400)
    method, target, _version = parts

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES + 1):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("header line too long", status=400)
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}",
                                status=400)
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError("too many header lines", status=400)

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise ProtocolError(
                f"bad Content-Length: {length_text!r}", status=400
            ) from exc
        if length < 0:
            raise ProtocolError("negative Content-Length", status=400)
        if length > max_body_bytes:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the server's "
                f"limit of {max_body_bytes}",
                status=413,
            )
        body = await reader.readexactly(length)
    elif method == "POST":
        raise ProtocolError("POST requires Content-Length", status=400)

    split = urlsplit(target)
    return HttpRequest(
        method=method,
        target=target,
        path=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def _header_block(
    status: int, headers: Mapping[str, str]
) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{k}: {v}" for k, v in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def response_bytes(resp: HttpResponse) -> bytes:
    """Serialize a fixed-length response (headers + body)."""
    headers: Dict[str, str] = {
        "Server": SERVER_NAME,
        "Content-Type": resp.content_type,
        "Content-Length": str(len(resp.body)),
        "Connection": "close",
    }
    headers.update(resp.headers)
    return _header_block(resp.status, headers) + resp.body


class SseStream:
    """Server-sent events over chunked transfer encoding.

    The streaming sweep endpoint writes one ``event:``/``data:`` record
    per completed point; each record is its own HTTP chunk, so clients
    observe points incrementally instead of at sweep completion.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self.events_sent = 0

    async def start(
        self, extra_headers: Optional[Mapping[str, str]] = None
    ) -> None:
        headers: Dict[str, str] = {
            "Server": SERVER_NAME,
            "Content-Type": "text/event-stream",
            "Cache-Control": "no-store",
            "Transfer-Encoding": "chunked",
            "Connection": "close",
        }
        if extra_headers:
            headers.update(extra_headers)
        self._writer.write(_header_block(200, headers))
        await self._writer.drain()

    async def _chunk(self, payload: bytes) -> None:
        self._writer.write(
            f"{len(payload):X}\r\n".encode("latin-1") + payload + b"\r\n"
        )
        await self._writer.drain()

    async def event(self, name: str, data: str) -> None:
        """Emit one SSE record (``data`` must be newline-free JSON)."""
        await self._chunk(f"event: {name}\ndata: {data}\n\n".encode("utf-8"))
        self.events_sent += 1

    async def close(self) -> None:
        """Terminate the chunked body."""
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()


def parse_sse_stream(lines: Any) -> Any:
    """Yield ``(event, data)`` pairs from an iterable of text lines.

    Shared by the blocking client and tests; tolerant of leading
    keep-alive comments (lines starting with ``:``) per the SSE spec.
    """
    event: Optional[str] = None
    data_parts: list = []
    for raw in lines:
        line = raw.rstrip("\r\n")
        if line.startswith(":"):
            continue
        if line.startswith("event:"):
            event = line[len("event:"):].strip()
        elif line.startswith("data:"):
            data_parts.append(line[len("data:"):].strip())
        elif line == "":
            if event is not None or data_parts:
                yield (event or "message", "\n".join(data_parts))
            event = None
            data_parts = []


def split_host_port(netloc: str) -> Tuple[str, int]:
    """``host:port`` → tuple; the default port is 80."""
    host, _, port_text = netloc.partition(":")
    return host, int(port_text) if port_text else 80
