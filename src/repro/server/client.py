"""Blocking HTTP client for the design server.

A deliberately small ``http.client``-based client (no sessions, one
connection per request — mirroring the server's connection-per-request
model) used by the test suite, the smoke driver, and the ``repro
loadtest`` harness. It speaks exactly the :mod:`repro.server.protocol`
documents and translates HTTP failure statuses into
:class:`~repro.errors.ServerError` carrying the parsed ``Retry-After``.

``sweep_stream`` yields ``(event, doc)`` pairs as the server emits them
— the incremental-delivery property the streaming tests assert is
observable right here, not an implementation detail. A stream that ends
before the terminal ``done`` event raises :class:`ServerError` instead
of returning silently short.

Every request mints a fresh W3C trace context and sends it as a
``traceparent`` header; the server adopts the trace id, threads it
through batching and execution, and echoes it in the response envelope.
``last_trace_id`` holds the id of the most recent request so callers
can correlate client-side observations with server-side telemetry.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPResponse
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from ..errors import ProtocolError, ServerError
from ..obs.runtime.tracecontext import TraceContext, new_trace_context
from ..obs.trace import Tracer, active
from .http import parse_sse_stream, split_host_port


class DesignClient:
    """Client for one server base URL, optionally pinned to a tenant."""

    def __init__(
        self,
        base_url: str,
        tenant: Optional[str] = None,
        timeout_s: float = 60.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.netloc:
            raise ProtocolError(
                f"base_url must be http://host:port, got {base_url!r}"
            )
        self.host, self.port = split_host_port(split.netloc)
        self.base_url = f"http://{self.host}:{self.port}"
        self.tenant = tenant
        self.timeout_s = timeout_s
        self.tracer = active(tracer)
        #: Trace id of the most recent request (empty before the first).
        self.last_trace_id: str = ""

    # -- transport ----------------------------------------------------------
    def _connect(self) -> HTTPConnection:
        return HTTPConnection(self.host, self.port, timeout=self.timeout_s)

    def _new_context(self) -> TraceContext:
        ctx = new_trace_context()
        self.last_trace_id = ctx.trace_id
        return ctx

    def _headers(self, ctx: Optional[TraceContext] = None) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.tenant is not None:
            headers["X-Tenant"] = self.tenant
        if ctx is not None:
            headers["traceparent"] = ctx.to_traceparent()
        return headers

    @staticmethod
    def _retry_after(resp: HTTPResponse, doc: Mapping[str, Any]) -> float:
        header = resp.getheader("Retry-After")
        if header is not None:
            try:
                return float(header)
            except ValueError:
                pass
        value = doc.get("retry_after_s", 0.0)
        return float(value) if isinstance(value, (int, float)) else 0.0

    def _raise_for_status(
        self, resp: HTTPResponse, raw: bytes
    ) -> Dict[str, Any]:
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            doc = {}
        if 200 <= resp.status < 300:
            if not isinstance(doc, dict):
                raise ProtocolError(
                    f"expected a JSON object body, got {type(doc).__name__}"
                )
            return doc
        message = doc.get("error") if isinstance(doc, dict) else None
        raise ServerError(
            message or f"HTTP {resp.status}",
            status=resp.status,
            retry_after=self._retry_after(
                resp, doc if isinstance(doc, dict) else {}
            ),
        )

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        ctx = self._new_context()
        conn = self._connect()
        try:
            payload = (
                None if body is None
                else json.dumps(dict(body)).encode("utf-8")
            )
            with self.tracer.span(
                "client_request", category="client",
                method=method, route=path, trace_id=ctx.trace_id,
            ):
                conn.request(
                    method, path, body=payload, headers=self._headers(ctx)
                )
                resp = conn.getresponse()
                return self._raise_for_status(resp, resp.read())
        finally:
            conn.close()

    # -- endpoints ----------------------------------------------------------
    def design(
        self,
        app: str,
        scale: int = 1,
        seed: int = 2014,
        simulate: bool = True,
        params: Optional[Mapping[str, Any]] = None,
        design: Optional[Mapping[str, Any]] = None,
        graph_source: str = "trace",
    ) -> Dict[str, Any]:
        """``POST /v1/design``; returns the full response document."""
        body: Dict[str, Any] = {
            "app": app, "scale": scale, "seed": seed, "simulate": simulate,
        }
        if params:
            body["params"] = dict(params)
        if design:
            body["design"] = dict(design)
        if graph_source != "trace":
            body["graph_source"] = graph_source
        return self._request("POST", "/v1/design", body)

    def sweep(
        self,
        apps: Sequence[str],
        scales: Sequence[int] = (1,),
        param_grid: Optional[Mapping[str, Sequence[Any]]] = None,
        simulate: bool = False,
        seed: int = 2014,
    ) -> Dict[str, Any]:
        """``POST /v1/sweep``; returns all point records at once."""
        return self._request("POST", "/v1/sweep", {
            "apps": list(apps),
            "scales": list(scales),
            "param_grid": {
                k: list(v) for k, v in (param_grid or {}).items()
            },
            "simulate": simulate,
            "seed": seed,
        })

    def sweep_stream(
        self,
        apps: Sequence[str],
        scales: Sequence[int] = (1,),
        param_grid: Optional[Mapping[str, Sequence[Any]]] = None,
        simulate: bool = False,
        seed: int = 2014,
    ) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """``POST /v1/sweep/stream``; yields events as they arrive.

        The server always terminates a healthy stream with a ``done``
        event; a stream that ends without one (connection dropped, the
        server died mid-sweep) raises :class:`ServerError` so partial
        results can never be mistaken for a complete sweep.
        """
        ctx = self._new_context()
        body = json.dumps({
            "apps": list(apps),
            "scales": list(scales),
            "param_grid": {
                k: list(v) for k, v in (param_grid or {}).items()
            },
            "simulate": simulate,
            "seed": seed,
        }).encode("utf-8")
        conn = self._connect()
        try:
            conn.request(
                "POST", "/v1/sweep/stream", body=body,
                headers=self._headers(ctx),
            )
            resp = conn.getresponse()
            if resp.status != 200:
                self._raise_for_status(resp, resp.read())

            def _lines() -> Iterator[str]:
                while True:
                    line = resp.readline()
                    if not line:
                        return
                    yield line.decode("utf-8")

            done = False
            for event, data in parse_sse_stream(_lines()):
                if event == "done":
                    done = True
                yield event, json.loads(data)
            if not done:
                raise ServerError(
                    "sweep stream truncated: connection ended before the"
                    " terminal 'done' event",
                    status=0,
                )
        finally:
            conn.close()

    def job(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """``GET /v1/jobs/<fingerprint>``; ``None`` when not cached."""
        try:
            return self._request("GET", f"/v1/jobs/{fingerprint}")
        except ServerError as exc:
            if exc.status == 404:
                return None
            raise

    def debug(self) -> Dict[str, Any]:
        """``GET /v1/debug``; the runtime introspection document."""
        return self._request("GET", "/v1/debug")

    def healthz(self) -> bool:
        return self._probe("/healthz")

    def readyz(self) -> bool:
        return self._probe("/readyz")

    def _probe(self, path: str) -> bool:
        conn = self._connect()
        try:
            conn.request("GET", path, headers=self._headers())
            resp = conn.getresponse()
            resp.read()
            return resp.status == 200
        except OSError:
            return False
        finally:
            conn.close()

    def metrics(self) -> str:
        """``GET /metrics``; the raw Prometheus exposition text."""
        conn = self._connect()
        try:
            conn.request("GET", "/metrics", headers=self._headers())
            resp = conn.getresponse()
            raw = resp.read()
            if resp.status != 200:
                self._raise_for_status(resp, raw)
            return raw.decode("utf-8")
        finally:
            conn.close()

    def design_many(
        self, requests: Sequence[Mapping[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Convenience serial loop over :meth:`design` kwargs dicts."""
        return [self.design(**dict(req)) for req in requests]
