"""Closed-loop load harness for a running design server.

``repro loadtest`` drives N client threads against a server URL, each
issuing design requests round-robin over the paper's four applications,
and reports served latency percentiles plus error rates. The measured
phase runs against a *warm* cache (a warm-up pass primes every distinct
fingerprint first), so the numbers characterise the serving stack —
HTTP parse, admission, quota, batching, cache hit — rather than the
design pipeline the in-process benchmarks already cover.

The report is a versioned ``loadtest-report`` document;
:func:`merge_into_bench` folds its headline numbers into the committed
``BENCH_repro.json`` under a ``server`` section so CI tracks served
p50/p99 alongside the in-process timings. ``--max-error-rate`` turns
the harness into a gate: CI runs it at ``0``.
"""

from __future__ import annotations

import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import ConfigurationError, ServerError
from ..io import FORMAT_VERSION, load_json, save_json
from ..service.metrics import MetricsRegistry, percentile
from .client import DesignClient

DEFAULT_APPS = ("canny", "jpeg", "klt", "fluid")

#: Served-latency histogram bucket upper bounds (seconds). Tighter than
#: the service-side defaults: a warm-cache request is dominated by HTTP
#: parse + batching, so sub-millisecond resolution is where the signal is.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0,
)

#: Dotted-path descriptions merged into the bench report's ``schema``.
BENCH_SCHEMA = {
    "server.p50_ms": (
        "median served latency (milliseconds) of a warm-cache design "
        "request, measured end-to-end at the client"
    ),
    "server.p95_ms": (
        "95th-percentile served latency (milliseconds) of a warm-cache "
        "design request"
    ),
    "server.p99_ms": (
        "99th-percentile served latency (milliseconds) of a warm-cache "
        "design request"
    ),
    "server.mean_ms": "mean served latency (milliseconds)",
    "server.throughput_rps": (
        "completed requests per wall-clock second across all client "
        "threads"
    ),
    "server.error_rate": (
        "failed requests / total requests in the measured phase "
        "(429 rejections count as failures); CI gates this at 0"
    ),
    "server.requests": "total requests in the measured phase",
    "server.concurrency": "number of concurrent client threads",
}


@dataclass(frozen=True)
class LoadtestConfig:
    """Knobs for one load-test run."""

    url: str
    apps: Sequence[str] = DEFAULT_APPS
    requests: int = 200
    concurrency: int = 8
    tenant: Optional[str] = None
    timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ConfigurationError("requests must be >= 1")
        if self.concurrency < 1:
            raise ConfigurationError("concurrency must be >= 1")
        if not self.apps:
            raise ConfigurationError("apps must be non-empty")


@dataclass
class _Worker:
    """Per-thread tally; merged single-threaded after join."""

    latencies_s: List[float] = field(default_factory=list)
    ok: int = 0
    rejected: int = 0
    errors: int = 0
    first_error: str = ""


def _drive(
    config: LoadtestConfig, indices: Sequence[int], tally: _Worker
) -> None:
    client = DesignClient(
        config.url, tenant=config.tenant, timeout_s=config.timeout_s
    )
    apps = list(config.apps)
    for i in indices:
        app = apps[i % len(apps)]
        start = time.perf_counter()
        try:
            client.design(app)
        except ServerError as exc:
            if exc.status == 429:
                tally.rejected += 1
            else:
                tally.errors += 1
            if not tally.first_error:
                tally.first_error = f"{type(exc).__name__}: {exc}"
            continue
        except OSError as exc:
            tally.errors += 1
            if not tally.first_error:
                tally.first_error = f"{type(exc).__name__}: {exc}"
            continue
        tally.latencies_s.append(time.perf_counter() - start)
        tally.ok += 1


def run_loadtest(config: LoadtestConfig) -> Dict[str, Any]:
    """Warm the cache, run the measured phase, return the report doc."""
    warm_client = DesignClient(
        config.url, tenant=config.tenant, timeout_s=config.timeout_s
    )
    for app in config.apps:
        warm_client.design(app)  # prime every distinct fingerprint

    tallies = [_Worker() for _ in range(config.concurrency)]
    threads = []
    for w in range(config.concurrency):
        indices = range(w, config.requests, config.concurrency)
        thread = threading.Thread(
            target=_drive,
            args=(config, indices, tallies[w]),
            name=f"loadtest-{w}",
        )
        threads.append(thread)
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = max(time.perf_counter() - wall_start, 1e-9)

    latencies = sorted(
        lat for tally in tallies for lat in tally.latencies_s
    )
    # Bucketed view of the same observations, in Prometheus cumulative
    # ``le`` form — the registry is the single histogram implementation.
    registry = MetricsRegistry()
    for lat in latencies:
        registry.hist(
            "loadtest_latency_seconds", lat, buckets=LATENCY_BUCKETS
        )
    hist = registry.snapshot()["histograms"].get(
        "loadtest_latency_seconds",
        {"count": 0, "sum": 0.0, "buckets": {}},
    )
    ok = sum(t.ok for t in tallies)
    rejected = sum(t.rejected for t in tallies)
    errors = sum(t.errors for t in tallies)
    failed = rejected + errors
    first_error = next(
        (t.first_error for t in tallies if t.first_error), ""
    )
    return {
        "kind": "loadtest-report",
        "version": FORMAT_VERSION,
        "url": config.url,
        "apps": list(config.apps),
        "requests": config.requests,
        "concurrency": config.concurrency,
        "ok": ok,
        "rejected": rejected,
        "errors": errors,
        "error_rate": failed / config.requests,
        "first_error": first_error,
        "p50_ms": percentile(latencies, 50.0) * 1e3,
        "p95_ms": percentile(latencies, 95.0) * 1e3,
        "p99_ms": percentile(latencies, 99.0) * 1e3,
        "mean_ms": (
            sum(latencies) / len(latencies) * 1e3 if latencies else 0.0
        ),
        "throughput_rps": ok / wall_s,
        "wall_s": wall_s,
        "latency_hist": hist,
    }


def merge_into_bench(
    report: Dict[str, Any], bench_path: Union[str, pathlib.Path]
) -> Dict[str, Any]:
    """Fold headline loadtest numbers into an existing bench report.

    Returns the merged document (also written back to ``bench_path``).
    Missing bench file is an error — the loadtest annotates the
    committed benchmark, it does not replace it.
    """
    path = pathlib.Path(bench_path)
    doc = load_json(path)
    doc["server"] = {
        "p50_ms": report["p50_ms"],
        "p95_ms": report["p95_ms"],
        "p99_ms": report["p99_ms"],
        "mean_ms": report["mean_ms"],
        "throughput_rps": report["throughput_rps"],
        "error_rate": report["error_rate"],
        "requests": report["requests"],
        "concurrency": report["concurrency"],
    }
    schema = dict(doc.get("schema", {}))
    schema.update(BENCH_SCHEMA)
    doc["schema"] = schema
    save_json(doc, path)
    return doc


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable one-screen summary."""
    lines = [
        f"loadtest against {report['url']}",
        (
            f"  {report['requests']} requests x "
            f"{report['concurrency']} threads over "
            f"{report['apps']}"
        ),
        (
            f"  ok {report['ok']}, rejected {report['rejected']}, "
            f"errors {report['errors']} "
            f"(error rate {report['error_rate']:.3f})"
        ),
        (
            f"  latency p50 {report['p50_ms']:.2f}ms, "
            f"p95 {report.get('p95_ms', 0.0):.2f}ms, "
            f"p99 {report['p99_ms']:.2f}ms, "
            f"mean {report['mean_ms']:.2f}ms"
        ),
        f"  throughput {report['throughput_rps']:.1f} req/s",
    ]
    hist = report.get("latency_hist") or {}
    buckets = hist.get("buckets") or {}
    if hist.get("count"):
        lines.append("  latency histogram (cumulative):")
        total = hist["count"]
        for bound, cum in buckets.items():
            label = (
                "+Inf" if bound == "+Inf"
                else f"<= {float(bound) * 1e3:.1f}ms"
            )
            bar = "#" * round(20 * cum / total) if total else ""
            lines.append(f"    {label:>12} {cum:>6} {bar}")
    if report["first_error"]:
        lines.append(f"  first error: {report['first_error']}")
    return "\n".join(lines)
