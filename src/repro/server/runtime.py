"""Server lifecycle: event loop, signals, and in-thread embedding.

Two ways to run a :class:`~repro.server.app.DesignServer`:

* :func:`serve` — the ``repro serve`` CLI path. Owns the event loop,
  installs SIGTERM/SIGINT handlers, blocks until a signal arrives, then
  drains gracefully (stop accepting → finish in-flight → close the
  service, reaping its process pool).
* :func:`start_in_thread` — embeds the whole stack in a background
  thread with its own loop, returning a :class:`ServerHandle` whose
  ``url`` is immediately usable and whose ``stop()`` performs the same
  graceful drain. Tests, the smoke driver, and in-process load tests
  use this; it is also the reference for "how do I run this behind my
  own supervisor".
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import threading
from typing import Callable, Optional

from ..errors import ServerError
from ..obs.runtime.events import EventLog
from ..obs.trace import Tracer
from ..service.api import DesignService
from ..service.metrics import MetricsRegistry
from .app import DesignServer, ServerConfig


def build_service(config: ServerConfig) -> DesignService:
    """The service a standalone server wraps, per the config knobs."""
    return DesignService(
        jobs=config.jobs,
        cache_dir=config.cache_dir,
        sim_backend=config.sim_backend,
    )


async def run_server(
    config: ServerConfig,
    service: Optional[DesignService] = None,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    events: Optional[EventLog] = None,
    stop: Optional[asyncio.Event] = None,
    install_signals: bool = False,
    ready: Optional[Callable[[DesignServer], None]] = None,
) -> bool:
    """Start, wait for ``stop`` (or a signal), drain, close.

    Returns whether the drain completed inside its budget. The service
    is closed on exit only if this function created it.
    """
    own_service = service is None
    if service is None:
        service = build_service(config)
    server = DesignServer(
        service, config=config, registry=registry, tracer=tracer,
        events=events,
    )
    stop_event = stop if stop is not None else asyncio.Event()
    await server.start()
    loop = asyncio.get_running_loop()
    if install_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, stop_event.set)
        # SIGQUIT is the operator's "explain yourself" signal (the JVM
        # thread-dump convention): write a flight report and keep
        # serving. The handler only schedules the dump; the write runs
        # on the default executor so the loop never blocks on disk.
        def _sigquit_dump() -> None:
            loop.run_in_executor(None, server.flight_dump, "sigquit")

        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(signal.SIGQUIT, _sigquit_dump)
    try:
        if ready is not None:
            ready(server)
        await stop_event.wait()
        return await server.drain()
    except asyncio.CancelledError:
        raise
    except BaseException as exc:
        # Crash path: capture the process state *before* unwinding so
        # the post-mortem shows what every thread was doing.
        with contextlib.suppress(Exception):
            server.flight_dump(f"crash:{type(exc).__name__}")
        raise
    finally:
        if install_signals:
            signums = (signal.SIGTERM, signal.SIGINT, signal.SIGQUIT)
            for signum in signums:
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.remove_signal_handler(signum)
        if own_service:
            service.close()


def serve(
    config: ServerConfig,
    ready: Optional[Callable[[DesignServer], None]] = None,
) -> int:
    """Blocking entry point for ``repro serve``; returns an exit code."""
    drained = asyncio.run(
        run_server(config, install_signals=True, ready=ready)
    )
    return 0 if drained else 1


class ServerHandle:
    """A server running in a daemon thread, stoppable from the outside."""

    def __init__(
        self,
        config: ServerConfig,
        service: Optional[DesignService] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self.server: Optional[DesignServer] = None
        self.drained: Optional[bool] = None
        self.error: Optional[BaseException] = None

        def _main() -> None:
            async def _run() -> None:
                self._loop = asyncio.get_running_loop()
                self._stop_event = asyncio.Event()

                def _on_ready(server: DesignServer) -> None:
                    self.server = server
                    self._ready.set()

                self.drained = await run_server(
                    config,
                    service=service,
                    registry=registry,
                    tracer=tracer,
                    events=events,
                    stop=self._stop_event,
                    ready=_on_ready,
                )

            try:
                asyncio.run(_run())
            except BaseException as exc:  # surfaced by url/stop below
                self.error = exc
            finally:
                self._ready.set()
                self._stopped.set()

        self._thread = threading.Thread(
            target=_main, name="repro-server", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        """Base URL once the server is listening (blocks until then)."""
        self._ready.wait(timeout=30.0)
        if self.server is None:
            raise ServerError(
                f"server failed to start: {self.error!r}"
            ) from self.error
        return self.server.url

    @property
    def port(self) -> int:
        self._ready.wait(timeout=30.0)
        if self.server is None:
            raise ServerError(
                f"server failed to start: {self.error!r}"
            ) from self.error
        return self.server.port

    def stop(self, timeout_s: float = 30.0) -> Optional[bool]:
        """Signal the loop to drain and join the thread.

        Returns the drain verdict (``None`` if the thread never ran a
        drain, e.g. startup failed). Safe to call repeatedly.
        """
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(stop_event.set)
        self._stopped.wait(timeout=timeout_s)
        self._thread.join(timeout=timeout_s)
        return self.drained

    def __enter__(self) -> "ServerHandle":
        self.url  # block until listening (or raise the startup error)
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def start_in_thread(
    config: ServerConfig,
    service: Optional[DesignService] = None,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    events: Optional[EventLog] = None,
) -> ServerHandle:
    """Run a server in a background thread; see :class:`ServerHandle`."""
    return ServerHandle(
        config, service=service, registry=registry, tracer=tracer,
        events=events,
    )
