"""Micro-batching of concurrent design requests into ``submit_many``.

Individually, a design request is a sub-millisecond computation; the
win at serving scale is *amortization* — one
:meth:`~repro.service.DesignService.submit_many` call carries a whole
window of concurrent requests, so in-batch duplicate fingerprints
coalesce to a single pipeline run and the executor sees one batch
instead of N round-trips.

Mechanics: the first enqueued request arms a ``call_later`` timer of
``window_s``; requests arriving inside the window join the pending
batch; hitting ``max_batch`` flushes immediately. A flush hands the
batch to the service on the event loop's default thread-pool executor
(the service is synchronous and thread-safe), so the loop keeps
accepting connections while designs compute. Several flushes may be in
flight at once — cross-*batch* duplicates are handled by the service's
in-flight fingerprint table, not here.

``window_s=0`` degrades gracefully to per-event-loop-tick batching:
whatever queued during the current tick flushes together — near-zero
added latency while still merging true bursts.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.runtime.events import NULL_LOG, EventLog
from ..service.api import DesignService, JobResult
from ..service.jobs import DesignJob
from ..service.metrics import MetricsRegistry

#: One pending request: the job, its requesting trace id, its future.
_Pending = Tuple[DesignJob, str, "asyncio.Future[JobResult]"]


class RequestBatcher:
    """Groups awaiting requests into service batches."""

    def __init__(
        self,
        service: DesignService,
        window_s: float = 0.002,
        max_batch: int = 16,
        registry: Optional[MetricsRegistry] = None,
        events: EventLog = NULL_LOG,
    ) -> None:
        self.service = service
        self.window_s = window_s
        self.max_batch = max(1, max_batch)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.events = events
        self._pending: List[_Pending] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._flushes: "set[asyncio.Task]" = set()
        # Stall introspection for the watchdog: when the oldest pending
        # request joined its window, and when each in-flight flush
        # started. Monotonic floats written on the event loop, read
        # from the watchdog thread — tearing-free under the GIL.
        self._pending_since: Optional[float] = None
        self._flush_starts: "Dict[asyncio.Task, float]" = {}

    async def submit(self, job: DesignJob, trace_id: str = "") -> JobResult:
        """Enqueue one job and await its result.

        ``trace_id`` rides next to the job through ``submit_many`` into
        the worker spans (never on the job — fingerprints are cache
        keys and must not depend on the requester).
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[JobResult]" = loop.create_future()
        if not self._pending:
            self._pending_since = time.monotonic()
        self._pending.append((job, trace_id, future))
        if len(self._pending) >= self.max_batch:
            self._flush(reason="full")
        elif self._timer is None:
            self._timer = loop.call_later(self.window_s, self._flush)
        return await future

    @property
    def inflight_flushes(self) -> int:
        """Batches currently executing in the thread pool."""
        return len(self._flushes)

    @property
    def pending(self) -> int:
        """Requests waiting in the current (unflushed) window."""
        return len(self._pending)

    def oldest_pending_age_s(self) -> float:
        """Seconds the oldest unflushed request has been waiting."""
        since = self._pending_since
        if since is None or not self._pending:
            return 0.0
        return time.monotonic() - since

    def longest_flush_age_s(self) -> float:
        """Seconds the longest-running in-flight flush has been out."""
        starts = list(self._flush_starts.values())
        if not starts:
            return 0.0
        return time.monotonic() - min(starts)

    def stall_probe(self, max_age_s: float) -> Callable[[], Optional[str]]:
        """A watchdog probe over both stall modes.

        A *pending* request older than ``max_age_s`` means the flush
        timer is wedged (the window should have fired long ago); an
        *in-flight* flush older than ``max_age_s`` means ``submit_many``
        is stuck — a hung worker pool looks exactly like this from the
        event loop's side.
        """

        def check() -> Optional[str]:
            pending_age = self.oldest_pending_age_s()
            if pending_age > max_age_s:
                return (
                    f"oldest pending request waiting {pending_age:.2f}s "
                    f"(window {self.window_s}s, budget {max_age_s:.2f}s)"
                )
            flush_age = self.longest_flush_age_s()
            if flush_age > max_age_s:
                return (
                    f"flush in executor for {flush_age:.2f}s "
                    f"(budget {max_age_s:.2f}s) — worker pool may be hung"
                )
            return None

        return check

    async def wait_idle(self) -> None:
        """Flush anything pending and wait for all batches to finish."""
        self._flush()
        while self._flushes:
            await asyncio.gather(*tuple(self._flushes),
                                 return_exceptions=True)

    def _flush(self, reason: str = "window") -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        self._pending_since = None
        if not batch:
            return
        if self.events.enabled:
            # A flush serves many traces; the batch event carries the
            # first request's id as its anchor plus the full size.
            self.events.emit(
                "batch_flush", trace_id=batch[0][1],
                size=len(batch), reason=reason,
            )
        task = asyncio.get_running_loop().create_task(self._run_batch(batch))
        self._flushes.add(task)
        self._flush_starts[task] = time.monotonic()
        task.add_done_callback(self._on_flush_done)

    def _on_flush_done(self, task: "asyncio.Task") -> None:
        self._flushes.discard(task)
        self._flush_starts.pop(task, None)

    async def _run_batch(self, batch: List[_Pending]) -> None:
        jobs = [job for job, _, _ in batch]
        trace_ids = [trace_id for _, trace_id, _ in batch]
        loop = asyncio.get_running_loop()
        self.registry.incr("server_batches")
        self.registry.hist(
            "server_batch_size", float(len(jobs)),
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
        )
        try:
            results = await loop.run_in_executor(
                None, lambda: self.service.submit_many(
                    jobs, trace_ids=trace_ids
                )
            )
        except Exception as exc:
            for _, _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, _, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)
