"""Wire schemas of the networked design service.

One module owns every JSON document that crosses the HTTP boundary, in
both directions:

* requests — ``parse_design_request`` / ``parse_sweep_request`` turn
  client bodies into the same :class:`~repro.service.jobs.DesignJob` /
  :class:`~repro.sweep.SweepGrid` objects the in-process API uses, so
  validation is the library's own (unknown apps, bad scales and unknown
  ``SystemParams`` fields are rejected by the constructors, not by a
  parallel schema);
* responses — ``design_response`` / ``sweep_response`` / ``job_response``
  / ``error_body`` build the versioned ``kind`` envelopes, and
  :func:`encode` renders them with :func:`repro.io.canonical_json` so a
  served result is **byte-identical** to the same document produced
  in-process (sorted keys, no incidental whitespace).

The result payload inside every response is the flat
:func:`repro.flow.result_summary` dict — the exact object the service
cache stores — which is what makes the server's results comparable
byte-for-byte against :func:`repro.flow.run_experiment`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

from ..errors import ProtocolError
from ..io import FORMAT_VERSION, canonical_json
from ..service.api import JobResult
from ..service.jobs import DesignJob
from ..sim.systems import SystemParams
from ..sweep import SweepGrid, SweepPoint

#: Document kinds stamped on server responses.
DESIGN_RESPONSE_KIND = "design-response"
SWEEP_RESPONSE_KIND = "sweep-response"
JOB_RESPONSE_KIND = "job-response"
DEBUG_RESPONSE_KIND = "debug-response"
ERROR_KIND = "error-response"

#: Request-body keys each endpoint accepts (anything else is a 400 —
#: silently ignoring a typoed key would mask a mis-specified job).
_DESIGN_KEYS = frozenset({"app", "scale", "seed", "simulate", "params",
                          "design", "graph_source"})
_SWEEP_KEYS = frozenset({"apps", "scales", "param_grid", "simulate",
                         "seed"})


def decode_body(raw: bytes) -> Dict[str, Any]:
    """Parse a request body as one JSON object."""
    try:
        doc = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}",
                            status=400) from exc
    if not isinstance(doc, dict):
        raise ProtocolError("request body must be a JSON object",
                            status=400)
    return doc


def _reject_unknown(doc: Mapping[str, Any], allowed: frozenset) -> None:
    unknown = set(doc) - allowed
    if unknown:
        raise ProtocolError(
            f"unknown request fields: {sorted(unknown)} "
            f"(allowed: {sorted(allowed)})",
            status=400,
        )


def parse_design_request(doc: Mapping[str, Any]) -> DesignJob:
    """Build a :class:`DesignJob` from a ``POST /v1/design`` body."""
    _reject_unknown(doc, _DESIGN_KEYS)
    if "app" not in doc:
        raise ProtocolError("design request needs an 'app' field",
                            status=400)
    params = doc.get("params") or {}
    if not isinstance(params, Mapping):
        raise ProtocolError("'params' must be an object", status=400)
    design = doc.get("design") or {}
    if not isinstance(design, Mapping):
        raise ProtocolError("'design' must be an object", status=400)
    try:
        return DesignJob(
            app=doc["app"],
            scale=int(doc.get("scale", 1)),
            seed=int(doc.get("seed", 2014)),
            params=SystemParams(**dict(params)),
            simulate=bool(doc.get("simulate", True)),
            design=dict(design),
            graph_source=str(doc.get("graph_source", "trace")),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid design request: {exc}",
                            status=400) from exc


def parse_sweep_request(
    doc: Mapping[str, Any], max_points: int = 4096
) -> SweepGrid:
    """Build a :class:`SweepGrid` from a ``POST /v1/sweep`` body."""
    _reject_unknown(doc, _SWEEP_KEYS)
    if "apps" not in doc:
        raise ProtocolError("sweep request needs an 'apps' list",
                            status=400)
    param_grid = doc.get("param_grid") or {}
    if not isinstance(param_grid, Mapping):
        raise ProtocolError("'param_grid' must be an object", status=400)
    try:
        grid = SweepGrid(
            apps=list(doc["apps"]),
            scales=[int(s) for s in doc.get("scales", [1])],
            param_grid={k: list(v) for k, v in param_grid.items()},
            simulate=bool(doc.get("simulate", False)),
            seed=int(doc.get("seed", 2014)),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid sweep request: {exc}",
                            status=400) from exc
    if grid.size() > max_points:
        raise ProtocolError(
            f"sweep grid has {grid.size()} points, over the server's "
            f"limit of {max_points}",
            status=413,
        )
    return grid


# -- responses --------------------------------------------------------------
#
# Every envelope echoes the request's W3C trace id (``trace_id``) so a
# caller can join its response to server spans, the runtime event log,
# and the exemplar labels on /metrics without any out-of-band state.
def design_response(result: JobResult, trace_id: str = "") -> Dict[str, Any]:
    """The ``POST /v1/design`` success body."""
    return {
        "kind": DESIGN_RESPONSE_KIND,
        "version": FORMAT_VERSION,
        "app": result.job.app,
        "fingerprint": result.fingerprint,
        "cached": result.cached,
        "coalesced": result.coalesced,
        "summary": result.summary,
        "trace_id": trace_id,
    }


def point_record(grid: SweepGrid, result: JobResult) -> Dict[str, Any]:
    """One sweep point as its flat CSV-shaped record."""
    return SweepPoint(
        app=result.job.app,
        scale=result.job.scale,
        params=result.job.params,
        seed=grid.seed,
        summary=result.summary,
    ).record()


def sweep_response(
    grid: SweepGrid, results: List[JobResult], trace_id: str = ""
) -> Dict[str, Any]:
    """The ``POST /v1/sweep`` success body (all points at once)."""
    return {
        "kind": SWEEP_RESPONSE_KIND,
        "version": FORMAT_VERSION,
        "points": [point_record(grid, r) for r in results],
        "count": len(results),
        "trace_id": trace_id,
    }


def job_response(
    fingerprint: str, summary: Mapping[str, Any], trace_id: str = ""
) -> Dict[str, Any]:
    """The ``GET /v1/jobs/<fingerprint>`` success body."""
    return {
        "kind": JOB_RESPONSE_KIND,
        "version": FORMAT_VERSION,
        "fingerprint": fingerprint,
        "summary": dict(summary),
        "trace_id": trace_id,
    }


def debug_response(
    debug: Mapping[str, Any], trace_id: str = ""
) -> Dict[str, Any]:
    """The ``GET /v1/debug`` introspection envelope.

    ``debug`` is the live-state document assembled by
    :meth:`repro.server.app.DesignServer` — in-flight requests (with
    age and trace id), admission/queue depths, batcher window state,
    per-tenant bucket levels, cache/coalescing counters, pool health,
    and the tail of the runtime event log. The server builds it on its
    own event loop thread, so the view is internally consistent.
    """
    return {
        "kind": DEBUG_RESPONSE_KIND,
        "version": FORMAT_VERSION,
        "debug": dict(debug),
        "trace_id": trace_id,
    }


def error_body(
    status: int, message: str, retry_after_s: Optional[float] = None,
    trace_id: str = "",
) -> Dict[str, Any]:
    """The JSON error envelope every non-2xx response carries."""
    doc: Dict[str, Any] = {
        "kind": ERROR_KIND,
        "version": FORMAT_VERSION,
        "status": status,
        "error": message,
        "trace_id": trace_id,
    }
    if retry_after_s is not None:
        doc["retry_after_s"] = retry_after_s
    return doc


def encode(doc: Mapping[str, Any]) -> bytes:
    """Canonical (sorted-key, compact) JSON bytes of a response body."""
    return canonical_json(dict(doc)).encode("utf-8")
