"""Physical units and conversion helpers.

The paper's platform runs the host at 400 MHz and the kernels at 100 MHz;
time quantities inside the simulator are kept in *kernel-clock cycles*
(integers where possible) and converted to seconds only at the reporting
boundary. Keeping a single canonical clock avoids the classic
mixed-frequency bookkeeping bugs when host and kernel activity interleave.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ConfigurationError

#: Bytes per kilobyte/megabyte (binary, as used for BRAM sizing).
KIB = 1024
MIB = 1024 * 1024

#: Default clock frequencies from the paper's experimental setup (Hz).
HOST_FREQ_HZ = 400_000_000  # PowerPC 440 on the ML510
KERNEL_FREQ_HZ = 100_000_000  # DWARV-generated kernels


@dataclass(frozen=True, slots=True)
class Clock:
    """A clock domain expressed by its frequency in Hz.

    Provides exact cycle/second conversions and guards against the
    zero/negative frequencies that would silently corrupt timing math.
    """

    freq_hz: float
    name: str = "clk"

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ConfigurationError(
                f"clock {self.name!r} must have a positive frequency, "
                f"got {self.freq_hz!r}"
            )

    @property
    def period_s(self) -> float:
        """Duration of one cycle in seconds."""
        return 1.0 / self.freq_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count in this domain to seconds."""
        return cycles / self.freq_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert seconds to (possibly fractional) cycles."""
        return seconds * self.freq_hz

    def rescale(self, cycles: float, other: "Clock") -> float:
        """Express ``cycles`` of this clock in cycles of ``other``."""
        return cycles * other.freq_hz / self.freq_hz


#: Canonical clocks used throughout the reproduction.
HOST_CLOCK = Clock(HOST_FREQ_HZ, "host@400MHz")
KERNEL_CLOCK = Clock(KERNEL_FREQ_HZ, "kernel@100MHz")


def mhz(value: float) -> float:
    """Convert MHz to Hz (readability helper for component tables)."""
    return value * 1e6


def as_megabytes(num_bytes: int) -> float:
    """Bytes to MiB as a float (for reports)."""
    return num_bytes / MIB


def speedup(reference: float, improved: float) -> float:
    """Return ``reference / improved`` guarding against division by zero.

    ``reference`` is the slower/original time; values > 1 mean the
    improved configuration is faster, matching the paper's convention.
    """
    if improved <= 0:
        raise ConfigurationError(f"improved time must be positive, got {improved!r}")
    return reference / improved


def percent_saving(reference: float, improved: float) -> float:
    """Percentage reduction of ``improved`` relative to ``reference``."""
    if reference <= 0:
        raise ConfigurationError(f"reference must be positive, got {reference!r}")
    return 100.0 * (reference - improved) / reference
