"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class. Subclasses partition failures by subsystem:
profiling, interconnect design, simulation, and hardware estimation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ProfilingError(ReproError):
    """Raised by the QUAD-style profiler (bad traces, context misuse)."""


class TracerStateError(ProfilingError):
    """Raised when tracer enter/exit context operations are unbalanced."""


class AddressSpaceError(ProfilingError):
    """Raised on invalid buffer allocations or out-of-range accesses."""


class DesignError(ReproError):
    """Raised by the interconnect design algorithm."""


class MappingError(DesignError):
    """Raised when the adaptive mapping function receives an infeasible
    communication/interconnect combination (e.g. ``{K1, M2}``)."""


class PlacementError(DesignError):
    """Raised when kernels/memories cannot be placed on the mesh."""


class ResourceBudgetError(DesignError):
    """Raised when a design step would exceed the FPGA device capacity."""


class SimulationError(ReproError):
    """Raised by the discrete-event simulator."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while components still wait."""


class ConfigurationError(ReproError):
    """Raised for invalid model or system configuration parameters."""


class ServiceError(ReproError):
    """Raised by the design-service layer (:mod:`repro.service`)."""


class CacheError(ServiceError):
    """Raised on unusable result-cache state (bad directory, corrupt
    entry that cannot even be discarded)."""


class JobExecutionError(ServiceError):
    """A design job failed after exhausting its retry budget.

    Carries enough context for callers to report or re-submit:
    ``fingerprint`` of the failing job, the number of ``attempts`` made,
    and the ``last_error`` message from the final attempt.
    """

    def __init__(self, message: str, *, fingerprint: str = "",
                 attempts: int = 0, last_error: str = "") -> None:
        super().__init__(message)
        self.fingerprint = fingerprint
        self.attempts = attempts
        self.last_error = last_error


class JobTimeoutError(JobExecutionError):
    """A design job exceeded the executor's per-job timeout."""


class ServerError(ReproError):
    """Raised by the networked design service (:mod:`repro.server`).

    On the client side it carries the HTTP ``status`` the server
    answered with and, for backpressure responses (429/503), the
    parsed ``retry_after`` hint in seconds.
    """

    def __init__(self, message: str, *, status: int = 0,
                 retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ProtocolError(ServerError):
    """A malformed or oversized HTTP request/response body."""
