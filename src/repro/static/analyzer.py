"""Interval propagation: replay a :class:`~repro.static.ir.TaskGraph`.

The analyzer derives the communication graph the QUAD tracer would have
measured, without running anything. It mirrors the tracer's crediting
rules exactly (:mod:`repro.profiling.tracer` documents them; this module
deliberately re-implements rather than imports them — lint rule R6
guarantees the static ring never touches the profiler or simulator):

* a load is credited to the **last writer** of each byte it covers;
* bytes never written are credited to the entry pseudo-producer;
* a context never credits itself (self-edges are dropped);
* folding maps every non-kernel context — including the entry
  pseudo-producer — onto the host, then drops host→host edges, exactly
  as :meth:`repro.core.commgraph.CommGraph.from_profile` does.

Byte counts flow through as :class:`~repro.static.ir.Extent` intervals:
edges touched only by exactly-sized buffers come out byte-exact, edges
through dynamically sized buffers carry sound ``[lo, hi]`` bounds plus a
deterministic nominal, and every inexact edge is called out in a typed
:class:`Approximation` record — the analysis states *where* and *how
far* it over/under-approximates instead of being silently wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from ..io import FORMAT_VERSION, validate_document
from .ir import Access, AccessMode, BufferDecl, Extent, TaskGraph

#: Pseudo-producer for bytes read before any step wrote them. Matches
#: the tracer's entry sentinel (``Tracer.ENTRY``) by construction.
ENTRY = "__entry__"
#: Fold target for non-kernel contexts; matches ``repro.core.commgraph.HOST``.
HOST = "host"

#: Document kind for serialized static graphs.
STATIC_GRAPH_KIND = "static-graph"

#: Approximation kind: a buffer's size is data-dependent, so every edge
#: it feeds is an interval, not a point.
APPROX_DATA_DEPENDENT = "data-dependent-size"


@dataclass(frozen=True, slots=True)
class Approximation:
    """One typed record of where the static graph is not exact."""

    producer: str
    consumer: str
    buffer: str
    kind: str
    extent: Extent
    note: str

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (embedded in the static-graph document)."""
        return {
            "producer": self.producer,
            "consumer": self.consumer,
            "buffer": self.buffer,
            "kind": self.kind,
            "lo": self.extent.lo,
            "nominal": self.extent.nominal,
            "hi": self.extent.hi,
            "note": self.note,
        }


class _LastWriter:
    """Per-buffer last-writer map over byte offsets.

    Exactly sized buffers keep a segment list; dynamically sized buffers
    are only ever accessed whole, so a single owner suffices.
    """

    def __init__(self, decl: BufferDecl) -> None:
        self.decl = decl
        #: Disjoint, ordered (lo, hi, writer) byte segments.
        self.segments: List[Tuple[int, int, str]] = []

    def _span(self, access: Access) -> Tuple[int, int]:
        if access.nbytes is None:
            return 0, self.decl.size.nominal
        return access.offset, access.offset + access.nbytes

    def write(self, context: str, access: Access) -> None:
        lo, hi = self._span(access)
        kept = [
            (s_lo, s_hi, w)
            for s_lo, s_hi, w in self.segments
            if s_hi <= lo or s_lo >= hi
        ]
        # Writers surviving at the edges of the overwritten span.
        for s_lo, s_hi, w in self.segments:
            if s_lo < lo < s_hi:
                kept.append((s_lo, lo, w))
            if s_lo < hi < s_hi:
                kept.append((hi, s_hi, w))
        kept.append((lo, hi, context))
        kept.sort()
        self.segments = kept

    def read(self, access: Access) -> List[Tuple[Optional[str], Extent]]:
        """Credits for one load: (writer or None for entry, extent)."""
        lo, hi = self._span(access)
        if not self.decl.size.exact and access.nbytes is None:
            # Whole access of a dynamic buffer: its extent is the
            # buffer's interval, owned by at most one writer.
            owner = self.segments[0][2] if self.segments else None
            return [(owner, self.decl.size)]
        credits: List[Tuple[Optional[str], Extent]] = []
        pos = lo
        for s_lo, s_hi, writer in self.segments:
            if s_hi <= pos or s_lo >= hi:
                continue
            if s_lo > pos:  # gap: never written
                credits.append((None, Extent.exactly(s_lo - pos)))
            span_lo, span_hi = max(s_lo, pos), min(s_hi, hi)
            credits.append((writer, Extent.exactly(span_hi - span_lo)))
            pos = span_hi
        if pos < hi:
            credits.append((None, Extent.exactly(hi - pos)))
        return credits


@dataclass(frozen=True)
class StaticGraph:
    """The statically derived communication graph of one application.

    Shapes mirror :class:`~repro.core.commgraph.CommGraph` — kernel→
    kernel edges plus per-kernel host traffic, heaviest first — except
    every byte count is an :class:`~repro.static.ir.Extent` and edge
    multiplicities (``transfers``) plus approximation records ride
    along.
    """

    app: str
    kernels: Tuple[str, ...]
    kk_edges: Mapping[Tuple[str, str], Extent]
    host_in: Mapping[str, Extent]
    host_out: Mapping[str, Extent]
    work: Mapping[str, float]
    #: Transfer count per folded edge; host edges keyed with ``HOST``.
    transfers: Mapping[Tuple[str, str], int] = field(default_factory=dict)
    approximations: Tuple[Approximation, ...] = ()

    @property
    def exact(self) -> bool:
        """True when every edge is byte-exact."""
        return not self.approximations

    def nominal_kk(self) -> Dict[Tuple[str, str], int]:
        """Kernel→kernel nominal byte counts, heaviest-first order."""
        return {edge: ext.nominal for edge, ext in self.kk_edges.items()}

    def nominal_host_in(self) -> Dict[str, int]:
        """Host→kernel nominal byte counts."""
        return {k: ext.nominal for k, ext in self.host_in.items()}

    def nominal_host_out(self) -> Dict[str, int]:
        """Kernel→host nominal byte counts."""
        return {k: ext.nominal for k, ext in self.host_out.items()}

    def to_dict(self) -> Dict[str, object]:
        """Serialize to the versioned ``static-graph`` document."""

        def edge_doc(p: str, c: str, ext: Extent) -> Dict[str, object]:
            return {
                "lo": ext.lo,
                "nominal": ext.nominal,
                "hi": ext.hi,
                "transfers": self.transfers.get((p, c), 0),
            }

        return {
            "kind": STATIC_GRAPH_KIND,
            "version": FORMAT_VERSION,
            "app": self.app,
            "kernels": list(self.kernels),
            "kk_edges": [
                {"producer": p, "consumer": c, **edge_doc(p, c, ext)}
                for (p, c), ext in self.kk_edges.items()
            ],
            "host_in": {
                k: edge_doc(HOST, k, ext) for k, ext in self.host_in.items()
            },
            "host_out": {
                k: edge_doc(k, HOST, ext) for k, ext in self.host_out.items()
            },
            "work": dict(self.work),
            "approximations": [a.to_dict() for a in self.approximations],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StaticGraph":
        """Deserialize a ``static-graph`` document."""
        validate_document(dict(data), STATIC_GRAPH_KIND)

        def ext(doc: Mapping[str, object]) -> Extent:
            return Extent(int(doc["lo"]), int(doc["hi"]), int(doc["nominal"]))  # type: ignore[call-overload]

        kk: Dict[Tuple[str, str], Extent] = {}
        transfers: Dict[Tuple[str, str], int] = {}
        for e in data["kk_edges"]:  # type: ignore[index, union-attr]
            kk[(str(e["producer"]), str(e["consumer"]))] = ext(e)
            transfers[(str(e["producer"]), str(e["consumer"]))] = int(
                e["transfers"]
            )
        h_in: Dict[str, Extent] = {}
        h_out: Dict[str, Extent] = {}
        for k, e in dict(data["host_in"]).items():  # type: ignore[call-overload]
            h_in[str(k)] = ext(e)
            transfers[(HOST, str(k))] = int(e["transfers"])
        for k, e in dict(data["host_out"]).items():  # type: ignore[call-overload]
            h_out[str(k)] = ext(e)
            transfers[(str(k), HOST)] = int(e["transfers"])
        approx = tuple(
            Approximation(
                producer=str(a["producer"]),
                consumer=str(a["consumer"]),
                buffer=str(a["buffer"]),
                kind=str(a["kind"]),
                extent=Extent(int(a["lo"]), int(a["hi"]), int(a["nominal"])),
                note=str(a["note"]),
            )
            for a in data["approximations"]  # type: ignore[union-attr]
        )
        return cls(
            app=str(data["app"]),
            kernels=tuple(str(k) for k in data["kernels"]),  # type: ignore[union-attr]
            kk_edges=kk,
            host_in=h_in,
            host_out=h_out,
            work={str(k): float(v) for k, v in dict(data["work"]).items()},  # type: ignore[call-overload]
            transfers=transfers,
            approximations=approx,
        )


def analyze(task: TaskGraph) -> StaticGraph:
    """Derive the folded communication graph of a task description."""
    writers = {b.name: _LastWriter(b) for b in task.buffers}
    kernels = set(task.kernels)

    # Context-level edges, then fold — same two phases as the tracer
    # followed by CommGraph.from_profile.
    edges: Dict[Tuple[str, str], Extent] = {}
    counts: Dict[Tuple[str, str], int] = {}
    by_buffer: Dict[Tuple[str, str], Dict[str, Extent]] = {}
    work: Dict[str, float] = {}

    for s in task.flatten():
        work[s.context] = work.get(s.context, 0.0) + s.work
        for access in s.accesses:
            lw = writers[access.buffer]
            if access.mode is AccessMode.STORE:
                lw.write(s.context, access)
                continue
            for writer, extent in lw.read(access):
                producer = ENTRY if writer is None else writer
                if producer == s.context:
                    continue  # a context never credits itself
                key = (producer, s.context)
                edges[key] = edges.get(key, Extent.exactly(0)) + extent
                counts[key] = counts.get(key, 0) + 1
                buf = by_buffer.setdefault(key, {})
                buf[access.buffer] = (
                    buf.get(access.buffer, Extent.exactly(0)) + extent
                )

    # Fold non-kernel contexts (and the entry pseudo-producer) into the
    # host; drop edges that become self-edges.
    folded: Dict[Tuple[str, str], Extent] = {}
    folded_counts: Dict[Tuple[str, str], int] = {}
    folded_buffers: Dict[Tuple[str, str], Dict[str, Extent]] = {}
    for (p, c), extent in edges.items():
        fp = p if p in kernels else HOST
        fc = c if c in kernels else HOST
        if fp == fc:
            continue
        key = (fp, fc)
        folded[key] = folded.get(key, Extent.exactly(0)) + extent
        folded_counts[key] = folded_counts.get(key, 0) + counts[(p, c)]
        buf = folded_buffers.setdefault(key, {})
        for name, contrib in by_buffer[(p, c)].items():
            buf[name] = buf.get(name, Extent.exactly(0)) + contrib

    # Heaviest-first edge order, exactly as the profile fold orders its
    # edges before CommGraph.from_profile splits them.
    ordered = sorted(
        folded.items(), key=lambda item: (-item[1].nominal, item[0])
    )
    kk: Dict[Tuple[str, str], Extent] = {}
    h_in: Dict[str, Extent] = {}
    h_out: Dict[str, Extent] = {}
    approx: List[Approximation] = []
    for (p, c), extent in ordered:
        if p == HOST:
            h_in[c] = extent
        elif c == HOST:
            h_out[p] = extent
        else:
            kk[(p, c)] = extent
        for name, contrib in folded_buffers[(p, c)].items():
            if not contrib.exact:
                approx.append(
                    Approximation(
                        producer=p,
                        consumer=c,
                        buffer=name,
                        kind=APPROX_DATA_DEPENDENT,
                        extent=contrib,
                        note=(
                            f"buffer {name!r} has a data-dependent size; "
                            f"the edge is bounded, not exact"
                        ),
                    )
                )

    kernel_work: Dict[str, float] = {}
    for name in task.kernels:
        charged = work.get(name, 0.0)
        if charged <= 0:
            raise ConfigurationError(
                f"{task.app}: kernel {name!r} declares no work"
            )
        kernel_work[name] = charged

    return StaticGraph(
        app=task.app,
        kernels=task.kernels,
        kk_edges=kk,
        host_in=h_in,
        host_out=h_out,
        work=kernel_work,
        transfers=folded_counts,
        approximations=tuple(approx),
    )
