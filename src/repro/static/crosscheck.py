"""Differential cross-check: static graph vs tracer-derived graph.

Modeled on :mod:`repro.verify.conformance`: the static analyzer is only
admissible as a design input because it is *provably* in agreement with
the QUAD tracer on the applications both can see. This module is that
proof machinery — it folds a traced profile exactly as
:meth:`~repro.core.commgraph.CommGraph.from_profile` does, then diffs it
against :func:`repro.static.analyzer.analyze`'s output per edge:

* **deterministic edges** (every edge of canny, KLT, and fluid; JPEG's
  coefficient and table edges) must agree **byte-exactly** — no
  tolerances;
* **data-dependent edges** (JPEG's entropy-coded bitstreams) must
  *contain* the traced value within their declared ``[lo, hi]`` bounds,
  and each one must be named by a typed approximation record;
* per-kernel **work** counters must agree bit-for-bit (``repr``
  equality, as in the backend conformance suite);
* the heaviest-first **kernel→kernel edge order** must match, so
  Algorithm 1 walks both graphs in the same sequence.

The comparison itself is pure (:func:`compare_graphs`); only
:func:`crosscheck_app` touches the instrumented applications, through
the public :mod:`repro.apps` API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..apps import get_application
from ..core.commgraph import CommGraph
from ..core.kernel import KernelSpec
from ..errors import ConfigurationError
from ..io import FORMAT_VERSION, validate_document
from .analyzer import HOST, StaticGraph
from .apps import STATIC_APP_NAMES
from .fit import describe_application
from .ir import Extent

#: Document kind for serialized cross-check reports.
STATIC_DIFF_KIND = "static-diff"

#: Edge statuses. ``exact`` and ``within-bounds`` pass; the rest fail.
STATUS_EXACT = "exact"
STATUS_WITHIN = "within-bounds"
STATUS_MISMATCH = "mismatch"
STATUS_STATIC_ONLY = "static-only"
STATUS_TRACE_ONLY = "trace-only"

_PASSING = frozenset({STATUS_EXACT, STATUS_WITHIN})


@dataclass(frozen=True, slots=True)
class EdgeDiff:
    """One folded edge, compared across the two derivations."""

    producer: str
    consumer: str
    static: Optional[Extent]
    traced: Optional[int]
    status: str

    @property
    def ok(self) -> bool:
        """Whether this edge passes the cross-check."""
        return self.status in _PASSING

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (embedded in the static-diff document)."""
        doc: Dict[str, object] = {
            "producer": self.producer,
            "consumer": self.consumer,
            "traced": self.traced,
            "status": self.status,
        }
        if self.static is not None:
            doc["lo"] = self.static.lo
            doc["nominal"] = self.static.nominal
            doc["hi"] = self.static.hi
        return doc


@dataclass(frozen=True, slots=True)
class WorkDiff:
    """One kernel's work counter, compared bit-for-bit."""

    kernel: str
    static: float
    traced: float
    status: str

    @property
    def ok(self) -> bool:
        """Whether the counters agree."""
        return self.status == STATUS_EXACT

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (embedded in the static-diff document)."""
        return {
            "kernel": self.kernel,
            "static": self.static,
            "traced": self.traced,
            "status": self.status,
        }


@dataclass(frozen=True)
class AppCrosscheck:
    """Full per-application diff report."""

    app: str
    scale: int
    seed: int
    edges: Tuple[EdgeDiff, ...]
    work: Tuple[WorkDiff, ...]
    #: Whether both graphs order kernel→kernel edges identically
    #: (heaviest first) — Algorithm 1's walk order.
    kk_order_ok: bool
    #: Approximation records carried by the static graph.
    approximations: int

    @property
    def ok(self) -> bool:
        """Whether the application passes the cross-check."""
        return (
            self.kk_order_ok
            and all(e.ok for e in self.edges)
            and all(w.ok for w in self.work)
        )

    @property
    def exact_edges(self) -> int:
        """Number of byte-exact edges."""
        return sum(1 for e in self.edges if e.status == STATUS_EXACT)

    @property
    def bounded_edges(self) -> int:
        """Number of bounded (data-dependent) edges."""
        return sum(1 for e in self.edges if e.status == STATUS_WITHIN)

    def failures(self) -> List[str]:
        """Human-readable failure lines (empty when ok)."""
        lines = []
        if not self.kk_order_ok:
            lines.append(f"{self.app}: kernel edge order differs")
        for e in self.edges:
            if not e.ok:
                lines.append(
                    f"{self.app}: {e.producer}->{e.consumer} {e.status} "
                    f"(static={e.static}, traced={e.traced})"
                )
        for w in self.work:
            if not w.ok:
                lines.append(
                    f"{self.app}: work[{w.kernel}] static={w.static!r} "
                    f"traced={w.traced!r}"
                )
        return lines

    def to_dict(self) -> Dict[str, object]:
        """Per-application section of the static-diff document."""
        return {
            "ok": self.ok,
            "scale": self.scale,
            "seed": self.seed,
            "exact_edges": self.exact_edges,
            "bounded_edges": self.bounded_edges,
            "kk_order_ok": self.kk_order_ok,
            "approximations": self.approximations,
            "edges": [e.to_dict() for e in self.edges],
            "work": [w.to_dict() for w in self.work],
        }


def _edge_status(static: Optional[Extent], traced: Optional[int]) -> str:
    if static is None:
        return STATUS_TRACE_ONLY
    if traced is None:
        # A bounded edge admitting zero bytes may legitimately be
        # missing from the trace; anything else is a phantom edge.
        if not static.exact and static.lo == 0:
            return STATUS_WITHIN
        return STATUS_STATIC_ONLY
    if static.exact:
        return STATUS_EXACT if static.nominal == traced else STATUS_MISMATCH
    return STATUS_WITHIN if static.contains(traced) else STATUS_MISMATCH


def compare_graphs(
    static: StaticGraph,
    traced: CommGraph,
    traced_work: Mapping[str, float],
    scale: int = 1,
    seed: int = 2014,
) -> AppCrosscheck:
    """Pure per-edge diff of a static graph against a traced graph."""
    edges: List[EdgeDiff] = []
    for key in sorted(set(static.kk_edges) | set(traced.kk_edges)):
        s = static.kk_edges.get(key)
        t = traced.kk_edges.get(key)
        edges.append(
            EdgeDiff(key[0], key[1], s, t, _edge_status(s, t))
        )
    for attr in ("host_in", "host_out"):
        s_map: Mapping[str, Extent] = getattr(static, attr)
        t_map: Mapping[str, int] = getattr(traced, attr)
        for kernel in sorted(set(s_map) | set(t_map)):
            s = s_map.get(kernel)
            t = t_map.get(kernel)
            producer, consumer = (
                (HOST, kernel) if attr == "host_in" else (kernel, HOST)
            )
            edges.append(
                EdgeDiff(producer, consumer, s, t, _edge_status(s, t))
            )
    work = tuple(
        WorkDiff(
            kernel=k,
            static=static.work.get(k, 0.0),
            traced=traced_work.get(k, 0.0),
            # repr-compare: bit-for-bit, as the conformance suite does.
            status=(
                STATUS_EXACT
                if repr(static.work.get(k, 0.0)) == repr(traced_work.get(k, 0.0))
                else STATUS_MISMATCH
            ),
        )
        for k in sorted(set(static.work) | set(traced_work))
    )
    return AppCrosscheck(
        app=static.app,
        scale=scale,
        seed=seed,
        edges=tuple(edges),
        work=work,
        kk_order_ok=list(static.kk_edges) == list(traced.kk_edges),
        approximations=len(static.approximations),
    )


def crosscheck_app(
    name: str, scale: int = 1, seed: int = 2014
) -> AppCrosscheck:
    """Trace one application and diff its graph against the static one."""
    app = get_application(name, scale=scale, seed=seed)
    profile = app.profile()
    names = app.kernel_names()
    traced = CommGraph.from_profile(
        profile, [KernelSpec(n, 0.0, 0.0) for n in names]
    )
    traced_work = {n: profile.function(n).work for n in names}
    static = describe_application(app)
    return compare_graphs(static, traced, traced_work, scale=scale, seed=seed)


def crosscheck_apps(
    names: Sequence[str] = STATIC_APP_NAMES,
    scale: int = 1,
    seed: int = 2014,
) -> List[AppCrosscheck]:
    """Cross-check several applications (all four by default)."""
    if not names:
        raise ConfigurationError("no applications to cross-check")
    return [crosscheck_app(n, scale=scale, seed=seed) for n in names]


def crosscheck_to_dict(checks: Sequence[AppCrosscheck]) -> Dict[str, object]:
    """Serialize cross-check reports to the ``static-diff`` document."""
    return {
        "kind": STATIC_DIFF_KIND,
        "version": FORMAT_VERSION,
        "ok": all(c.ok for c in checks),
        "apps": {c.app: c.to_dict() for c in checks},
    }


def validate_crosscheck_doc(data: Dict[str, object]) -> None:
    """Envelope check for a loaded static-diff document."""
    validate_document(data, STATIC_DIFF_KIND)


def render_crosscheck(check: AppCrosscheck) -> str:
    """One human-readable block per application (CLI output)."""
    verdict = "ok" if check.ok else "FAIL"
    lines = [
        f"{check.app}: {verdict} — {check.exact_edges} exact edge(s), "
        f"{check.bounded_edges} bounded, "
        f"{check.approximations} approximation record(s)"
    ]
    for e in check.edges:
        tag = e.status
        if e.static is None:
            span = "-"
        elif e.static.exact:
            span = f"{e.static.nominal}"
        else:
            span = f"[{e.static.lo}, {e.static.hi}] ~{e.static.nominal}"
        lines.append(
            f"  {e.producer:>18} -> {e.consumer:<18} "
            f"static {span:>24}  traced {e.traced!s:>10}  {tag}"
        )
    for f in check.failures():
        lines.append(f"  ! {f}")
    return "\n".join(lines)
