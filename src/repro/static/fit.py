"""Trace-free calibration: fit an application from its static graph.

:func:`fit_static` is the static ring's counterpart of
:func:`repro.apps.calibration.fit_application` — same published targets,
same math (the shared :func:`~repro.apps.calibration.fit_quantities`
core), but the byte volumes and work counters come from
:func:`repro.static.analyzer.analyze` instead of a profiled execution.
Where the static graph is exact (every edge of canny, KLT, and fluid),
the fitted graph — and therefore Algorithm 1's plan — is byte-identical
to the traced path's; data-dependent edges (JPEG's bitstreams) use
their nominal extents.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..apps.base import Application
from ..apps.calibration import (
    CalibrationTargets,
    FittedApplication,
    GraphQuantities,
    fit_quantities,
)
from .analyzer import StaticGraph, analyze
from .apps import describe


def static_quantities(graph: StaticGraph) -> GraphQuantities:
    """Calibration inputs from a static graph (nominal byte counts)."""
    return GraphQuantities(
        work=dict(graph.work),
        kk_edges=graph.nominal_kk(),
        host_in=graph.nominal_host_in(),
        host_out=graph.nominal_host_out(),
    )


def describe_application(app: Application) -> "StaticGraph":
    """Analyze the static description matching a live application."""
    knobs: Dict[str, int] = {}
    steps = getattr(app, "steps", None)
    if isinstance(steps, int):
        knobs["steps"] = steps
    return analyze(describe(app.name, scale=app.scale, **knobs))


def fit_static(
    app: Application,
    theta_s_per_byte: float,
    targets: Optional[CalibrationTargets] = None,
) -> FittedApplication:
    """Fit ``app`` from its static description — no execution, no trace."""
    return fit_quantities(
        app,
        static_quantities(describe_application(app)),
        theta_s_per_byte,
        targets,
    )
