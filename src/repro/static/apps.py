"""Static task-graph descriptions of the four paper applications.

Each description mirrors its instrumented counterpart in
:mod:`repro.apps` step for step: the same buffers (loop bounds × element
sizes), the same tracer contexts in the same order, the same loads and
stores, and work declared as :mod:`repro.hls.ir` loop nests whose
expanded operation counts equal the work the instrumented apps charge.
Shared constants (window sizes, relaxation counts, block sizes) are
imported from the app modules themselves so the two views cannot drift
apart silently — and the crosscheck (:mod:`repro.static.crosscheck`)
proves byte-exact agreement on every deterministic edge.

The only quantities that are genuinely data-dependent are JPEG's two
entropy-coded stream lengths; they are declared as bounded extents
(prefix-code bit counts per block: 1–33 bits of differential DC,
64–2268 bits of run-length AC) with a nominal at the observed ≈6 / ≈140
bits per block, and surface as typed approximation records instead of
wrong numbers.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..apps.fluid import RELAX
from ..apps.jpeg import BLOCK
from ..apps.klt import ITERS, WIN
from ..errors import ConfigurationError
from ..hls.ir import Block as HlsBlock
from ..hls.ir import Loop, Op
from .ir import BufferDecl, TaskGraph, load, repeat, step, store

#: Names of the applications with static descriptions (registry order).
STATIC_APP_NAMES: Tuple[str, ...] = ("canny", "jpeg", "klt", "fluid")

_F32 = 4  # bytes per float32 element
_I16 = 2  # bytes per int16 element
_U8 = 1  # bytes per uint8 element


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def describe_canny(scale: int = 1) -> TaskGraph:
    """Canny: 4-stage pipeline over an ``n×n`` frame (n = 96·scale)."""
    n = 96 * scale
    per_pixel = HlsBlock  # alias for readability below
    return TaskGraph(
        app="canny",
        buffers=(
            BufferDecl.dense("image", (n, n), _F32),
            BufferDecl.dense("smooth", (n, n), _F32),
            BufferDecl.dense("mag", (n, n), _F32),
            BufferDecl.dense("dir", (n, n), _U8),
            BufferDecl.dense("nms", (n, n), _F32),
            BufferDecl.dense("edges", (n, n), _U8),
        ),
        kernels=(
            "gaussian_smooth",
            "sobel_gradient",
            "nonmax_suppression",
            "hysteresis",
        ),
        nodes=(
            step("frame_capture", store("image")),
            # 5×5 separable taps: 25 MACs per pixel.
            step(
                "gaussian_smooth",
                load("image"),
                store("smooth"),
                work=Loop(trip=n * n, body=per_pixel([(Op.FMUL, 25)])),
            ),
            # Two 3×3 stencils + magnitude + direction quantization.
            step(
                "sobel_gradient",
                load("smooth"),
                store("mag"),
                store("dir"),
                work=Loop(
                    trip=n * n,
                    body=per_pixel(
                        [(Op.FADD, 10), (Op.FMUL, 4), (Op.SQRT, 1), (Op.CMP, 3)]
                    ),
                ),
            ),
            # Neighbour-pair comparisons along the quantized gradient.
            step(
                "nonmax_suppression",
                load("mag"),
                load("dir"),
                store("nms"),
                work=Loop(trip=n * n, body=per_pixel([(Op.CMP, 8)])),
            ),
            # Double threshold + 8-neighbour connectivity growth.
            step(
                "hysteresis",
                load("nms"),
                store("edges"),
                work=Loop(trip=n * n, body=per_pixel([(Op.LOGIC, 12)])),
            ),
            step("display", load("edges"), load("mag")),
        ),
    )


def describe_jpeg(scale: int = 1) -> TaskGraph:
    """JPEG decode: entropy decode → dequantize → IDCT (n = 96·scale
    blocks). The two bitstream lengths are data-dependent: a block
    contributes 1–33 bits of differential DC (unary category + sign/
    amplitude, category ≤ 16) and 64–2268 bits of run-length AC (EOB
    alone is 64 bits; 63 maximal coefficients bound the other end)."""
    n = 96 * scale
    dc_bits = (1, 33, 6)  # (lo, hi, nominal) bits per block
    ac_bits = (64, 2268, 140)
    per_block = HlsBlock
    return TaskGraph(
        app="jpeg",
        buffers=(
            BufferDecl.dynamic(
                "dc_stream",
                lo=_ceil_div(dc_bits[0] * n, 8),
                hi=_ceil_div(dc_bits[1] * n, 8),
                nominal=_ceil_div(dc_bits[2] * n, 8),
            ),
            BufferDecl.dynamic(
                "ac_stream",
                lo=_ceil_div(ac_bits[0] * n, 8),
                hi=_ceil_div(ac_bits[1] * n, 8),
                nominal=_ceil_div(ac_bits[2] * n, 8),
            ),
            BufferDecl.dense("quant_table", (64,), _I16),
            BufferDecl.dense("zigzag_table", (64,), _U8),
            BufferDecl.dense("dc_coef", (n,), _I16),
            BufferDecl.dense("ac_coef", (n, 63), _I16),
            BufferDecl.dense("coef", (n, 64), _I16),
            BufferDecl.dense("pixels", (n, BLOCK, BLOCK), _U8),
        ),
        kernels=("huff_dc_dec", "huff_ac_dec", "dquantz_lum", "j_rev_dct"),
        nodes=(
            step(
                "bitstream_parse",
                store("dc_stream"),
                store("ac_stream"),
                store("quant_table"),
                store("zigzag_table"),
            ),
            step(
                "huff_dc_dec",
                load("dc_stream"),
                store("dc_coef"),
                work=Loop(trip=n, body=per_block([(Op.LOGIC, 40)])),
            ),
            step(
                "huff_ac_dec",
                load("ac_stream"),
                store("ac_coef"),
                work=Loop(trip=n, body=per_block([(Op.LOGIC, 900)])),
            ),
            step(
                "dquantz_lum",
                load("quant_table"),
                load("dc_coef"),
                load("ac_coef"),
                store("coef"),
                work=Loop(
                    trip=n, body=per_block([(Op.MUL, 64), (Op.LOAD, 64)])
                ),
            ),
            step(
                "j_rev_dct",
                load("zigzag_table"),
                load("coef"),
                store("pixels"),
                work=Loop(
                    trip=n, body=per_block([(Op.FMUL, 350), (Op.FADD, 350)])
                ),
            ),
            step("display", load("pixels")),
        ),
    )


def describe_klt(scale: int = 1) -> TaskGraph:
    """KLT: gradients feed the tracker only (n = 128·scale,
    features = 48·scale)."""
    n = 128 * scale
    n_features = 48 * scale
    win = 2 * WIN + 1
    return TaskGraph(
        app="klt",
        buffers=(
            BufferDecl.dense("img1", (n, n), _F32),
            BufferDecl.dense("img2", (n, n), _F32),
            BufferDecl.dense("features", (n_features, 2), _F32),
            BufferDecl.dense("gx", (n, n), _F32),
            BufferDecl.dense("gy", (n, n), _F32),
            BufferDecl.dense("tracked", (n_features, 2), _F32),
        ),
        kernels=("compute_gradients", "track_features"),
        nodes=(
            step(
                "frame_capture",
                store("img1"),
                store("img2"),
                store("features"),
            ),
            # Central differences: one sub + one halve per direction,
            # both directions, per pixel.
            step(
                "compute_gradients",
                load("img1"),
                store("gx"),
                store("gy"),
                work=Loop(
                    trip=n * n, body=HlsBlock([(Op.FADD, 4), (Op.FMUL, 4)])
                ),
            ),
            # Per feature × LK iteration × window pixel: bilinear sample
            # plus structure-tensor/residual MACs.
            step(
                "track_features",
                load("img1"),
                load("img2"),
                load("gx"),
                load("gy"),
                load("features"),
                store("tracked"),
                work=Loop(
                    trip=n_features,
                    body=HlsBlock.of_loops(
                        Loop(
                            trip=ITERS,
                            body=HlsBlock.of_loops(
                                Loop(
                                    trip=win * win,
                                    body=HlsBlock([(Op.FMUL, 20)]),
                                )
                            ),
                        )
                    ),
                ),
            ),
            step("display", load("tracked")),
        ),
    )


def describe_fluid(scale: int = 1, steps: int = 2) -> TaskGraph:
    """Stable fluids: diffuse → project → advect → project cycle over
    ``steps`` solver steps (n = 64·scale). The repeat is unrolled by the
    analyzer, so first-step edges (state comes from the host's scene
    setup) differ from steady-state edges (state comes from the second
    projection) exactly as in the traced graph."""
    if steps < 1:
        raise ConfigurationError("need at least one solver step")
    n = 64 * scale
    field = (n, n)
    per_cell_relax = HlsBlock([(Op.FADD, 4), (Op.FMUL, 1), (Op.FDIV, 1)])
    return TaskGraph(
        app="fluid",
        buffers=tuple(
            BufferDecl.dense(name, field, _F32)
            for name in (
                "u_state",
                "v_state",
                "d_state",
                "force_u",
                "force_v",
                "source_d",
                "u_dif",
                "v_dif",
                "d_dif",
                "u_proj",
                "v_proj",
                "u_adv",
                "v_adv",
                "d_adv",
                "display",
            )
        ),
        kernels=("diffuse", "project", "advect"),
        nodes=(
            step(
                "scene_setup",
                store("u_state"),
                store("v_state"),
                store("d_state"),
            ),
            repeat(
                steps,
                step(
                    "inject_forces",
                    store("force_u"),
                    store("force_v"),
                    store("source_d"),
                ),
                # Three Jacobi-relaxed fields, 6 ops per cell per sweep.
                step(
                    "diffuse",
                    load("u_state"),
                    load("v_state"),
                    load("d_state"),
                    load("force_u"),
                    load("force_v"),
                    load("source_d"),
                    store("u_dif"),
                    store("v_dif"),
                    store("d_dif"),
                    work=Loop(
                        trip=3,
                        body=HlsBlock.of_loops(
                            Loop(
                                trip=RELAX,
                                body=HlsBlock.of_loops(
                                    Loop(trip=n * n, body=per_cell_relax)
                                ),
                            )
                        ),
                    ),
                ),
                # Poisson solve (RELAX sweeps) + divergence + gradient.
                step(
                    "project",
                    load("u_dif"),
                    load("v_dif"),
                    store("u_proj"),
                    store("v_proj"),
                    work=Loop(
                        trip=RELAX + 2,
                        body=HlsBlock.of_loops(
                            Loop(trip=n * n, body=per_cell_relax)
                        ),
                    ),
                ),
                # Semi-Lagrangian backtrace + bilinear blend, 3 fields.
                step(
                    "advect",
                    load("u_proj"),
                    load("v_proj"),
                    store("u_adv"),
                    store("v_adv"),
                    load("d_dif"),
                    store("d_adv"),
                    work=Loop(
                        trip=3,
                        body=HlsBlock.of_loops(
                            Loop(
                                trip=n * n,
                                body=HlsBlock([(Op.FMUL, 8), (Op.FADD, 6)]),
                            )
                        ),
                    ),
                ),
                step(
                    "project",
                    load("u_adv"),
                    load("v_adv"),
                    store("u_state"),
                    store("v_state"),
                    work=Loop(
                        trip=RELAX + 2,
                        body=HlsBlock.of_loops(
                            Loop(trip=n * n, body=per_cell_relax)
                        ),
                    ),
                ),
                # Density state hand-off (no arithmetic work).
                step("diffuse", load("d_adv"), store("d_state")),
                step(
                    "render",
                    load("d_state"),
                    store("display"),
                    load("display"),
                ),
            ),
        ),
    )


#: Description builders by application name. ``**knobs`` forwards
#: app-specific shape parameters (fluid's ``steps``).
_DESCRIBERS: Dict[str, Callable[..., TaskGraph]] = {
    "canny": describe_canny,
    "jpeg": describe_jpeg,
    "klt": describe_klt,
    "fluid": describe_fluid,
}


def describe(name: str, scale: int = 1, **knobs: int) -> TaskGraph:
    """Static description of one paper application."""
    builder = _DESCRIBERS.get(name)
    if builder is None:
        raise ConfigurationError(
            f"no static description for {name!r} "
            f"(have: {', '.join(STATIC_APP_NAMES)})"
        )
    if scale < 1:
        raise ConfigurationError(f"scale must be >= 1, got {scale}")
    return builder(scale=scale, **knobs)
