"""Static communication analysis: the trace-free design path.

Derives the producer→consumer communication graph of an application
from a declarative task-graph description — loop bounds × element
sizes — without executing a single kernel, then feeds it to the same
calibration and Algorithm 1 pipeline the traced path uses
(``run_experiment(graph_source="static")``).

Modules:

* :mod:`repro.static.ir` — the access-pattern IR (buffers, steps,
  repeats, interval extents);
* :mod:`repro.static.analyzer` — last-writer interval propagation
  mirroring the tracer's crediting rules;
* :mod:`repro.static.apps` — descriptions of the four paper apps;
* :mod:`repro.static.fit` — trace-free calibration;
* :mod:`repro.static.crosscheck` — the differential proof that static
  and traced graphs agree byte-exact on deterministic edges.

Lint rule R6 (``tools/lint_repro.py``) enforces the purity guarantee:
nothing under this package may import the simulator or the profiler.
"""

from .analyzer import (
    APPROX_DATA_DEPENDENT,
    STATIC_GRAPH_KIND,
    Approximation,
    StaticGraph,
    analyze,
)
from .apps import STATIC_APP_NAMES, describe
from .fit import describe_application, fit_static, static_quantities
from .ir import (
    Access,
    AccessMode,
    BufferDecl,
    Extent,
    Repeat,
    Step,
    TaskGraph,
    load,
    repeat,
    step,
    store,
)

__all__ = [
    "APPROX_DATA_DEPENDENT",
    "STATIC_APP_NAMES",
    "STATIC_GRAPH_KIND",
    "Access",
    "AccessMode",
    "Approximation",
    "BufferDecl",
    "Extent",
    "Repeat",
    "StaticGraph",
    "Step",
    "TaskGraph",
    "analyze",
    "describe",
    "describe_application",
    "fit_static",
    "load",
    "repeat",
    "static_quantities",
    "step",
    "store",
]
