"""Access-pattern IR for static communication analysis.

A :class:`TaskGraph` is a declarative description of an application's
memory behaviour: named buffers with byte sizes, plus an ordered list of
steps, each naming the tracer context it models and declaring its loads
and stores as ranges over those buffers. The analyzer replays this
description symbolically (:mod:`repro.static.analyzer`) to derive the
producer→consumer byte counts the QUAD tracer would have measured —
without executing any kernel.

Sizes follow the paper's "loop bounds × element sizes" rule: a dense
buffer's size is the product of its loop bounds times the element size
(:meth:`BufferDecl.dense`), and a step's compute cost can be declared as
a :mod:`repro.hls.ir` loop nest whose expanded operation count *is* the
work charge (:func:`step`). Quantities that cannot be known statically —
entropy-coded stream lengths, for example — are declared as
:class:`Extent` bounds (:meth:`BufferDecl.dynamic`) and flow through the
analysis as intervals instead of silently wrong points.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple, Union

from ..errors import ConfigurationError
from ..hls.ir import Block, Loop


@dataclass(frozen=True, slots=True)
class Extent:
    """A byte count known exactly or only within bounds.

    ``lo``/``hi`` bound every possible realization; ``nominal`` is the
    deterministic representative used when a single number is needed
    (building a :class:`~repro.core.commgraph.CommGraph`, ordering
    edges). Exact quantities have ``lo == nominal == hi``.
    """

    lo: int
    hi: int
    nominal: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.nominal <= self.hi:
            raise ConfigurationError(
                f"extent needs 0 <= lo <= nominal <= hi, got "
                f"({self.lo}, {self.nominal}, {self.hi})"
            )

    @classmethod
    def exactly(cls, nbytes: int) -> "Extent":
        """An exactly known byte count."""
        return cls(nbytes, nbytes, nbytes)

    @classmethod
    def bounded(cls, lo: int, hi: int, nominal: int) -> "Extent":
        """A data-dependent byte count with sound bounds."""
        return cls(lo, hi, nominal)

    @property
    def exact(self) -> bool:
        """True when the bounds pin a single value."""
        return self.lo == self.hi

    def contains(self, nbytes: int) -> bool:
        """Whether an observed byte count falls within the bounds."""
        return self.lo <= nbytes <= self.hi

    def __add__(self, other: "Extent") -> "Extent":
        return Extent(
            self.lo + other.lo, self.hi + other.hi, self.nominal + other.nominal
        )

    def scaled(self, factor: int) -> "Extent":
        """The extent of ``factor`` back-to-back transfers."""
        if factor < 0:
            raise ConfigurationError(f"negative scale factor {factor}")
        return Extent(self.lo * factor, self.hi * factor, self.nominal * factor)


@dataclass(frozen=True, slots=True)
class BufferDecl:
    """A named buffer with a (possibly data-dependent) byte size."""

    name: str
    size: Extent

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("buffer needs a name")
        if self.size.hi <= 0:
            raise ConfigurationError(f"buffer {self.name!r} has zero size")

    @classmethod
    def dense(
        cls, name: str, shape: Sequence[int], elem_bytes: int
    ) -> "BufferDecl":
        """A dense array: loop bounds × element size."""
        if not shape or any(d <= 0 for d in shape):
            raise ConfigurationError(f"buffer {name!r}: bad shape {shape!r}")
        if elem_bytes <= 0:
            raise ConfigurationError(f"buffer {name!r}: bad element size")
        nbytes = elem_bytes
        for dim in shape:
            nbytes *= dim
        return cls(name, Extent.exactly(nbytes))

    @classmethod
    def dynamic(cls, name: str, lo: int, hi: int, nominal: int) -> "BufferDecl":
        """A buffer whose length is only known within bounds."""
        return cls(name, Extent.bounded(lo, hi, nominal))


class AccessMode(enum.Enum):
    """Whether an access reads or writes its buffer."""

    LOAD = "load"
    STORE = "store"


@dataclass(frozen=True, slots=True)
class Access:
    """One declared access: the whole buffer or an affine byte range.

    ``nbytes is None`` means the whole buffer (whatever its realized
    size). A partial range covers bytes ``[offset, offset + nbytes)``
    and is only meaningful on exactly-sized buffers.
    """

    buffer: str
    mode: AccessMode
    nbytes: Union[int, None] = None
    offset: int = 0

    def __post_init__(self) -> None:
        if not self.buffer:
            raise ConfigurationError("access needs a buffer name")
        if self.offset < 0:
            raise ConfigurationError(f"{self.buffer}: negative offset")
        if self.nbytes is not None and self.nbytes <= 0:
            raise ConfigurationError(
                f"{self.buffer}: partial access must cover positive bytes"
            )
        if self.nbytes is None and self.offset != 0:
            raise ConfigurationError(
                f"{self.buffer}: whole-buffer access cannot have an offset"
            )


def load(buffer: str, nbytes: Union[int, None] = None, offset: int = 0) -> Access:
    """Declare a read of ``buffer`` (whole buffer by default)."""
    return Access(buffer, AccessMode.LOAD, nbytes, offset)


def store(buffer: str, nbytes: Union[int, None] = None, offset: int = 0) -> Access:
    """Declare a write of ``buffer`` (whole buffer by default)."""
    return Access(buffer, AccessMode.STORE, nbytes, offset)


@dataclass(frozen=True, slots=True)
class Step:
    """One tracer context: its accesses, in program order, plus work."""

    context: str
    accesses: Tuple[Access, ...]
    work: float = 0.0

    def __post_init__(self) -> None:
        if not self.context:
            raise ConfigurationError("step needs a context name")
        if self.work < 0:
            raise ConfigurationError(f"{self.context}: negative work")


#: Compute cost of a step: a plain number, or a :mod:`repro.hls.ir` loop
#: nest whose expanded operation count is the charge.
WorkLike = Union[float, int, Block, Loop]


def _as_work(work: WorkLike) -> float:
    if isinstance(work, Loop):
        work = Block.of_loops(work)
    if isinstance(work, Block):
        return float(work.work())
    return float(work)


def step(context: str, *accesses: Access, work: WorkLike = 0.0) -> Step:
    """Build a :class:`Step`; ``work`` may be an HLS loop nest."""
    return Step(context, tuple(accesses), _as_work(work))


@dataclass(frozen=True, slots=True)
class Repeat:
    """A counted repetition of a node sequence (an iterative solver's
    time loop). The analyzer unrolls it so cross-iteration last-writer
    state — who produced this step's input *last* time around — is
    tracked exactly."""

    count: int
    body: Tuple["Node", ...]

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(f"repeat count must be >= 1, got {self.count}")
        if not self.body:
            raise ConfigurationError("repeat needs a body")


#: A task-graph node: one step, or a counted repetition of nodes.
Node = Union[Step, Repeat]


def repeat(count: int, *body: Node) -> Repeat:
    """Build a :class:`Repeat` over the given nodes."""
    return Repeat(count, tuple(body))


@dataclass(frozen=True, slots=True)
class TaskGraph:
    """A declarative task graph: buffers, kernel set, and step sequence."""

    app: str
    buffers: Tuple[BufferDecl, ...]
    kernels: Tuple[str, ...]
    nodes: Tuple[Node, ...]

    def __post_init__(self) -> None:
        if not self.app:
            raise ConfigurationError("task graph needs an app name")
        names = [b.name for b in self.buffers]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"{self.app}: duplicate buffer names")
        if not self.kernels:
            raise ConfigurationError(f"{self.app}: needs at least one kernel")
        if len(set(self.kernels)) != len(self.kernels):
            raise ConfigurationError(f"{self.app}: duplicate kernel names")
        sizes = {b.name: b.size for b in self.buffers}
        contexts = set()
        for s in self.flatten():
            contexts.add(s.context)
            for a in s.accesses:
                size = sizes.get(a.buffer)
                if size is None:
                    raise ConfigurationError(
                        f"{self.app}: step {s.context!r} accesses "
                        f"undeclared buffer {a.buffer!r}"
                    )
                if a.nbytes is not None:
                    if not size.exact:
                        raise ConfigurationError(
                            f"{self.app}: partial access to dynamically "
                            f"sized buffer {a.buffer!r}"
                        )
                    if a.offset + a.nbytes > size.hi:
                        raise ConfigurationError(
                            f"{self.app}: access [{a.offset}, "
                            f"{a.offset + a.nbytes}) exceeds buffer "
                            f"{a.buffer!r} of {size.hi} bytes"
                        )
        missing = set(self.kernels) - contexts
        if missing:
            raise ConfigurationError(
                f"{self.app}: kernels never appear as steps: {sorted(missing)}"
            )

    def buffer(self, name: str) -> BufferDecl:
        """Declaration of one buffer."""
        for b in self.buffers:
            if b.name == name:
                return b
        raise ConfigurationError(f"{self.app}: unknown buffer {name!r}")

    def flatten(self) -> Iterator[Step]:
        """All steps in execution order, repeats unrolled."""

        def walk(nodes: Tuple[Node, ...]) -> Iterator[Step]:
            for node in nodes:
                if isinstance(node, Repeat):
                    for _ in range(node.count):
                        yield from walk(node.body)
                else:
                    yield node

        return walk(self.nodes)
