"""Kernel model — Equation 1 of the paper.

A kernel is ``HW_i(τ_i, D^H_in, D^K_in, D^H_out, D^K_out)``: its
computation time plus the amount of input/output data exchanged with the
host and with other kernels. We extend the tuple with the software
execution time of the original function (needed for the vs-SW speed-ups),
capability flags consumed by Algorithm 1 (parallelizable → duplication;
streaming → pipelining cases 1–2) and the kernel's FPGA footprint (needed
for Table IV and the "resource available" guards).

Data-volume fields (``d_h_in`` …) live on :class:`~repro.core.commgraph.CommGraph`,
derived from the profile edges, so they can never drift out of sync with
the graph; :class:`KernelSpec` carries only per-kernel intrinsic facts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from ..hw.resources import ResourceCost
from ..units import HOST_CLOCK, KERNEL_CLOCK


@dataclass(frozen=True, slots=True)
class KernelSpec:
    """Intrinsic description of one HW kernel candidate.

    Parameters
    ----------
    name:
        Function name (also the kernel's identity in graphs and plans).
    tau_cycles:
        ``τ_i`` — computation time in *kernel-clock* (100 MHz) cycles.
    sw_cycles:
        Execution time of the original software function in *host-clock*
        (400 MHz) cycles, used for vs-SW speed-ups.
    parallelizable:
        Whether the kernel can be duplicated to work on independent data
        halves (Algorithm 1, line 3).
    streams_host_io:
        Whether host input/output can be processed as a stream
        (pipelining case 1).
    streams_kernel_input:
        Whether the kernel can start on a partial result of a producer
        kernel (pipelining case 2, as the downstream kernel).
    resources:
        LUT/register footprint of the synthesized kernel core.
    local_memory_bytes:
        BRAM local-memory capacity the kernel needs.
    """

    name: str
    tau_cycles: float
    sw_cycles: float
    parallelizable: bool = False
    streams_host_io: bool = False
    streams_kernel_input: bool = False
    resources: ResourceCost = ResourceCost(0, 0)
    local_memory_bytes: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("kernel name must be non-empty")
        if self.tau_cycles < 0 or self.sw_cycles < 0:
            raise ConfigurationError(
                f"kernel {self.name!r} has negative timing "
                f"(tau={self.tau_cycles}, sw={self.sw_cycles})"
            )
        if self.local_memory_bytes < 0:
            raise ConfigurationError(
                f"kernel {self.name!r} has negative local memory size"
            )

    # -- timing ------------------------------------------------------------
    @property
    def tau_seconds(self) -> float:
        """``τ_i`` in seconds (kernel clock domain)."""
        return KERNEL_CLOCK.cycles_to_seconds(self.tau_cycles)

    @property
    def sw_seconds(self) -> float:
        """Software time of the original function in seconds."""
        return HOST_CLOCK.cycles_to_seconds(self.sw_cycles)

    @property
    def hw_speedup(self) -> float:
        """Raw compute speed-up of the kernel over software (no comm)."""
        if self.tau_seconds <= 0:
            raise ConfigurationError(f"kernel {self.name!r} has zero tau")
        return self.sw_seconds / self.tau_seconds

    # -- transformations ----------------------------------------------------
    def halved(self, suffix: str) -> "KernelSpec":
        """A duplicate copy processing half the data.

        Computation and software time halve; the footprint stays the full
        kernel footprint (each duplicate is a complete core).
        """
        return replace(
            self,
            name=f"{self.name}{suffix}",
            tau_cycles=self.tau_cycles / 2.0,
            sw_cycles=self.sw_cycles / 2.0,
        )

    def with_resources(self, resources: ResourceCost) -> "KernelSpec":
        """Copy with a different footprint (used by calibration)."""
        return replace(self, resources=resources)
