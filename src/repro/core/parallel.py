"""Pipelining — parallel processing cases 1 and 2 (Section IV-A3).

* **Case 1** (host-stream): a kernel whose host input/output can be
  processed in two segments overlaps transfer with computation, saving
  ``Δ_p1 = min(D^H_in·θ, τ)/2 + min(D^H_out·θ, τ)/2 − O``.
* **Case 2** (kernel chain): a consumer that can start on the first half
  of a producer's result overlaps the two computations, saving
  ``Δ_p2 = min(τ_i, τ_j)/2 − O``.

Algorithm 1 checks these *last* (line 15), on the kernels that remain
after sharing and mapping. Case 2 applies to kernel-to-kernel edges that
were kept (NoC or shared-memory — a shared memory delivers the first half
as soon as it is written, so both interconnect styles support it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..units import KERNEL_CLOCK
from .commgraph import CommGraph


class PipelineCase(enum.Enum):
    """Which of the paper's parallel-processing cases a decision is."""

    HOST_STREAM = "case1"
    KERNEL_STREAM = "case2"


@dataclass(frozen=True, slots=True)
class PipelineDecision:
    """One applied (or rejected) pipelining opportunity."""

    case: PipelineCase
    #: The kernel (case 1) or the producer kernel (case 2).
    kernel: str
    #: The consumer kernel for case 2, ``None`` for case 1.
    consumer: Optional[str]
    delta_seconds: float
    applied: bool
    reason: str


def delta_p1_seconds(
    d_h_in: int, d_h_out: int, tau_cycles: float, theta_s: float, overhead_s: float
) -> float:
    """``Δ_p1`` for one kernel (seconds)."""
    tau_s = KERNEL_CLOCK.cycles_to_seconds(tau_cycles)
    gain_in = min(d_h_in * theta_s, tau_s) / 2.0
    gain_out = min(d_h_out * theta_s, tau_s) / 2.0
    return gain_in + gain_out - overhead_s


def delta_p2_seconds(
    tau_i_cycles: float, tau_j_cycles: float, overhead_s: float
) -> float:
    """``Δ_p2`` for one producer→consumer edge (seconds)."""
    return (
        min(
            KERNEL_CLOCK.cycles_to_seconds(tau_i_cycles),
            KERNEL_CLOCK.cycles_to_seconds(tau_j_cycles),
        )
        / 2.0
        - overhead_s
    )


def find_pipeline_opportunities(
    graph: CommGraph,
    kept_edges: Tuple[Tuple[str, str], ...],
    theta_s: float,
    overhead_s: float,
) -> Tuple[PipelineDecision, ...]:
    """Evaluate cases 1 and 2 over the designed system.

    ``kept_edges`` are the kernel-to-kernel edges the interconnect
    actually carries (shared-memory links + residual NoC edges). A
    decision is applied only when its ``Δ`` is positive and the involved
    kernels advertise the needed streaming capability.
    """
    decisions: List[PipelineDecision] = []

    # Case 1 — host streaming per kernel, deterministic order.
    for name in graph.kernel_names():
        spec = graph.kernel(name)
        d_in, d_out = graph.d_h_in(name), graph.d_h_out(name)
        if d_in == 0 and d_out == 0:
            continue  # nothing to stream with the host
        delta = delta_p1_seconds(d_in, d_out, spec.tau_cycles, theta_s, overhead_s)
        if not spec.streams_host_io:
            decisions.append(
                PipelineDecision(
                    PipelineCase.HOST_STREAM, name, None, delta, False,
                    "kernel cannot stream host I/O",
                )
            )
        elif delta <= 0:
            decisions.append(
                PipelineDecision(
                    PipelineCase.HOST_STREAM, name, None, delta, False,
                    "delta_p1 <= 0",
                )
            )
        else:
            decisions.append(
                PipelineDecision(
                    PipelineCase.HOST_STREAM, name, None, delta, True, "applied"
                )
            )

    # Case 2 — producer/consumer overlap on kept kernel-to-kernel edges.
    for producer, consumer in kept_edges:
        spec_p = graph.kernel(producer)
        spec_c = graph.kernel(consumer)
        delta = delta_p2_seconds(spec_p.tau_cycles, spec_c.tau_cycles, overhead_s)
        if not spec_c.streams_kernel_input:
            decisions.append(
                PipelineDecision(
                    PipelineCase.KERNEL_STREAM, producer, consumer, delta, False,
                    "consumer cannot stream kernel input",
                )
            )
        elif delta <= 0:
            decisions.append(
                PipelineDecision(
                    PipelineCase.KERNEL_STREAM, producer, consumer, delta, False,
                    "delta_p2 <= 0",
                )
            )
        else:
            decisions.append(
                PipelineDecision(
                    PipelineCase.KERNEL_STREAM, producer, consumer, delta, True,
                    "applied",
                )
            )
    return tuple(decisions)


def total_pipeline_gain(decisions: Tuple[PipelineDecision, ...]) -> float:
    """Sum of the applied decisions' savings (seconds)."""
    return sum(d.delta_seconds for d in decisions if d.applied)
