"""Kernel duplication (Algorithm 1, lines 2–6; parallel case 3).

A computationally intensive kernel that can process independent data
halves in parallel is duplicated when ``Δ_dp = τ_i/2 − O > 0`` and the
device has room for a second core. Duplication is applied *structurally*:
the kernel is replaced by two copies, each with half the computation and
half of every data volume, so every later stage (sharing, mapping,
simulation, synthesis) sees the duplicated system — the paper's JPEG
example duplicates ``huff_ac_dec`` and then maps both copies to the NoC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..hw.device import Device
from ..hw.resources import ResourceCost
from ..units import KERNEL_CLOCK
from .commgraph import CommGraph

#: Suffixes for the two copies of a duplicated kernel.
DUP_SUFFIXES = ("#0", "#1")


@dataclass(frozen=True, slots=True)
class DuplicationDecision:
    """Outcome of the duplication test for one kernel."""

    kernel: str
    delta_dp_seconds: float
    applied: bool
    reason: str

    @property
    def slack_us(self) -> float:
        """``Δ_dp`` in microseconds (positive = duplication profitable)."""
        return self.delta_dp_seconds * 1e6

    def describe(self) -> str:
        """One human-readable line (provenance / explain rendering)."""
        verdict = "applied" if self.applied else "rejected"
        return (
            f"{self.kernel}: Δ_dp={self.slack_us:+.2f}us {verdict} "
            f"({self.reason})"
        )


def delta_dp_seconds(tau_cycles: float, overhead_s: float) -> float:
    """``Δ_dp = τ_i/2 − O`` in seconds."""
    return KERNEL_CLOCK.cycles_to_seconds(tau_cycles) / 2.0 - overhead_s


def split_bytes(nbytes: int) -> Tuple[int, int]:
    """Split a byte count across two copies without losing bytes."""
    half = nbytes // 2
    return half, nbytes - half


def apply_duplication(graph: CommGraph, name: str) -> CommGraph:
    """Replace ``name`` with two half-sized copies in the graph.

    Every edge and host flow touching the kernel is split across the
    copies; total traffic is conserved exactly.
    """
    spec = graph.kernel(name)
    copies = [spec.halved(sfx) for sfx in DUP_SUFFIXES]

    kernels = {}
    for n, s in graph.kernels.items():
        if n == name:
            for c in copies:
                kernels[c.name] = c
        else:
            kernels[n] = s

    kk: Dict[Tuple[str, str], int] = {}
    for (p, c), b in graph.kk_edges.items():
        if p == name and c == name:  # pragma: no cover - self edges rejected earlier
            continue
        if p == name:
            b0, b1 = split_bytes(b)
            if b0:
                kk[(copies[0].name, c)] = b0
            if b1:
                kk[(copies[1].name, c)] = b1
        elif c == name:
            b0, b1 = split_bytes(b)
            if b0:
                kk[(p, copies[0].name)] = b0
            if b1:
                kk[(p, copies[1].name)] = b1
        else:
            kk[(p, c)] = b

    def split_host(flows: Dict[str, int]) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for k, b in flows.items():
            if k == name:
                b0, b1 = split_bytes(b)
                if b0:
                    out[copies[0].name] = b0
                if b1:
                    out[copies[1].name] = b1
            else:
                out[k] = b
        return out

    return CommGraph(
        kernels=kernels,
        kk_edges=kk,
        host_in=split_host(dict(graph.host_in)),
        host_out=split_host(dict(graph.host_out)),
    )


def decide_duplications(
    graph: CommGraph,
    device: Device,
    overhead_s: float,
    committed_cost: ResourceCost,
    utilization_cap: float = 0.85,
    max_duplications: int = 1,
) -> Tuple[CommGraph, Tuple[DuplicationDecision, ...]]:
    """Run the duplication loop of Algorithm 1.

    Kernels are visited in descending computation time (the paper
    duplicates "the most computationally intensive function"). Each
    applied duplication adds one full kernel footprint to the committed
    cost, and the loop stops honouring further candidates once the device
    would overflow ``utilization_cap``.
    """
    decisions: List[DuplicationDecision] = []
    cost = committed_cost
    applied = 0
    order = sorted(
        graph.kernel_names(),
        key=lambda n: (-graph.kernel(n).tau_cycles, n),
    )
    for name in order:
        spec = graph.kernel(name)
        delta = delta_dp_seconds(spec.tau_cycles, overhead_s)
        if not spec.parallelizable:
            decisions.append(
                DuplicationDecision(name, delta, False, "not parallelizable")
            )
            continue
        if delta <= 0:
            decisions.append(
                DuplicationDecision(name, delta, False, "delta_dp <= 0")
            )
            continue
        if applied >= max_duplications:
            decisions.append(
                DuplicationDecision(name, delta, False, "duplication budget spent")
            )
            continue
        extra = spec.resources
        if not device.fits(cost + extra, utilization_cap):
            decisions.append(
                DuplicationDecision(name, delta, False, "insufficient device resources")
            )
            continue
        graph = apply_duplication(graph, name)
        cost = cost + extra
        applied += 1
        decisions.append(DuplicationDecision(name, delta, True, "applied"))
    return graph, tuple(decisions)
