"""Distance-minimizing placement of kernels/memories on the NoC mesh.

Section IV-B: "a kernel and its communicating local memories should be
mapped to the NoC routers in such a way that the distance of these
routers is shortest" — ideally adjacent. We solve the induced quadratic
assignment heuristically: a greedy constructive pass (heaviest
communicator first, each node to the free slot minimizing weighted
Manhattan distance to already-placed neighbours) followed by pairwise
swap refinement until a local optimum. Both passes are deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import PlacementError

Coord = Tuple[int, int]


@dataclass(frozen=True)
class MeshPlacement:
    """A placement of named nodes onto a ``width × height`` mesh.

    With ``torus=True`` distances wrap around each dimension, matching
    the torus NoC's shorter-way-around routing.
    """

    width: int
    height: int
    positions: Mapping[str, Coord]
    torus: bool = False

    def __post_init__(self) -> None:
        seen: Dict[Coord, str] = {}
        for name, (x, y) in self.positions.items():
            if not (0 <= x < self.width and 0 <= y < self.height):
                raise PlacementError(
                    f"node {name!r} placed at {(x, y)} outside "
                    f"{self.width}x{self.height} mesh"
                )
            if (x, y) in seen:
                raise PlacementError(
                    f"nodes {seen[(x, y)]!r} and {name!r} share router {(x, y)}"
                )
            seen[(x, y)] = name

    @property
    def router_count(self) -> int:
        """Number of occupied routers (one per placed node)."""
        return len(self.positions)

    def distance(self, a: str, b: str) -> int:
        """Hop distance between two placed nodes (topology-aware)."""
        try:
            (ax, ay), (bx, by) = self.positions[a], self.positions[b]
        except KeyError as exc:
            raise PlacementError(f"node {exc.args[0]!r} not placed") from None
        dx, dy = abs(ax - bx), abs(ay - by)
        if self.torus:
            dx = min(dx, self.width - dx)
            dy = min(dy, self.height - dy)
        return dx + dy

    def weighted_cost(self, edges: Mapping[Tuple[str, str], float]) -> float:
        """Σ weight·distance over the given edges."""
        return sum(w * self.distance(a, b) for (a, b), w in edges.items())

    def edge_distances(
        self, edges: Mapping[Tuple[str, str], float]
    ) -> Tuple[Tuple[str, str, float, int], ...]:
        """Per-edge ``(a, b, weight, hops)`` detail, heaviest edge first.

        The provenance log records one placement event per row so
        ``repro explain`` can show which flows ended up adjacent and
        which pay multi-hop routes.
        """
        return tuple(
            (a, b, w, self.distance(a, b))
            for (a, b), w in sorted(
                edges.items(), key=lambda kv: (-kv[1], kv[0])
            )
        )


def mesh_dimensions(n_nodes: int) -> Tuple[int, int]:
    """Smallest near-square ``width × height ≥ n`` with ``width ≥ height``."""
    if n_nodes <= 0:
        raise PlacementError(f"cannot size a mesh for {n_nodes} nodes")
    height = int(math.isqrt(n_nodes))
    width = math.ceil(n_nodes / height)
    return width, height


def _distance_fn(width: int, height: int, torus: bool):
    """Hop-distance function for the chosen topology."""

    def dist(a: Coord, b: Coord) -> int:
        dx, dy = abs(a[0] - b[0]), abs(a[1] - b[1])
        if torus:
            dx = min(dx, width - dx)
            dy = min(dy, height - dy)
        return dx + dy

    return dist


def _greedy(
    nodes: Sequence[str],
    edges: Mapping[Tuple[str, str], float],
    width: int,
    height: int,
    torus: bool = False,
) -> Dict[str, Coord]:
    dist = _distance_fn(width, height, torus)
    weight_of: Dict[str, float] = {n: 0.0 for n in nodes}
    for (a, b), w in edges.items():
        weight_of[a] += w
        weight_of[b] += w
    order = sorted(nodes, key=lambda n: (-weight_of[n], n))

    free: List[Coord] = [(x, y) for y in range(height) for x in range(width)]
    # Seed slot: mesh centre minimizes expected distance to later nodes.
    centre = (width // 2, height // 2)
    free.sort(key=lambda c: (abs(c[0] - centre[0]) + abs(c[1] - centre[1]), c))

    placed: Dict[str, Coord] = {}
    for node in order:
        best: Tuple[float, Coord] = (math.inf, free[0])
        for slot in free:
            cost = 0.0
            for (a, b), w in edges.items():
                other = None
                if a == node and b in placed:
                    other = placed[b]
                elif b == node and a in placed:
                    other = placed[a]
                if other is not None:
                    cost += w * dist(slot, other)
            if cost < best[0]:
                best = (cost, slot)
        placed[node] = best[1]
        free.remove(best[1])
    return placed


def _refine(
    positions: Dict[str, Coord],
    edges: Mapping[Tuple[str, str], float],
    width: int,
    height: int,
    torus: bool = False,
    max_rounds: int = 8,
) -> Dict[str, Coord]:
    names = sorted(positions)
    dist = _distance_fn(width, height, torus)

    def cost() -> float:
        return sum(
            w * dist(positions[a], positions[b])
            for (a, b), w in edges.items()
        )

    all_slots = [(x, y) for y in range(height) for x in range(width)]
    current = cost()
    for _ in range(max_rounds):
        improved = False
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                a, b = names[i], names[j]
                positions[a], positions[b] = positions[b], positions[a]
                new = cost()
                if new < current - 1e-12:
                    current = new
                    improved = True
                else:
                    positions[a], positions[b] = positions[b], positions[a]
        # Relocation moves: swaps alone cannot use empty routers, so on
        # a partially-filled mesh they stall in local optima a single
        # node-to-free-slot move would escape.
        occupied = set(positions.values())
        free = [s for s in all_slots if s not in occupied]
        for name in names:
            for slot in list(free):
                old = positions[name]
                positions[name] = slot
                new = cost()
                if new < current - 1e-12:
                    current = new
                    improved = True
                    free.remove(slot)
                    free.append(old)
                else:
                    positions[name] = old
        if not improved:
            break
    return positions


def place_on_mesh(
    nodes: Sequence[str],
    edges: Mapping[Tuple[str, str], float],
    width: int = 0,
    height: int = 0,
    torus: bool = False,
) -> MeshPlacement:
    """Place ``nodes`` on a mesh, minimizing weighted hop distance.

    Mesh dimensions default to the smallest near-square that fits. Edge
    endpoints must all be in ``nodes``.
    """
    if not nodes:
        raise PlacementError("no nodes to place")
    if len(set(nodes)) != len(nodes):
        raise PlacementError("duplicate node names")
    node_set = set(nodes)
    for a, b in edges:
        if a not in node_set or b not in node_set:
            raise PlacementError(f"edge ({a!r}, {b!r}) references unplaced node")
    if width <= 0 or height <= 0:
        width, height = mesh_dimensions(len(nodes))
    if width * height < len(nodes):
        raise PlacementError(
            f"{width}x{height} mesh too small for {len(nodes)} nodes"
        )
    positions = _greedy(nodes, edges, width, height, torus=torus)
    positions = _refine(positions, edges, width, height, torus=torus)
    # Refinement only descends, so a refined row-major packing bounds
    # the result: keep it when strictly better. This guarantees the
    # optimizer never loses to the naive packing, whatever local
    # optimum the greedy start led to.
    dist = _distance_fn(width, height, torus)

    def cost_of(pos: Dict[str, Coord]) -> float:
        return sum(w * dist(pos[a], pos[b]) for (a, b), w in edges.items())

    naive = {nodes[i]: (i % width, i // width) for i in range(len(nodes))}
    naive = _refine(naive, edges, width, height, torus=torus)
    if cost_of(naive) < cost_of(positions) - 1e-12:
        positions = naive
    return MeshPlacement(
        width=width, height=height, positions=positions, torus=torus
    )
