"""The interconnect plan — Algorithm 1's output artifact.

An :class:`InterconnectPlan` records every decision the designer made
(duplications, shared-memory pairings, per-kernel adaptive mapping,
mesh placement, pipelining) plus the *bill of materials* — how many
routers, network adapters, crossbars and muxes the custom interconnect
instantiates — which is what the synthesis estimator prices for
Table IV.

BRAM-port accounting (Section V-B): each local memory has two BRAM
ports. Its accessors are the kernel core, the host (when the kernel has
host traffic), the kernel's network adapter (a ``K2`` kernel's NA pulls
output data from the local BRAM), the memory's own network adapter
(``M2``/``M3``), and the sharing crossbar (which subsumes the host port
for crossbar-shared pairs). Memories with more than two accessors get a
multiplexer, generalizing the paper's JPEG example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..hw.resources import ComponentKind
from ..obs.provenance import ProvenanceEvent
from .commgraph import CommGraph
from .duplication import DuplicationDecision
from .parallel import PipelineDecision
from .placement import MeshPlacement
from .sharing import SharedMemoryLink
from .topology import KernelAttach, MemoryAttach, ReceiveClass, SendClass


def memory_node(kernel_name: str) -> str:
    """Mesh-node name of a kernel's local memory."""
    return f"mem:{kernel_name}"


@dataclass(frozen=True, slots=True)
class KernelMapping:
    """Adaptive-mapping result for one kernel (a Table I row instance)."""

    kernel: str
    receive: ReceiveClass
    send: SendClass
    attach_kernel: KernelAttach
    attach_memory: MemoryAttach

    @property
    def on_noc(self) -> bool:
        """Whether the kernel itself has a NoC port."""
        return self.attach_kernel is KernelAttach.K2

    @property
    def memory_on_noc(self) -> bool:
        """Whether the kernel's local memory has a NoC port."""
        return self.attach_memory in (MemoryAttach.M2, MemoryAttach.M3)


@dataclass(frozen=True)
class NocPlan:
    """The NoC part of the interconnect: who is attached and where."""

    placement: MeshPlacement
    #: Kernels with a NoC port (``K2``), insertion order.
    kernel_nodes: Tuple[str, ...]
    #: Kernels whose local memory has a NoC port (``M2``/``M3``).
    memory_nodes: Tuple[str, ...]
    #: Residual kernel-to-kernel edges the NoC carries, with byte loads.
    edges: Tuple[Tuple[str, str, int], ...]

    @property
    def router_count(self) -> int:
        """One router per attached entity."""
        return len(self.kernel_nodes) + len(self.memory_nodes)


@dataclass(frozen=True)
class InterconnectPlan:
    """Complete output of the custom interconnect design algorithm."""

    app: str
    #: Post-duplication communication graph the plan was designed for.
    graph: CommGraph
    duplications: Tuple[DuplicationDecision, ...]
    sharing: Tuple[SharedMemoryLink, ...]
    mappings: Mapping[str, KernelMapping]
    noc: Optional[NocPlan]
    pipeline: Tuple[PipelineDecision, ...]
    #: The designer's full decision log (see :mod:`repro.obs.provenance`).
    #: Excluded from equality/serialization: two plans with the same
    #: structure are the same plan, and golden digests stay stable.
    provenance: Tuple[ProvenanceEvent, ...] = field(
        default=(), compare=False, repr=False
    )

    # -- derived structure ---------------------------------------------------
    def kept_edges(self) -> Tuple[Tuple[str, str], ...]:
        """Kernel-to-kernel edges the custom interconnect carries
        (shared-memory pairs first, then NoC edges)."""
        edges: List[Tuple[str, str]] = [
            (l.producer, l.consumer) for l in self.sharing
        ]
        if self.noc is not None:
            edges.extend((p, c) for p, c, _ in self.noc.edges)
        return tuple(edges)

    def shared_with(self, kernel: str) -> Optional[SharedMemoryLink]:
        """The sharing link a kernel participates in, if any."""
        for link in self.sharing:
            if kernel in (link.producer, link.consumer):
                return link
        return None

    def memory_accessors(self, kernel: str) -> Tuple[str, ...]:
        """Logical accessors of a kernel's local memory (see module doc)."""
        mapping = self.mappings[kernel]
        accessors = ["core"]
        link = self.shared_with(kernel)
        crossbar_shared = link is not None and link.crossbar
        has_host = (self.graph.d_h_in(kernel) + self.graph.d_h_out(kernel)) > 0
        if crossbar_shared:
            accessors.append("crossbar")  # carries host traffic too
        elif link is not None:
            accessors.append("partner_core")  # direct sharing
            if has_host:
                accessors.append("host")
        elif has_host:
            accessors.append("host")
        if mapping.on_noc:
            accessors.append("kernel_na")
        if mapping.memory_on_noc:
            accessors.append("memory_na")
        return tuple(accessors)

    def mux_kernels(self) -> Tuple[str, ...]:
        """Kernels whose local memory needs a >2-port multiplexer."""
        return tuple(
            k for k in self.graph.kernel_names()
            if len(self.memory_accessors(k)) > 2
        )

    # -- bill of materials -------------------------------------------------
    def component_counts(self) -> Dict[ComponentKind, int]:
        """Interconnect BOM for the synthesis estimator."""
        counts: Dict[ComponentKind, int] = {ComponentKind.BUS: 1}
        crossbars = sum(1 for l in self.sharing if l.crossbar)
        if crossbars:
            counts[ComponentKind.CROSSBAR] = crossbars
        if self.noc is not None:
            counts[ComponentKind.ROUTER] = self.noc.router_count
            counts[ComponentKind.NA_KERNEL] = len(self.noc.kernel_nodes)
            counts[ComponentKind.NA_MEMORY] = len(self.noc.memory_nodes)
            counts[ComponentKind.NOC_GLUE] = 1
        muxes = len(self.mux_kernels())
        if muxes:
            counts[ComponentKind.MUX] = muxes
        return counts

    # -- the Table IV "Solution" column -----------------------------------
    def solution_label(self) -> str:
        """Which techniques the plan uses: subset of {NoC, SM, P}."""
        parts = []
        if self.noc is not None and self.noc.router_count > 0:
            parts.append("NoC")
        if self.sharing:
            parts.append("SM")
        duplicated = any(d.applied for d in self.duplications)
        pipelined = any(p.applied for p in self.pipeline)
        if duplicated or pipelined:
            parts.append("P")
        return ", ".join(parts) if parts else "Bus"

    # -- human-readable rendering (Fig. 6) ---------------------------------
    def render_mesh(self) -> str:
        """ASCII picture of the NoC grid with router occupants.

        Empty string when the plan has no NoC. Node labels are
        truncated to keep the grid compact; memories show as ``M:name``.
        """
        if self.noc is None:
            return ""
        placement = self.noc.placement
        occupant = {coord: name for name, coord in placement.positions.items()}
        width = max(
            (len(self._mesh_label(n)) for n in placement.positions),
            default=4,
        )
        width = max(width, 4)
        rows = []
        for y in range(placement.height):
            cells = []
            for x in range(placement.width):
                name = occupant.get((x, y))
                label = self._mesh_label(name) if name else ""
                cells.append(f"[{label:^{width}}]")
            rows.append("--".join(cells))
            if y + 1 < placement.height:
                rows.append(
                    "  ".join(" " * (width // 2) + "|" + " " * (width - width // 2)
                              for _ in range(placement.width))
                )
        return "\n".join(rows)

    @staticmethod
    def _mesh_label(name: str, limit: int = 12) -> str:
        label = name.replace("mem:", "M:")
        return label if len(label) <= limit else label[: limit - 1] + "~"

    def describe(self) -> str:
        """Multi-line description of the plan (the Fig. 6 bench output)."""
        lines = [f"Interconnect plan for {self.app!r}"]
        applied_dups = [d.kernel for d in self.duplications if d.applied]
        if applied_dups:
            lines.append(f"  duplicated kernels : {', '.join(applied_dups)}")
        for link in self.sharing:
            style = "crossbar" if link.crossbar else "direct"
            lines.append(
                f"  shared memory      : {link.producer} -> {link.consumer} "
                f"({link.bytes} B, {style})"
            )
        for name, m in sorted(self.mappings.items()):
            lines.append(
                f"  {name:<22} {{{m.receive.name},{m.send.name}}} -> "
                f"{{{m.attach_kernel.name},{m.attach_memory.name}}}"
            )
        if self.noc is not None:
            p = self.noc.placement
            lines.append(
                f"  NoC                : {p.width}x{p.height} mesh, "
                f"{self.noc.router_count} routers"
            )
            for node, (x, y) in sorted(self.noc.placement.positions.items()):
                lines.append(f"    router({x},{y}) <- {node}")
            lines.extend("    " + row for row in self.render_mesh().splitlines())
        muxes = self.mux_kernels()
        if muxes:
            lines.append(f"  BRAM port muxes    : {', '.join(muxes)}")
        applied_pipe = [p for p in self.pipeline if p.applied]
        for p in applied_pipe:
            tgt = f"{p.kernel}->{p.consumer}" if p.consumer else p.kernel
            lines.append(f"  pipelining {p.case.value:<7}: {tgt}")
        lines.append(f"  solution           : {self.solution_label()}")
        return "\n".join(lines)


@dataclass(frozen=True)
class BillOfMaterials:
    """Convenience view over a plan's component counts."""

    counts: Mapping[ComponentKind, int] = field(default_factory=dict)

    @classmethod
    def of(cls, plan: InterconnectPlan) -> "BillOfMaterials":
        """BOM of a plan."""
        return cls(plan.component_counts())

    def count(self, kind: ComponentKind) -> int:
        """Instances of one component kind (0 when absent)."""
        return self.counts.get(kind, 0)

    def total_components(self) -> int:
        """Total component instances across kinds."""
        return sum(self.counts.values())
