"""The kernel communication graph ``[HW_i → HW_j : D_ij]``.

A :class:`CommGraph` joins the kernel specs with the traffic a QUAD
profile measured: kernel→kernel edge weights plus per-kernel host traffic
(``D^H_in`` / ``D^H_out``). All data-volume quantities of Eq. 1
(``D^K_in``, ``D^K_out``, ``D_in``, ``D_out``) are derived from the edges
so the graph can never disagree with itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..errors import DesignError
from ..profiling.quad import CommunicationProfile
from .kernel import KernelSpec

#: Pseudo-node name for the host in collapsed profiles.
HOST = "host"


@dataclass(frozen=True)
class CommGraph:
    """Immutable kernel communication graph.

    Parameters
    ----------
    kernels:
        ``{name: KernelSpec}`` for every kernel candidate.
    kk_edges:
        ``{(producer, consumer): bytes}`` kernel-to-kernel traffic.
    host_in / host_out:
        ``{kernel: bytes}`` traffic from/to the host. Kernels missing
        from these maps have zero host traffic.
    """

    kernels: Mapping[str, KernelSpec]
    kk_edges: Mapping[Tuple[str, str], int] = field(default_factory=dict)
    host_in: Mapping[str, int] = field(default_factory=dict)
    host_out: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for (p, c), nbytes in self.kk_edges.items():
            if p not in self.kernels or c not in self.kernels:
                raise DesignError(f"edge ({p!r}, {c!r}) references unknown kernel")
            if p == c:
                raise DesignError(f"self edge on kernel {p!r}")
            if nbytes <= 0:
                raise DesignError(f"edge ({p!r}, {c!r}) must carry positive bytes")
        for attr in ("host_in", "host_out"):
            for k, nbytes in getattr(self, attr).items():
                if k not in self.kernels:
                    raise DesignError(f"{attr} references unknown kernel {k!r}")
                if nbytes < 0:
                    raise DesignError(f"{attr}[{k!r}] is negative")

    # -- construction -----------------------------------------------------
    @classmethod
    def from_profile(
        cls,
        profile: CommunicationProfile,
        kernels: Iterable[KernelSpec],
        host_name: str = HOST,
    ) -> "CommGraph":
        """Build the graph from a QUAD profile.

        Every profiled function that is not a kernel (including the entry
        pseudo-producer) is folded into the host, exactly as the paper's
        model does: non-accelerated functions run on the host.
        """
        specs = {k.name: k for k in kernels}
        folded = profile.restricted_to(tuple(specs), host_name)
        kk: Dict[Tuple[str, str], int] = {}
        h_in: Dict[str, int] = {}
        h_out: Dict[str, int] = {}
        for e in folded.edges:
            if e.producer == host_name and e.consumer in specs:
                h_in[e.consumer] = h_in.get(e.consumer, 0) + e.bytes
            elif e.consumer == host_name and e.producer in specs:
                h_out[e.producer] = h_out.get(e.producer, 0) + e.bytes
            elif e.producer in specs and e.consumer in specs:
                kk[(e.producer, e.consumer)] = e.bytes
        return cls(kernels=specs, kk_edges=kk, host_in=h_in, host_out=h_out)

    # -- Eq. 1 quantities ---------------------------------------------------
    def d_h_in(self, name: str) -> int:
        """``D^H_in`` — input bytes produced by host functions."""
        self._require(name)
        return self.host_in.get(name, 0)

    def d_h_out(self, name: str) -> int:
        """``D^H_out`` — output bytes consumed by host functions."""
        self._require(name)
        return self.host_out.get(name, 0)

    def d_k_in(self, name: str) -> int:
        """``D^K_in`` — input bytes produced by other kernels."""
        self._require(name)
        return sum(b for (_, c), b in self.kk_edges.items() if c == name)

    def d_k_out(self, name: str) -> int:
        """``D^K_out`` — output bytes consumed by other kernels."""
        self._require(name)
        return sum(b for (p, _), b in self.kk_edges.items() if p == name)

    def d_in(self, name: str) -> int:
        """Total input ``D_in = D^H_in + D^K_in``."""
        return self.d_h_in(name) + self.d_k_in(name)

    def d_out(self, name: str) -> int:
        """Total output ``D_out = D^H_out + D^K_out``."""
        return self.d_h_out(name) + self.d_k_out(name)

    # -- structure queries ---------------------------------------------------
    def producers_of(self, name: str) -> Tuple[str, ...]:
        """Kernels sending data to ``name``, heaviest first."""
        self._require(name)
        rows = [(b, p) for (p, c), b in self.kk_edges.items() if c == name]
        return tuple(p for _, p in sorted(rows, key=lambda r: (-r[0], r[1])))

    def consumers_of(self, name: str) -> Tuple[str, ...]:
        """Kernels receiving data from ``name``, heaviest first."""
        self._require(name)
        rows = [(b, c) for (p, c), b in self.kk_edges.items() if p == name]
        return tuple(c for _, c in sorted(rows, key=lambda r: (-r[0], r[1])))

    def edge_bytes(self, producer: str, consumer: str) -> int:
        """``D_ij`` for one edge (0 when absent)."""
        return self.kk_edges.get((producer, consumer), 0)

    def edges_by_weight(self) -> Tuple[Tuple[str, str, int], ...]:
        """All kernel-to-kernel edges, heaviest first (deterministic)."""
        rows = [(p, c, b) for (p, c), b in self.kk_edges.items()]
        rows.sort(key=lambda r: (-r[2], r[0], r[1]))
        return tuple(rows)

    def kernel(self, name: str) -> KernelSpec:
        """Spec of one kernel."""
        self._require(name)
        return self.kernels[name]

    def kernel_names(self) -> Tuple[str, ...]:
        """All kernel names, insertion order."""
        return tuple(self.kernels)

    def total_kernel_traffic(self) -> int:
        """``Σ (D_in + D_out)`` over all kernels (counts host and kernel
        data; each kernel-kernel edge contributes twice, as in Eq. 2)."""
        return sum(self.d_in(k) + self.d_out(k) for k in self.kernels)

    def invocation_order(self) -> Tuple[str, ...]:
        """A producer-before-consumer kernel order (for schedules).

        Uses Kahn's algorithm; cycles (e.g. the fluid solver's feedback
        edges) are broken by releasing the remaining kernel with the
        smallest in-degree, which matches how an iterative application
        actually invokes its kernels within one time step.
        """
        remaining = dict.fromkeys(self.kernels, 0)
        for (_, c), _b in self.kk_edges.items():
            remaining[c] += 1
        order = []
        pending = dict(remaining)
        while pending:
            ready = [k for k, deg in pending.items() if deg == 0]
            if not ready:  # cycle: release min in-degree, stable by name
                ready = [min(pending, key=lambda k: (pending[k], k))]
            nxt = ready[0]
            order.append(nxt)
            del pending[nxt]
            for (p, c), _b in self.kk_edges.items():
                if p == nxt and c in pending:
                    pending[c] -= 1
        return tuple(order)

    # -- transformations -------------------------------------------------------
    def without_edge(self, producer: str, consumer: str) -> "CommGraph":
        """Copy with one kernel-to-kernel edge removed."""
        if (producer, consumer) not in self.kk_edges:
            raise DesignError(f"no edge ({producer!r}, {consumer!r}) to remove")
        kk = {k: v for k, v in self.kk_edges.items() if k != (producer, consumer)}
        return CommGraph(self.kernels, kk, self.host_in, self.host_out)

    def restricted(self, names: Sequence[str]) -> "CommGraph":
        """Sub-graph over a subset of kernels.

        Edges to dropped kernels are *redirected to the host* — a function
        that is not accelerated runs on the host, so its traffic becomes
        host traffic. This is exactly what happens when ``L_hw`` selects
        fewer functions than the profile contains.
        """
        keep = set(names)
        unknown = keep - set(self.kernels)
        if unknown:
            raise DesignError(f"unknown kernels in restriction: {sorted(unknown)}")
        kernels = {n: s for n, s in self.kernels.items() if n in keep}
        kk: Dict[Tuple[str, str], int] = {}
        h_in = {n: self.host_in.get(n, 0) for n in kernels}
        h_out = {n: self.host_out.get(n, 0) for n in kernels}
        for (p, c), b in self.kk_edges.items():
            if p in keep and c in keep:
                kk[(p, c)] = b
            elif p in keep:
                h_out[p] = h_out.get(p, 0) + b
            elif c in keep:
                h_in[c] = h_in.get(c, 0) + b
        return CommGraph(kernels, kk, h_in, h_out)

    def _require(self, name: str) -> None:
        if name not in self.kernels:
            raise DesignError(f"unknown kernel {name!r}")
