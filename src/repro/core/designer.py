"""Algorithm 1 — the custom interconnect design algorithm, end to end.

Given the application's communication graph (built from a QUAD profile
and per-kernel timing), the designer:

1. duplicates parallelizable hot kernels when ``Δ_dp > 0`` and the device
   has room (lines 2–6);
2. applies the shared-local-memory solution to exclusive producer→
   consumer pairs (lines 8–13);
3. classifies each kernel's residual communication topology and applies
   the adaptive mapping function (line 14, Table I);
4. places the NoC-attached kernels and memories on the smallest mesh
   that fits, minimizing weighted hop distance;
5. evaluates pipelining cases 1 and 2 (line 15).

Every stage can be disabled through :class:`DesignConfig` — that is how
the ablation benches and the paper's "NoC-only" comparison system are
expressed (sharing and adaptive mapping off, everything on the NoC).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from ..errors import DesignError
from ..hw.device import Device, XC5VFX130T
from ..hw.resources import ComponentKind, ResourceCost, component_cost
from ..hw.synthesis import PLATFORM_BASE
from ..obs import provenance as prov
from ..obs.provenance import ProvenanceLog
from ..obs.trace import Tracer, active
from .commgraph import CommGraph
from .duplication import DuplicationDecision, decide_duplications
from .mapping import adaptive_map, explain_mapping
from .parallel import PipelineDecision, find_pipeline_opportunities
from .placement import place_on_mesh
from .plan import InterconnectPlan, KernelMapping, NocPlan, memory_node
from .sharing import residual_graph, sharing_decisions
from .topology import (
    KernelAttach,
    MemoryAttach,
    classify_receive,
    classify_send,
)


@dataclass(frozen=True, slots=True)
class DesignConfig:
    """Knobs of the design algorithm.

    ``theta_s_per_byte`` is the paper's ``θ`` — the average time to move
    one byte over the system communication infrastructure; it comes from
    the bus model. ``stream_overhead_s`` is the paper's ``O``.
    """

    theta_s_per_byte: float
    stream_overhead_s: float = 2.0e-6
    device: Device = XC5VFX130T
    utilization_cap: float = 0.85
    max_duplications: int = 1
    enable_duplication: bool = True
    enable_sharing: bool = True
    enable_noc: bool = True
    enable_adaptive_mapping: bool = True
    enable_pipelining: bool = True
    #: NoC topology: "mesh" (the paper's) or "torus" (extension).
    noc_topology: str = "mesh"

    def __post_init__(self) -> None:
        if self.theta_s_per_byte <= 0:
            raise DesignError(f"theta must be positive, got {self.theta_s_per_byte}")
        if self.stream_overhead_s < 0:
            raise DesignError(f"overhead must be >= 0, got {self.stream_overhead_s}")
        if self.noc_topology not in ("mesh", "torus"):
            raise DesignError(f"unknown NoC topology {self.noc_topology!r}")

    def noc_only(self) -> "DesignConfig":
        """The paper's NoC-only comparison system: parallel solution on,
        shared memory off, adaptive mapping off (everything on the NoC)."""
        return replace(self, enable_sharing=False, enable_adaptive_mapping=False)

    def bus_only(self) -> "DesignConfig":
        """Pure baseline interconnect (used by ablations)."""
        return replace(
            self,
            enable_duplication=False,
            enable_sharing=False,
            enable_noc=False,
            enable_pipelining=False,
        )


class InterconnectDesigner:
    """Stateful wrapper running Algorithm 1 for one application.

    The optional ``tracer`` receives one span per stage plus an instant
    marker per decision; independently of it, every decision is recorded
    in a deterministic :class:`~repro.obs.provenance.ProvenanceLog`
    attached to the resulting plan.
    """

    def __init__(
        self,
        app: str,
        graph: CommGraph,
        config: DesignConfig,
        tracer: Tracer | None = None,
    ) -> None:
        self.app = app
        self.graph = graph
        self.config = config
        self.tracer = active(tracer)
        self.log = ProvenanceLog(self.tracer)

    # -- stages ------------------------------------------------------------
    def _committed_cost(self, graph: CommGraph) -> ResourceCost:
        cost = PLATFORM_BASE + component_cost(ComponentKind.BUS)
        for name in graph.kernel_names():
            cost = cost + graph.kernel(name).resources
        return cost

    def _duplicate(self) -> Tuple[CommGraph, Tuple[DuplicationDecision, ...]]:
        if not self.config.enable_duplication:
            return self.graph, ()
        return decide_duplications(
            self.graph,
            self.config.device,
            self.config.stream_overhead_s,
            self._committed_cost(self.graph),
            utilization_cap=self.config.utilization_cap,
            max_duplications=self.config.max_duplications,
        )

    def _map_kernels(
        self, graph: CommGraph, residual: CommGraph
    ) -> Dict[str, KernelMapping]:
        mappings: Dict[str, KernelMapping] = {}
        for name in graph.kernel_names():
            receive = classify_receive(residual, name)
            send = classify_send(residual, name)
            if not self.config.enable_noc:
                attach = (KernelAttach.K1, MemoryAttach.M1)
                rule = "NoC disabled => everything on the bus"
            elif self.config.enable_adaptive_mapping:
                attach = adaptive_map(receive, send)
                rule = explain_mapping(receive, send)
            else:
                # NoC-only: maximum attachment — every kernel and every
                # local memory gets a router (the paper's strawman).
                attach = (KernelAttach.K2, MemoryAttach.M3)
                rule = "adaptive mapping disabled => maximum attachment"
            mappings[name] = KernelMapping(
                kernel=name,
                receive=receive,
                send=send,
                attach_kernel=attach[0],
                attach_memory=attach[1],
            )
            self.log.record(
                prov.STAGE_CLASSIFY,
                name,
                outcome=f"{attach[0].name},{attach[1].name}",
                receive=receive.name,
                send=send.name,
                attach_kernel=attach[0].name,
                attach_memory=attach[1].name,
                rule=rule,
            )
        return mappings

    def _build_noc(
        self,
        mappings: Dict[str, KernelMapping],
        residual: CommGraph,
    ) -> NocPlan | None:
        if not self.config.enable_noc:
            return None
        kernel_nodes = [m.kernel for m in mappings.values() if m.on_noc]
        memory_nodes = [m.kernel for m in mappings.values() if m.memory_on_noc]
        if not kernel_nodes and not memory_nodes:
            return None
        nodes = list(kernel_nodes) + [memory_node(k) for k in memory_nodes]
        edges: Dict[Tuple[str, str], float] = {}
        noc_edges: List[Tuple[str, str, int]] = []
        for p, c, b in residual.edges_by_weight():
            if p not in kernel_nodes or c not in memory_nodes:
                raise DesignError(
                    f"residual edge {p}->{c} not representable on the NoC "
                    f"(mapping gave K={mappings[p].attach_kernel}, "
                    f"M={mappings[c].attach_memory})"
                )
            key = (p, memory_node(c))
            edges[key] = edges.get(key, 0.0) + float(b)
            noc_edges.append((p, c, b))
        placement = place_on_mesh(
            nodes, edges, torus=self.config.noc_topology == "torus"
        )
        self.log.record(
            prov.STAGE_NOC,
            self.app,
            outcome="built",
            width=placement.width,
            height=placement.height,
            topology=self.config.noc_topology,
            routers=len(placement.positions),
            weighted_cost=placement.weighted_cost(edges),
        )
        for node, (x, y) in sorted(placement.positions.items()):
            self.log.record(prov.STAGE_PLACEMENT, node, outcome="placed", x=x, y=y)
        for a, b, weight, hops in placement.edge_distances(edges):
            self.log.record(
                prov.STAGE_PLACEMENT,
                f"{a}->{b}",
                outcome="distance",
                bytes=int(weight),
                hops=hops,
            )
        return NocPlan(
            placement=placement,
            kernel_nodes=tuple(kernel_nodes),
            memory_nodes=tuple(memory_nodes),
            edges=tuple(noc_edges),
        )

    # -- entry point ----------------------------------------------------------
    def design(self) -> InterconnectPlan:
        """Run Algorithm 1 and return the plan (with full provenance)."""
        cfg = self.config
        self.log.record(
            prov.STAGE_CONFIG,
            self.app,
            outcome="info",
            theta_s_per_byte=cfg.theta_s_per_byte,
            stream_overhead_s=cfg.stream_overhead_s,
            enable_duplication=cfg.enable_duplication,
            enable_sharing=cfg.enable_sharing,
            enable_noc=cfg.enable_noc,
            enable_adaptive_mapping=cfg.enable_adaptive_mapping,
            enable_pipelining=cfg.enable_pipelining,
            noc_topology=cfg.noc_topology,
            utilization_cap=cfg.utilization_cap,
            max_duplications=cfg.max_duplications,
        )
        for name in self.graph.kernel_names():
            spec = self.graph.kernel(name)
            self.log.record(
                prov.STAGE_SELECT,
                name,
                outcome="accelerated",
                tau_cycles=spec.tau_cycles,
                parallelizable=spec.parallelizable,
                d_k_in=self.graph.d_k_in(name),
                d_k_out=self.graph.d_k_out(name),
                d_h_in=self.graph.d_h_in(name),
                d_h_out=self.graph.d_h_out(name),
            )

        with self.tracer.span("design.duplicate", category="design", app=self.app):
            graph, duplications = self._duplicate()
        if not cfg.enable_duplication:
            self.log.record(
                prov.STAGE_DUPLICATION, self.app, outcome="disabled",
                reason="enable_duplication=False",
            )
        for d in duplications:
            self.log.record(
                prov.STAGE_DUPLICATION,
                d.kernel,
                outcome="applied" if d.applied else "rejected",
                delta_dp_s=d.delta_dp_seconds,
                reason=d.reason,
            )

        with self.tracer.span("design.sharing", category="design", app=self.app):
            if cfg.enable_sharing:
                decisions = sharing_decisions(graph)
                sharing = tuple(d.link() for d in decisions if d.accepted)
                for d in decisions:
                    self.log.record(
                        prov.STAGE_SHARING,
                        f"{d.producer}->{d.consumer}",
                        outcome="applied" if d.accepted else "rejected",
                        bytes=d.bytes,
                        crossbar=d.crossbar,
                        reason=d.reason,
                    )
            else:
                sharing = ()
                self.log.record(
                    prov.STAGE_SHARING, self.app, outcome="disabled",
                    reason="enable_sharing=False",
                )
            residual = residual_graph(graph, sharing)

        with self.tracer.span("design.mapping", category="design", app=self.app):
            mappings = self._map_kernels(graph, residual)
        with self.tracer.span("design.placement", category="design", app=self.app):
            noc = self._build_noc(mappings, residual)
        if noc is None:
            reason = (
                "enable_noc=False" if not cfg.enable_noc
                else "no kernel or memory needs a router"
            )
            self.log.record(
                prov.STAGE_NOC, self.app, outcome="skipped", reason=reason
            )

        pipeline: Tuple[PipelineDecision, ...] = ()
        with self.tracer.span("design.pipelining", category="design", app=self.app):
            if cfg.enable_pipelining:
                kept: List[Tuple[str, str]] = [
                    (l.producer, l.consumer) for l in sharing
                ]
                if noc is not None:
                    kept.extend((p, c) for p, c, _ in noc.edges)
                pipeline = find_pipeline_opportunities(
                    graph,
                    tuple(kept),
                    cfg.theta_s_per_byte,
                    cfg.stream_overhead_s,
                )
                for p in pipeline:
                    subject = (
                        f"{p.kernel}->{p.consumer}" if p.consumer else p.kernel
                    )
                    self.log.record(
                        prov.STAGE_PIPELINE,
                        subject,
                        outcome="applied" if p.applied else "rejected",
                        case=p.case.value,
                        delta_s=p.delta_seconds,
                        reason=p.reason,
                    )
            else:
                self.log.record(
                    prov.STAGE_PIPELINE, self.app, outcome="disabled",
                    reason="enable_pipelining=False",
                )

        return InterconnectPlan(
            app=self.app,
            graph=graph,
            duplications=duplications,
            sharing=sharing,
            mappings=mappings,
            noc=noc,
            pipeline=pipeline,
            provenance=self.log.events(),
        )


def design_interconnect(
    app: str,
    graph: CommGraph,
    config: DesignConfig,
    tracer: Tracer | None = None,
) -> InterconnectPlan:
    """Functional façade over :class:`InterconnectDesigner`."""
    return InterconnectDesigner(app, graph, config, tracer=tracer).design()
