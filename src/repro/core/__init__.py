"""The paper's primary contribution: automated hybrid interconnect design.

Submodules implement, in the paper's own vocabulary:

* :mod:`~repro.core.kernel` — the kernel model
  ``HW_i(τ_i, D^H_in, D^K_in, D^H_out, D^K_out)`` (Eq. 1);
* :mod:`~repro.core.commgraph` — the kernel communication graph
  ``[HW_i → HW_j : D_ij]`` extracted from a QUAD profile;
* :mod:`~repro.core.topology` — the ``R``/``S`` communication classes and
  ``K``/``M`` interconnect attachment options (Eqs. 4–5);
* :mod:`~repro.core.mapping` — the adaptive mapping function (Table I);
* :mod:`~repro.core.sharing` — the shared-local-memory solution
  (Algorithm 1, lines 8–13);
* :mod:`~repro.core.duplication` — kernel duplication (``Δ_dp``);
* :mod:`~repro.core.parallel` — pipelining cases 1–2 (``Δ_p1``/``Δ_p2``);
* :mod:`~repro.core.placement` — distance-minimizing mesh placement;
* :mod:`~repro.core.plan` — the resulting interconnect plan + bill of
  materials;
* :mod:`~repro.core.designer` — Algorithm 1 end to end;
* :mod:`~repro.core.analytic` — the analytical performance model
  (Eq. 2 and the ``Δ`` savings terms).
"""

from .kernel import KernelSpec
from .commgraph import CommGraph
from .topology import (
    KernelAttach,
    MemoryAttach,
    ReceiveClass,
    SendClass,
    classify_receive,
    classify_send,
)
from .mapping import ADAPTIVE_MAPPING, adaptive_map
from .sharing import SharedMemoryLink, find_sharing_pairs
from .duplication import DuplicationDecision, apply_duplication, decide_duplications
from .parallel import PipelineDecision, find_pipeline_opportunities
from .placement import MeshPlacement, place_on_mesh
from .plan import BillOfMaterials, InterconnectPlan, KernelMapping, NocPlan
from .designer import DesignConfig, InterconnectDesigner, design_interconnect
from .analytic import AnalyticModel, SystemTimes
from .validate import check_plan, validate_plan
from .whatif import WhatIf, WhatIfOutcome

__all__ = [
    "KernelSpec",
    "CommGraph",
    "ReceiveClass",
    "SendClass",
    "KernelAttach",
    "MemoryAttach",
    "classify_receive",
    "classify_send",
    "ADAPTIVE_MAPPING",
    "adaptive_map",
    "SharedMemoryLink",
    "find_sharing_pairs",
    "DuplicationDecision",
    "decide_duplications",
    "apply_duplication",
    "PipelineDecision",
    "find_pipeline_opportunities",
    "MeshPlacement",
    "place_on_mesh",
    "InterconnectPlan",
    "NocPlan",
    "KernelMapping",
    "BillOfMaterials",
    "DesignConfig",
    "InterconnectDesigner",
    "design_interconnect",
    "AnalyticModel",
    "SystemTimes",
    "validate_plan",
    "check_plan",
    "WhatIf",
    "WhatIfOutcome",
]
