"""The shared local memory solution (Algorithm 1, lines 8–13).

Two kernels can share their local memories when the producer sends its
kernel output to exactly one consumer and that consumer receives kernel
input from exactly that producer: ``D^K_i(out) = D^K_j(in) = D_ij``. The
shared data then needs no transfer at all, saving ``Δ_c = 2·D_ij·θ``
versus the baseline (one host-bound and one host-to-consumer transfer).

The crossbar: BRAMs have two ports and one is normally taken by the host
(Section IV-A1), so sharing generally goes through the 2×2 crossbar; only
when the consumer has no host traffic (``D^H_j(in) = D^H_j(out) = 0``)
can the memories be shared directly.

Pairing policy (paper ambiguity #1, see DESIGN.md): edges are considered
heaviest-first, and a kernel participates in at most one sharing pair —
chaining shared memories (A↔B↔C) would need more BRAM ports than exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from .commgraph import CommGraph


@dataclass(frozen=True, slots=True)
class SharedMemoryLink:
    """One applied shared-local-memory pairing."""

    producer: str
    consumer: str
    #: ``D_ij`` — the traffic the pairing eliminates (bytes).
    bytes: int
    #: Whether the 2×2 crossbar is required (consumer has host traffic).
    crossbar: bool

    def delta_c_seconds(self, theta_s_per_byte: float) -> float:
        """``Δ_c = 2·D_ij·θ`` — communication time saved (seconds)."""
        return 2.0 * self.bytes * theta_s_per_byte


@dataclass(frozen=True, slots=True)
class SharingDecision:
    """Outcome of the sharing scan for one candidate edge.

    The provenance log records every candidate — including the rejected
    ones, with the condition they failed — so ``repro explain`` can show
    why a heavy edge stayed on the NoC.
    """

    producer: str
    consumer: str
    bytes: int
    accepted: bool
    crossbar: bool
    reason: str

    def link(self) -> SharedMemoryLink:
        """The applied pairing (only valid when ``accepted``)."""
        return SharedMemoryLink(
            producer=self.producer,
            consumer=self.consumer,
            bytes=self.bytes,
            crossbar=self.crossbar,
        )


def is_exclusive_pair(graph: CommGraph, producer: str, consumer: str) -> bool:
    """Check the paper's sharing condition for one edge.

    ``HW_i`` sends kernel output only to ``HW_j`` and ``HW_j`` receives
    kernel input only from ``HW_i``; both with non-zero traffic.
    """
    d_ij = graph.edge_bytes(producer, consumer)
    if d_ij <= 0:
        return False
    return (
        graph.d_k_out(producer) == d_ij  # i sends to j only
        and graph.d_k_in(consumer) == d_ij  # j receives from i only
    )


def sharing_decisions(graph: CommGraph) -> Tuple[SharingDecision, ...]:
    """Replay the sharing scan, recording every candidate's outcome.

    This *is* the pairing algorithm — :func:`find_sharing_pairs` filters
    its accepted decisions — so accepted candidates here always match the
    applied links exactly. Deterministic: edges are scanned in descending
    weight (ties broken by name) and each kernel joins at most one pair.
    """
    used: Set[str] = set()
    decisions: List[SharingDecision] = []
    for producer, consumer, nbytes in graph.edges_by_weight():
        if producer in used or consumer in used:
            blocked = [k for k in (producer, consumer) if k in used]
            decisions.append(
                SharingDecision(
                    producer, consumer, nbytes, False, False,
                    f"kernel already paired: {', '.join(blocked)}",
                )
            )
            continue
        if not is_exclusive_pair(graph, producer, consumer):
            failures = []
            if graph.d_k_out(producer) != nbytes:
                failures.append(
                    f"D^K_{{{producer}}}(out)={graph.d_k_out(producer)}B "
                    f"!= D_ij"
                )
            if graph.d_k_in(consumer) != nbytes:
                failures.append(
                    f"D^K_{{{consumer}}}(in)={graph.d_k_in(consumer)}B "
                    f"!= D_ij"
                )
            decisions.append(
                SharingDecision(
                    producer, consumer, nbytes, False, False,
                    "; ".join(failures) or "zero-byte edge",
                )
            )
            continue
        crossbar = (graph.d_h_in(consumer) + graph.d_h_out(consumer)) > 0
        decisions.append(
            SharingDecision(producer, consumer, nbytes, True, crossbar, "applied")
        )
        used.add(producer)
        used.add(consumer)
    return tuple(decisions)


def find_sharing_pairs(graph: CommGraph) -> Tuple[SharedMemoryLink, ...]:
    """All shared-memory pairings Algorithm 1 applies, heaviest first."""
    return tuple(d.link() for d in sharing_decisions(graph) if d.accepted)


def residual_graph(
    graph: CommGraph, links: Tuple[SharedMemoryLink, ...]
) -> CommGraph:
    """The communication graph with SM-satisfied edges removed.

    The remaining kernel-to-kernel edges are what the NoC must carry;
    classification for the adaptive mapping runs on this residual graph
    (DESIGN.md interpretation decision #1/#2).
    """
    g = graph
    for link in links:
        g = g.without_edge(link.producer, link.consumer)
    return g
