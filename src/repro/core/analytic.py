"""Analytical performance model — Eq. 2 and the ``Δ`` savings terms.

The paper estimates system performance with a closed-form model:

* software:  ``T_sw = T_other + Σ sw_i``
* baseline:  ``T_b = T_other + Σ τ_i + Σ (D_in,i + D_out,i)·θ`` (Eq. 2)
* proposed:  baseline minus the savings of the applied solutions —
  ``Δ_c`` per shared-memory pair, ``Δ_n`` for NoC-hidden kernel traffic,
  ``Δ_p1``/``Δ_p2`` for pipelining and ``Δ_dp`` for duplication.

``T_other`` is the software time of the application parts that stay on
the host; the paper's "overall application" speed-ups include it, the
"kernels" speed-ups do not.

Bounds: the model clamps the proposed computation time at half the
baseline computation (duplication and chain pipelining can at best halve
work on the critical path) and communication at zero — the paper's
formulas already embed these limits per term (each ``min(·, τ/2)``), the
clamp just keeps pathological configurations (e.g. absurd ``θ``) from
producing negative times.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import speedup
from .commgraph import CommGraph
from .parallel import PipelineCase
from .plan import InterconnectPlan


@dataclass(frozen=True, slots=True)
class SystemTimes:
    """Execution-time decomposition of one system variant (seconds)."""

    label: str
    computation_s: float
    communication_s: float
    host_other_s: float

    @property
    def kernels_s(self) -> float:
        """Total time attributed to the kernels (comp + comm)."""
        return self.computation_s + self.communication_s

    @property
    def application_s(self) -> float:
        """Overall application time (kernels + host-resident parts)."""
        return self.kernels_s + self.host_other_s

    @property
    def comm_comp_ratio(self) -> float:
        """Fig. 4's communication/computation ratio."""
        if self.computation_s <= 0:
            raise ConfigurationError(f"{self.label}: zero computation time")
        return self.communication_s / self.computation_s


@dataclass(frozen=True, slots=True)
class SpeedupPair:
    """Application and kernels speed-up of one system over another."""

    application: float
    kernels: float


class AnalyticModel:
    """Closed-form timing of software / baseline / proposed systems.

    Parameters
    ----------
    graph:
        The *original* (pre-duplication) communication graph — Eq. 2 is
        defined on it, and duplication conserves both ``Σ τ`` and traffic
        totals, so the baseline is identical either way.
    theta_s_per_byte:
        ``θ`` — average seconds to move one byte over the bus.
    host_other_s:
        Software time of the non-accelerated application parts.
    """

    def __init__(
        self,
        graph: CommGraph,
        theta_s_per_byte: float,
        host_other_s: float,
    ) -> None:
        if theta_s_per_byte <= 0:
            raise ConfigurationError(f"theta must be positive: {theta_s_per_byte}")
        if host_other_s < 0:
            raise ConfigurationError(f"host_other_s must be >= 0: {host_other_s}")
        self.graph = graph
        self.theta = theta_s_per_byte
        self.host_other_s = host_other_s

    # -- the three systems --------------------------------------------------
    def software(self) -> SystemTimes:
        """All functions on the host (the vs-SW reference)."""
        sw = sum(self.graph.kernel(k).sw_seconds for k in self.graph.kernel_names())
        return SystemTimes(
            label="software",
            computation_s=sw,
            communication_s=0.0,
            host_other_s=self.host_other_s,
        )

    def baseline(self) -> SystemTimes:
        """Eq. 2: every byte moves through the host over the bus."""
        comp = sum(
            self.graph.kernel(k).tau_seconds for k in self.graph.kernel_names()
        )
        traffic = self.graph.total_kernel_traffic()
        return SystemTimes(
            label="baseline",
            computation_s=comp,
            communication_s=traffic * self.theta,
            host_other_s=self.host_other_s,
        )

    # -- savings ------------------------------------------------------------
    def delta_c(self, plan: InterconnectPlan) -> float:
        """Total shared-memory saving ``Σ 2·D_ij·θ`` (seconds)."""
        return sum(l.delta_c_seconds(self.theta) for l in plan.sharing)

    def delta_n(self, plan: InterconnectPlan) -> float:
        """Total NoC saving: hidden kernel-to-kernel traffic (seconds).

        Each NoC-carried edge removes one kernel→host and one host→kernel
        transfer, i.e. ``2·D_ij·θ`` — summing ``(D^K_in + D^K_out)·θ``
        over NoC kernels (the paper's formulation) counts exactly the
        same bytes.
        """
        if plan.noc is None:
            return 0.0
        return sum(2.0 * b * self.theta for _, _, b in plan.noc.edges)

    def delta_p1(self, plan: InterconnectPlan) -> float:
        """Applied host-stream pipelining savings (seconds)."""
        return sum(
            d.delta_seconds
            for d in plan.pipeline
            if d.applied and d.case is PipelineCase.HOST_STREAM
        )

    def delta_p2(self, plan: InterconnectPlan) -> float:
        """Applied kernel-chain pipelining savings (seconds)."""
        return sum(
            d.delta_seconds
            for d in plan.pipeline
            if d.applied and d.case is PipelineCase.KERNEL_STREAM
        )

    def delta_dp(self, plan: InterconnectPlan) -> float:
        """Applied duplication savings ``Σ (τ/2 − O)`` (seconds)."""
        return sum(d.delta_dp_seconds for d in plan.duplications if d.applied)

    # -- the proposed system ---------------------------------------------------
    def proposed(self, plan: InterconnectPlan) -> SystemTimes:
        """Baseline minus the plan's savings, with physical clamps."""
        base = self.baseline()
        comp = base.computation_s - self.delta_dp(plan) - self.delta_p2(plan)
        comp = max(comp, base.computation_s / 2.0)
        comm = (
            base.communication_s
            - self.delta_c(plan)
            - self.delta_n(plan)
            - self.delta_p1(plan)
        )
        comm = max(comm, 0.0)
        return SystemTimes(
            label="proposed",
            computation_s=comp,
            communication_s=comm,
            host_other_s=self.host_other_s,
        )

    # -- comparisons -----------------------------------------------------------
    @staticmethod
    def compare(reference: SystemTimes, improved: SystemTimes) -> SpeedupPair:
        """Speed-up of ``improved`` over ``reference`` (app & kernels)."""
        return SpeedupPair(
            application=speedup(reference.application_s, improved.application_s),
            kernels=speedup(reference.kernels_s, improved.kernels_s),
        )

    def baseline_vs_software(self) -> SpeedupPair:
        """Fig. 4's left-hand bars."""
        return self.compare(self.software(), self.baseline())

    def proposed_vs_software(self, plan: InterconnectPlan) -> SpeedupPair:
        """Table III columns 2–3."""
        return self.compare(self.software(), self.proposed(plan))

    def proposed_vs_baseline(self, plan: InterconnectPlan) -> SpeedupPair:
        """Table III columns 4–5."""
        return self.compare(self.baseline(), self.proposed(plan))
