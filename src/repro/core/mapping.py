"""The adaptive mapping function ``f`` (Eq. 3 / Table I).

Maps each of the nine communication-topology cases
``{R1,R2,R3} × {S1,S2,S3}`` to an interconnect-topology case
``{K1,K2} × {M1,M2,M3}``. The combination ``{K1, M2}`` — a kernel that is
off the NoC while its memory is reachable only from the NoC — is
infeasible ("the result of the HW accelerator will be inaccessible by any
other function"), and the table never produces it.

The table's logic, spelled out:

* a kernel *sends* to other kernels (``S1``/``S3``) ⇒ it needs its own
  NoC port (``K2``);
* a kernel *receives* from other kernels (``R1``/``R3``) ⇒ producers must
  be able to write its local memory through the NoC (``M2`` or ``M3``);
* the host touches the kernel (``R2``/``R3`` input or ``S2``/``S3``
  output) ⇒ the memory stays reachable from the bus (``M1`` or ``M3``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import MappingError
from .topology import KernelAttach, MemoryAttach, ReceiveClass, SendClass

#: Table I, verbatim.
ADAPTIVE_MAPPING: Dict[
    Tuple[ReceiveClass, SendClass], Tuple[KernelAttach, MemoryAttach]
] = {
    (ReceiveClass.R1, SendClass.S1): (KernelAttach.K2, MemoryAttach.M2),
    (ReceiveClass.R1, SendClass.S2): (KernelAttach.K1, MemoryAttach.M3),
    (ReceiveClass.R3, SendClass.S2): (KernelAttach.K1, MemoryAttach.M3),
    (ReceiveClass.R1, SendClass.S3): (KernelAttach.K2, MemoryAttach.M3),
    (ReceiveClass.R3, SendClass.S1): (KernelAttach.K2, MemoryAttach.M3),
    (ReceiveClass.R3, SendClass.S3): (KernelAttach.K2, MemoryAttach.M3),
    (ReceiveClass.R2, SendClass.S1): (KernelAttach.K2, MemoryAttach.M1),
    (ReceiveClass.R2, SendClass.S3): (KernelAttach.K2, MemoryAttach.M1),
    (ReceiveClass.R2, SendClass.S2): (KernelAttach.K1, MemoryAttach.M1),
}

#: The infeasible interconnect value Table I must never produce.
INFEASIBLE = (KernelAttach.K1, MemoryAttach.M2)


def adaptive_map(
    receive: ReceiveClass, send: SendClass
) -> Tuple[KernelAttach, MemoryAttach]:
    """Apply the adaptive mapping function to one kernel's classes."""
    try:
        result = ADAPTIVE_MAPPING[(receive, send)]
    except KeyError:  # pragma: no cover - table is total over the enums
        raise MappingError(f"no mapping for ({receive}, {send})") from None
    if result == INFEASIBLE:  # pragma: no cover - defensive
        raise MappingError(f"mapping produced infeasible {result}")
    return result


def needs_noc(receive: ReceiveClass, send: SendClass) -> bool:
    """Whether this kernel contributes any NoC component at all."""
    k, m = adaptive_map(receive, send)
    return k is KernelAttach.K2 or m in (MemoryAttach.M2, MemoryAttach.M3)


def explain_mapping(receive: ReceiveClass, send: SendClass) -> str:
    """Spell out which Table I rules produced a kernel's ``{K, M}`` cell.

    The provenance log attaches this to every classification event so
    ``repro explain`` shows the *why* next to the class assignment.
    """
    kernel, memory = adaptive_map(receive, send)
    reasons = []
    if send in (SendClass.S1, SendClass.S3):
        reasons.append(f"sends to kernels ({send.name}) => {kernel.name}")
    else:
        reasons.append(f"no kernel output ({send.name}) => {kernel.name}")
    if receive in (ReceiveClass.R1, ReceiveClass.R3):
        reasons.append(
            f"receives from kernels ({receive.name}) => memory on NoC"
        )
    host_touch = receive in (ReceiveClass.R2, ReceiveClass.R3) or send in (
        SendClass.S2,
        SendClass.S3,
    )
    if host_touch:
        reasons.append(f"host traffic => memory on bus: {memory.name}")
    else:
        reasons.append(f"no host traffic => {memory.name}")
    return "; ".join(reasons)
