"""What-if analysis over a designed system.

Architects iterate: *what if this kernel were twice as fast? what if
that edge carried double the data? what if the bus were faster?* Each
question perturbs the communication graph or platform and re-runs the
designer + analytic model. This module packages the loop so a what-if
is one call returning both the perturbed outcome and the delta against
the unperturbed design — including whether the *structure* of the
design changed (a perturbation can flip a shared-memory pair into a NoC
group or change the duplication choice, which is exactly what the
architect needs to notice).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import DesignError
from .analytic import AnalyticModel
from .commgraph import CommGraph
from .designer import DesignConfig, design_interconnect
from .kernel import KernelSpec
from .plan import InterconnectPlan


@dataclass(frozen=True)
class WhatIfOutcome:
    """Result of one what-if question."""

    description: str
    plan: InterconnectPlan
    kernels_seconds: float
    baseline_seconds: float
    #: Perturbed time / reference time (< 1 means the change helps).
    relative_time: float
    #: Whether the perturbation changed the design's structure.
    solution_changed: bool
    reference_solution: str
    new_solution: str

    @property
    def speedup_vs_baseline(self) -> float:
        """Perturbed proposed-vs-baseline kernel speed-up."""
        return self.baseline_seconds / self.kernels_seconds


class WhatIf:
    """What-if explorer bound to one application's graph and config."""

    def __init__(
        self,
        app: str,
        graph: CommGraph,
        config: DesignConfig,
        host_other_s: float = 0.0,
    ) -> None:
        self.app = app
        self.graph = graph
        self.config = config
        self.host_other_s = host_other_s
        self._reference = self._evaluate(graph, config)

    # -- engine ---------------------------------------------------------
    def _evaluate(
        self, graph: CommGraph, config: DesignConfig
    ) -> Tuple[InterconnectPlan, float, float]:
        plan = design_interconnect(self.app, graph, config)
        model = AnalyticModel(graph, config.theta_s_per_byte, self.host_other_s)
        return (
            plan,
            model.proposed(plan).kernels_s,
            model.baseline().kernels_s,
        )

    def _outcome(
        self,
        description: str,
        graph: CommGraph,
        config: Optional[DesignConfig] = None,
    ) -> WhatIfOutcome:
        config = config or self.config
        plan, t, base = self._evaluate(graph, config)
        ref_plan, ref_t, _ = self._reference
        return WhatIfOutcome(
            description=description,
            plan=plan,
            kernels_seconds=t,
            baseline_seconds=base,
            relative_time=t / ref_t,
            solution_changed=(
                plan.solution_label() != ref_plan.solution_label()
            ),
            reference_solution=ref_plan.solution_label(),
            new_solution=plan.solution_label(),
        )

    # -- reference -------------------------------------------------------
    @property
    def reference_plan(self) -> InterconnectPlan:
        """The unperturbed design."""
        return self._reference[0]

    @property
    def reference_seconds(self) -> float:
        """The unperturbed proposed kernel time."""
        return self._reference[1]

    # -- questions ---------------------------------------------------------
    def kernel_speed(self, name: str, factor: float) -> WhatIfOutcome:
        """What if ``name``'s computation ran ``factor``× faster?"""
        if factor <= 0:
            raise DesignError(f"factor must be positive, got {factor}")
        spec = self.graph.kernel(name)
        new_spec = dataclasses.replace(
            spec, tau_cycles=spec.tau_cycles / factor
        )
        kernels = {
            k: (new_spec if k == name else self.graph.kernel(k))
            for k in self.graph.kernel_names()
        }
        graph = CommGraph(
            kernels=kernels,
            kk_edges=self.graph.kk_edges,
            host_in=self.graph.host_in,
            host_out=self.graph.host_out,
        )
        return self._outcome(f"{name} {factor:g}x faster", graph)

    def edge_volume(
        self, producer: str, consumer: str, factor: float
    ) -> WhatIfOutcome:
        """What if the ``producer → consumer`` edge carried ``factor``×
        the data?"""
        if factor <= 0:
            raise DesignError(f"factor must be positive, got {factor}")
        if self.graph.edge_bytes(producer, consumer) == 0:
            raise DesignError(f"no edge {producer}->{consumer}")
        kk = dict(self.graph.kk_edges)
        kk[(producer, consumer)] = max(
            1, int(kk[(producer, consumer)] * factor)
        )
        graph = CommGraph(
            kernels=self.graph.kernels,
            kk_edges=kk,
            host_in=self.graph.host_in,
            host_out=self.graph.host_out,
        )
        return self._outcome(
            f"{producer}->{consumer} x{factor:g} bytes", graph
        )

    def bus_speed(self, factor: float) -> WhatIfOutcome:
        """What if the bus moved bytes ``factor``× faster?"""
        if factor <= 0:
            raise DesignError(f"factor must be positive, got {factor}")
        config = dataclasses.replace(
            self.config,
            theta_s_per_byte=self.config.theta_s_per_byte / factor,
        )
        return self._outcome(f"bus {factor:g}x faster", self.graph, config)

    def drop_kernel(self, name: str) -> WhatIfOutcome:
        """What if ``name`` stayed in software (left ``L_hw``)?

        Its traffic folds back into the host, exactly as Algorithm 1's
        selection step would produce.
        """
        remaining = [k for k in self.graph.kernel_names() if k != name]
        if len(remaining) == len(self.graph.kernel_names()):
            raise DesignError(f"unknown kernel {name!r}")
        if not remaining:
            raise DesignError("cannot drop the last kernel")
        graph = self.graph.restricted(remaining)
        return self._outcome(f"{name} stays in software", graph)

    def sensitivity(self, factor: float = 2.0) -> Dict[str, float]:
        """Relative time after speeding each kernel up by ``factor`` —
        a cheap ranking of where HW-optimization effort pays."""
        return {
            name: self.kernel_speed(name, factor).relative_time
            for name in self.graph.kernel_names()
        }
