"""Communication and interconnect topology classes (Eqs. 4–5).

For each kernel the paper distinguishes where its input comes from
(``R1`` kernels only / ``R2`` host only / ``R3`` both) and where its
output goes (``S1`` kernels only / ``S2`` host only / ``S3`` both), and
for the resulting interconnect whether the kernel attaches to the NoC
(``K1`` no / ``K2`` yes) and how its local memory attaches (``M1`` bus
only / ``M2`` NoC only / ``M3`` both).

Degenerate kernels the paper does not discuss are classified
conservatively: a kernel with no input at all still gets its invocation
parameters from the host, so it is ``R2``; a kernel whose output nobody
reads is still collected by the host in the paper's execution model, so
it is ``S2``.
"""

from __future__ import annotations

import enum

from .commgraph import CommGraph


class ReceiveClass(enum.Enum):
    """Where a kernel's input data is produced (Eq. 4 first factor)."""

    R1 = "kernels_only"
    R2 = "host_only"
    R3 = "kernels_and_host"


class SendClass(enum.Enum):
    """Where a kernel's output data is consumed (Eq. 4 second factor)."""

    S1 = "kernels_only"
    S2 = "host_only"
    S3 = "kernels_and_host"


class KernelAttach(enum.Enum):
    """Kernel-to-NoC connection options (Eq. 5 first factor)."""

    K1 = "not_on_noc"
    K2 = "on_noc"


class MemoryAttach(enum.Enum):
    """Local-memory connection options (Eq. 5 second factor)."""

    M1 = "bus_only"
    M2 = "noc_only"
    M3 = "bus_and_noc"


def classify_receive(graph: CommGraph, name: str) -> ReceiveClass:
    """Classify a kernel's receive side on the given graph."""
    from_kernels = graph.d_k_in(name) > 0
    from_host = graph.d_h_in(name) > 0
    if from_kernels and from_host:
        return ReceiveClass.R3
    if from_kernels:
        return ReceiveClass.R1
    return ReceiveClass.R2  # host-only, including the no-input case


def classify_send(graph: CommGraph, name: str) -> SendClass:
    """Classify a kernel's send side on the given graph."""
    to_kernels = graph.d_k_out(name) > 0
    to_host = graph.d_h_out(name) > 0
    if to_kernels and to_host:
        return SendClass.S3
    if to_kernels:
        return SendClass.S1
    return SendClass.S2  # host-only, including the no-output case
