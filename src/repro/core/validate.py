"""Interconnect-plan validation.

A plan produced by hand (or by a modified designer) can violate
invariants the rest of the toolchain assumes — infeasible Table I
combinations, NoC edges whose endpoints are not attached, sharing links
that are not exclusive pairs, placements missing routers. The validator
checks everything an :class:`~repro.core.plan.InterconnectPlan` promises
and reports *all* violations (not just the first), so it doubles as a
debugging aid for custom designer configurations.
"""

from __future__ import annotations

from typing import List

from ..errors import DesignError
from .plan import InterconnectPlan, memory_node
from .sharing import is_exclusive_pair
from .topology import KernelAttach, MemoryAttach


def validate_plan(plan: InterconnectPlan) -> List[str]:
    """Return a list of human-readable violations (empty = valid)."""
    problems: List[str] = []
    graph = plan.graph
    kernel_names = set(graph.kernel_names())

    # -- mappings ----------------------------------------------------------
    if set(plan.mappings) != kernel_names:
        missing = kernel_names - set(plan.mappings)
        extra = set(plan.mappings) - kernel_names
        if missing:
            problems.append(f"kernels without a mapping: {sorted(missing)}")
        if extra:
            problems.append(f"mappings for unknown kernels: {sorted(extra)}")

    for name, m in plan.mappings.items():
        if (
            m.attach_kernel is KernelAttach.K1
            and m.attach_memory is MemoryAttach.M2
        ):
            problems.append(
                f"{name}: infeasible {{K1, M2}} — the kernel's result "
                "would be unreachable (Table I)"
            )

    # -- sharing -----------------------------------------------------------
    seen = set()
    for link in plan.sharing:
        for endpoint in (link.producer, link.consumer):
            if endpoint not in kernel_names:
                problems.append(f"sharing link references unknown {endpoint!r}")
            elif endpoint in seen:
                problems.append(
                    f"{endpoint} participates in more than one sharing pair "
                    "(BRAM port budget)"
                )
            seen.add(endpoint)
        if (
            link.producer in kernel_names
            and link.consumer in kernel_names
            and not is_exclusive_pair(graph, link.producer, link.consumer)
        ):
            problems.append(
                f"sharing {link.producer}->{link.consumer} is not an "
                "exclusive pair on this graph"
            )
        has_host = (
            graph.d_h_in(link.consumer) + graph.d_h_out(link.consumer) > 0
            if link.consumer in kernel_names
            else False
        )
        if has_host and not link.crossbar:
            problems.append(
                f"sharing {link.producer}->{link.consumer}: consumer has "
                "host traffic but no crossbar (Section IV-A1)"
            )

    # -- NoC ------------------------------------------------------------------
    sm_edges = {(l.producer, l.consumer) for l in plan.sharing}
    if plan.noc is not None:
        positions = plan.noc.placement.positions
        for k in plan.noc.kernel_nodes:
            if k not in positions:
                problems.append(f"NoC kernel node {k!r} has no router")
            if k in plan.mappings and not plan.mappings[k].on_noc:
                problems.append(f"{k} is on the NoC but mapped K1")
        for k in plan.noc.memory_nodes:
            if memory_node(k) not in positions:
                problems.append(f"NoC memory node of {k!r} has no router")
            if k in plan.mappings and not plan.mappings[k].memory_on_noc:
                problems.append(f"{k}'s memory is on the NoC but mapped M1")
        for p, c, b in plan.noc.edges:
            if graph.edge_bytes(p, c) != b:
                problems.append(
                    f"NoC edge {p}->{c} carries {b} bytes but the graph "
                    f"says {graph.edge_bytes(p, c)}"
                )
            if p not in plan.noc.kernel_nodes:
                problems.append(f"NoC edge {p}->{c}: producer lacks a NoC port")
            if c not in plan.noc.memory_nodes:
                problems.append(f"NoC edge {p}->{c}: consumer memory not on NoC")
            if (p, c) in sm_edges:
                problems.append(f"edge {p}->{c} is both shared-memory and NoC")

    # -- coverage ---------------------------------------------------------------
    noc_edges = {(p, c) for p, c, _ in (plan.noc.edges if plan.noc else ())}
    for (p, c) in graph.kk_edges:
        if (p, c) not in sm_edges and (p, c) not in noc_edges:
            # Legal only when the design ran without a NoC (relay mode).
            if plan.noc is not None:
                problems.append(
                    f"edge {p}->{c} carried by neither shared memory nor NoC"
                )

    return problems


def check_plan(plan: InterconnectPlan) -> None:
    """Raise :class:`DesignError` listing every violation, if any."""
    problems = validate_plan(plan)
    if problems:
        raise DesignError(
            "invalid interconnect plan:\n  - " + "\n  - ".join(problems)
        )
