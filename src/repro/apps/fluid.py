"""Real-time fluid simulation (Stam, GDC 2003) — instrumented.

Three-kernel decomposition of the stable-fluids step:

* ``diffuse`` — viscous diffusion of velocity and density (Jacobi
  relaxation);
* ``project`` — pressure projection making the velocity divergence-free
  (Poisson solve + gradient subtraction), run before *and* after
  advection as in Stam's solver;
* ``advect`` — semi-Lagrangian transport of velocity and density.

The kernels exchange whole fields every time step in a cycle
(diffuse → project → advect → project → diffuse …), so no kernel pair is
exclusive and Algorithm 1 maps *everything* onto the NoC — the paper's
Table IV reports exactly "NoC" as the Fluid solution. The stateful
iteration also rules out streaming, so no pipelining applies.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..profiling import AddressSpace, Tracer
from .base import Application, KernelTraits

#: Jacobi sweeps for the diffusion and pressure solves.
RELAX = 20
#: Solver time step and viscosity/diffusion rates.
DT = 0.1
VISC = 0.0002
DIFF = 0.0001


def jacobi(x0: np.ndarray, b: np.ndarray, alpha: float, beta: float) -> np.ndarray:
    """Jacobi relaxation for ``(I - alpha ∇²) x = b``-style systems."""
    x = x0.copy()
    for _ in range(RELAX):
        x_new = x.copy()
        x_new[1:-1, 1:-1] = (
            b[1:-1, 1:-1]
            + alpha
            * (x[:-2, 1:-1] + x[2:, 1:-1] + x[1:-1, :-2] + x[1:-1, 2:])
        ) / beta
        x = x_new
    return x


def diffuse_field(field: np.ndarray, rate: float) -> np.ndarray:
    """Implicit diffusion of one field."""
    a = DT * rate * field.shape[0] * field.shape[1]
    return jacobi(field, field, a, 1 + 4 * a)


def advect_field(field: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Semi-Lagrangian advection: trace back along the velocity field."""
    n, m = field.shape
    ys, xs = np.mgrid[0:n, 0:m].astype(np.float64)
    back_y = np.clip(ys - DT * n * v, 0.5, n - 1.5)
    back_x = np.clip(xs - DT * m * u, 0.5, m - 1.5)
    y0 = np.floor(back_y).astype(int)
    x0 = np.floor(back_x).astype(int)
    fy, fx = back_y - y0, back_x - x0
    return (
        field[y0, x0] * (1 - fy) * (1 - fx)
        + field[y0, x0 + 1] * (1 - fy) * fx
        + field[y0 + 1, x0] * fy * (1 - fx)
        + field[y0 + 1, x0 + 1] * fy * fx
    )


def project_fields(u: np.ndarray, v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Pressure projection: return a (near) divergence-free velocity."""
    n = u.shape[0]
    div = np.zeros_like(u)
    div[1:-1, 1:-1] = -0.5 * (
        (u[1:-1, 2:] - u[1:-1, :-2]) + (v[2:, 1:-1] - v[:-2, 1:-1])
    ) / n
    p = jacobi(np.zeros_like(u), div, 1.0, 4.0)
    u2, v2 = u.copy(), v.copy()
    u2[1:-1, 1:-1] -= 0.5 * n * (p[1:-1, 2:] - p[1:-1, :-2])
    v2[1:-1, 1:-1] -= 0.5 * n * (p[2:, 1:-1] - p[:-2, 1:-1])
    return u2, v2


def divergence(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Interior divergence of a velocity field."""
    return 0.5 * (
        (u[1:-1, 2:] - u[1:-1, :-2]) + (v[2:, 1:-1] - v[:-2, 1:-1])
    )


class FluidApp(Application):
    """Instrumented stable-fluids solver over a synthetic scene."""

    name = "fluid"

    def __init__(self, scale: int = 1, seed: int = 2014, steps: int = 2) -> None:
        super().__init__(scale=scale, seed=seed)
        if steps < 1:
            raise ConfigurationError("need at least one solver step")
        self.size = 64 * scale
        self.steps = steps

    def kernel_traits(self) -> Dict[str, KernelTraits]:
        return {
            "diffuse": KernelTraits(),
            "project": KernelTraits(),
            "advect": KernelTraits(),
        }

    def execute(self, tracer: Tracer, space: AddressSpace) -> None:
        n = self.size
        # Iteration state (who wrote it last is what QUAD tracks).
        u_state = space.alloc("u_state", (n, n), np.float32)
        v_state = space.alloc("v_state", (n, n), np.float32)
        d_state = space.alloc("d_state", (n, n), np.float32)
        force_u = space.alloc("force_u", (n, n), np.float32)
        force_v = space.alloc("force_v", (n, n), np.float32)
        source_d = space.alloc("source_d", (n, n), np.float32)
        u_dif = space.alloc("u_dif", (n, n), np.float32)
        v_dif = space.alloc("v_dif", (n, n), np.float32)
        d_dif = space.alloc("d_dif", (n, n), np.float32)
        u_proj = space.alloc("u_proj", (n, n), np.float32)
        v_proj = space.alloc("v_proj", (n, n), np.float32)
        u_adv = space.alloc("u_adv", (n, n), np.float32)
        v_adv = space.alloc("v_adv", (n, n), np.float32)
        d_adv = space.alloc("d_adv", (n, n), np.float32)
        display = space.alloc("display", (n, n), np.float32)

        ys, xs = np.mgrid[0:n, 0:n] / n
        swirl_u = np.sin(2 * np.pi * ys) * 0.5
        swirl_v = np.cos(2 * np.pi * xs) * 0.5
        puff = np.exp(-(((xs - 0.5) ** 2 + (ys - 0.5) ** 2) / 0.02))

        with tracer.context("scene_setup"):
            u_state.store_full(np.zeros((n, n)))
            v_state.store_full(np.zeros((n, n)))
            d_state.store_full(puff)

        for _step in range(self.steps):
            with tracer.context("inject_forces"):
                force_u.store_full(swirl_u)
                force_v.store_full(swirl_v)
                source_d.store_full(0.1 * puff)

            with tracer.context("diffuse"):
                u = u_state.load_full().astype(np.float64)
                v = v_state.load_full().astype(np.float64)
                d = d_state.load_full().astype(np.float64)
                u += DT * force_u.load_full()
                v += DT * force_v.load_full()
                d += DT * source_d.load_full()
                u_dif.store_full(diffuse_field(u, VISC))
                v_dif.store_full(diffuse_field(v, VISC))
                d_dif.store_full(diffuse_field(d, DIFF))
                tracer.add_work(3.0 * RELAX * 6.0 * n * n)

            with tracer.context("project"):
                u2, v2 = project_fields(
                    u_dif.load_full().astype(np.float64),
                    v_dif.load_full().astype(np.float64),
                )
                u_proj.store_full(u2)
                v_proj.store_full(v2)
                tracer.add_work((RELAX + 2) * 6.0 * n * n)

            with tracer.context("advect"):
                uu = u_proj.load_full().astype(np.float64)
                vv = v_proj.load_full().astype(np.float64)
                u_adv.store_full(advect_field(uu, uu, vv))
                v_adv.store_full(advect_field(vv, uu, vv))
                d_adv.store_full(
                    advect_field(d_dif.load_full().astype(np.float64), uu, vv)
                )
                tracer.add_work(3.0 * 14.0 * n * n)

            with tracer.context("project"):
                u2, v2 = project_fields(
                    u_adv.load_full().astype(np.float64),
                    v_adv.load_full().astype(np.float64),
                )
                u_state.store_full(u2)
                v_state.store_full(v2)
                tracer.add_work((RELAX + 2) * 6.0 * n * n)

            with tracer.context("diffuse"):
                # Density state hand-off for the next step lives with the
                # diffusion kernel's memory in the HW partitioning.
                d_state.store_full(d_adv.load_full())

            with tracer.context("render"):
                display.store_full(d_state.load_full())
                display.load_full()  # host reads the frame

    def verify(self, space: AddressSpace) -> None:
        u = space.get("u_state").data.astype(np.float64)
        v = space.get("v_state").data.astype(np.float64)
        d = space.get("d_state").data.astype(np.float64)
        if not (np.isfinite(u).all() and np.isfinite(v).all() and np.isfinite(d).all()):
            raise AssertionError("fluid solver produced non-finite values")
        div = np.abs(divergence(u, v)).max()
        if div > 0.25:
            raise AssertionError(f"velocity far from divergence-free: {div:.3f}")
        if d.min() < -1e-6 or d.max() > 2.0:
            raise AssertionError("density left its physical range")
