"""Canny edge detection (Canny, 1986) — instrumented implementation.

Kernel decomposition follows the classic four-stage pipeline:

``gaussian_smooth → sobel_gradient → nonmax_suppression → hysteresis``

The gradient stage feeds non-maximum suppression with *two* arrays
(magnitude and quantized direction) and suppression feeds hysteresis with
one; every stage additionally exchanges data with the host (the raw frame
in, the edge map out), which produces the mixed NoC + shared-memory +
pipelining solution the paper reports for Canny (Table IV).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import ConfigurationError
from ..profiling import AddressSpace, Tracer
from .base import Application, KernelTraits

#: 1-D Gaussian kernel (σ≈1.0, 5 taps), separable.
_GAUSS = np.array([1.0, 4.0, 6.0, 4.0, 1.0]) / 16.0


def _convolve_rows(img: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Row-wise 1-D convolution with edge padding."""
    pad = len(taps) // 2
    padded = np.pad(img, ((0, 0), (pad, pad)), mode="edge")
    out = np.zeros_like(img, dtype=np.float64)
    for i, t in enumerate(taps):
        out += t * padded[:, i : i + img.shape[1]]
    return out


def gaussian_blur(img: np.ndarray) -> np.ndarray:
    """Separable 5×5 Gaussian blur (reference implementation)."""
    return _convolve_rows(_convolve_rows(img, _GAUSS).T, _GAUSS).T


def sobel(img: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sobel gradient magnitude and direction quantized to 4 sectors."""
    p = np.pad(img, 1, mode="edge")
    gx = (
        (p[:-2, 2:] + 2 * p[1:-1, 2:] + p[2:, 2:])
        - (p[:-2, :-2] + 2 * p[1:-1, :-2] + p[2:, :-2])
    )
    gy = (
        (p[2:, :-2] + 2 * p[2:, 1:-1] + p[2:, 2:])
        - (p[:-2, :-2] + 2 * p[:-2, 1:-1] + p[:-2, 2:])
    )
    mag = np.hypot(gx, gy)
    angle = np.rad2deg(np.arctan2(gy, gx)) % 180.0
    direction = np.zeros(img.shape, dtype=np.uint8)
    direction[(angle >= 22.5) & (angle < 67.5)] = 1
    direction[(angle >= 67.5) & (angle < 112.5)] = 2
    direction[(angle >= 112.5) & (angle < 157.5)] = 3
    return mag, direction


def nonmax(mag: np.ndarray, direction: np.ndarray) -> np.ndarray:
    """Thin edges: keep pixels that are local maxima along the gradient."""
    h, w = mag.shape
    out = np.zeros_like(mag)
    padded = np.pad(mag, 1, mode="constant")
    offsets = {  # neighbour pair per quantized direction
        0: ((0, 1), (0, -1)),
        1: ((-1, 1), (1, -1)),
        2: ((-1, 0), (1, 0)),
        3: ((-1, -1), (1, 1)),
    }
    for d, ((dy1, dx1), (dy2, dx2)) in offsets.items():
        sel = direction == d
        n1 = padded[1 + dy1 : 1 + dy1 + h, 1 + dx1 : 1 + dx1 + w]
        n2 = padded[1 + dy2 : 1 + dy2 + h, 1 + dx2 : 1 + dx2 + w]
        keep = sel & (mag >= n1) & (mag >= n2)
        out[keep] = mag[keep]
    return out


def hysteresis_threshold(
    nms: np.ndarray, low: float, high: float, max_iters: int = 64
) -> np.ndarray:
    """Double threshold + connectivity: weak pixels survive only when
    connected (8-neighbourhood) to a strong pixel."""
    strong = nms >= high
    weak = (nms >= low) & ~strong
    edges = strong.copy()
    for _ in range(max_iters):
        p = np.pad(edges, 1, mode="constant")
        neighbour = (
            p[:-2, :-2] | p[:-2, 1:-1] | p[:-2, 2:]
            | p[1:-1, :-2] | p[1:-1, 2:]
            | p[2:, :-2] | p[2:, 1:-1] | p[2:, 2:]
        )
        grown = edges | (weak & neighbour)
        if np.array_equal(grown, edges):
            break
        edges = grown
    return edges.astype(np.uint8)


class CannyApp(Application):
    """Instrumented Canny pipeline over a synthetic frame."""

    name = "canny"

    def __init__(self, scale: int = 1, seed: int = 2014) -> None:
        super().__init__(scale=scale, seed=seed)
        self.size = 96 * scale
        if self.size < 16:
            raise ConfigurationError("image too small for Canny")

    def kernel_traits(self) -> Dict[str, KernelTraits]:
        return {
            # Row-streaming works for the local stages; hysteresis is
            # global (connectivity), so it cannot stream its input.
            "gaussian_smooth": KernelTraits(streams_host_io=True),
            "sobel_gradient": KernelTraits(streams_kernel_input=True),
            "nonmax_suppression": KernelTraits(streams_kernel_input=True),
            "hysteresis": KernelTraits(streams_host_io=True),
        }

    def _make_frame(self) -> np.ndarray:
        """A synthetic frame with a bright square plus noise."""
        n = self.size
        img = 16.0 + 8.0 * self.rng.standard_normal((n, n))
        q = n // 4
        img[q : 3 * q, q : 3 * q] += 120.0
        return np.clip(img, 0, 255)

    def execute(self, tracer: Tracer, space: AddressSpace) -> None:
        n = self.size
        image = space.alloc("image", (n, n), np.float32)
        smooth = space.alloc("smooth", (n, n), np.float32)
        mag = space.alloc("mag", (n, n), np.float32)
        direction = space.alloc("dir", (n, n), np.uint8)
        nms_buf = space.alloc("nms", (n, n), np.float32)
        edges = space.alloc("edges", (n, n), np.uint8)

        with tracer.context("frame_capture"):
            image.store_full(self._make_frame())

        with tracer.context("gaussian_smooth"):
            frame = image.load_full()
            smooth.store_full(gaussian_blur(frame))
            tracer.add_work(25.0 * n * n)  # 5x5 taps per pixel

        with tracer.context("sobel_gradient"):
            s = smooth.load_full()
            m, d = sobel(s)
            mag.store_full(m)
            direction.store_full(d)
            tracer.add_work(18.0 * n * n)

        with tracer.context("nonmax_suppression"):
            m = nms = nonmax(mag.load_full(), direction.load_full())
            nms_buf.store_full(nms)
            tracer.add_work(8.0 * n * n)

        with tracer.context("hysteresis"):
            e = hysteresis_threshold(nms_buf.load_full(), low=20.0, high=60.0)
            edges.store_full(e)
            tracer.add_work(12.0 * n * n)

        with tracer.context("display"):
            edges.load_full()  # host consumes the edge map
            mag.load_full()  # ...and the gradient magnitude overlay

    def verify(self, space: AddressSpace) -> None:
        n = self.size
        edges = space.get("edges").data
        q = n // 4
        # The square's border must be detected...
        border = (
            edges[q - 2 : q + 2, q + 4 : 3 * q - 4].sum()
            + edges[3 * q - 2 : 3 * q + 2, q + 4 : 3 * q - 4].sum()
        )
        if border < (3 * q - 4 - (q + 4)):
            raise AssertionError("Canny missed the square's border")
        # ...and the flat interior must stay (mostly) clean.
        interior = edges[q + 8 : 3 * q - 8, q + 8 : 3 * q - 8]
        if interior.mean() > 0.05:
            raise AssertionError("Canny produced spurious interior edges")
