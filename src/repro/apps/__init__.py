"""The paper's four experimental applications, re-implemented.

Each application is real code (NumPy implementations of Canny edge
detection, a JPEG-style decoder, the KLT feature tracker and Stam's
stable-fluid solver) decomposed into the function sets the paper names,
running against tracked buffers so the QUAD-style profiler observes the
genuine producer→consumer traffic.

:mod:`~repro.apps.calibration` maps the profiles onto the paper's
platform numbers (kernel cycle counts, software times, footprints); see
DESIGN.md §6 for the fitting rationale.
"""

from .base import Application, KernelTraits
from .registry import APP_NAMES, get_application
from .calibration import CalibrationTargets, TARGETS, fit_application

__all__ = [
    "Application",
    "KernelTraits",
    "get_application",
    "APP_NAMES",
    "CalibrationTargets",
    "TARGETS",
    "fit_application",
]
