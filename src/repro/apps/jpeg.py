"""JPEG-style decoder (PowerStone ``jpeg``) — instrumented implementation.

The pipeline is the paper's Fig. 5 function set:

* ``huff_dc_dec`` — entropy-decode the differential DC coefficients;
* ``huff_ac_dec`` — entropy-decode the run-length-coded AC coefficients
  (the most computationally intensive function — Huffman decoding is
  serial bit twiddling, and the paper duplicates this kernel);
* ``dquantz_lum`` — dequantize the luminance blocks (consumes DC + AC
  coefficients; its output goes *only* to the IDCT, which is why the
  shared-local-memory solution applies to this pair);
* ``j_rev_dct`` — 8×8 inverse DCT producing pixels for the host.

The encoder lives on the host side: 8×8 pixel blocks are forward-DCT'd,
quantized and entropy-coded into genuine bitstreams, which the kernels
then genuinely decode; :meth:`JpegApp.verify` checks the decoded image
matches the source within quantization error.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..profiling import AddressSpace, Tracer
from .base import Application, KernelTraits

BLOCK = 8

#: JPEG Annex K luminance quantization table.
QUANT_LUM = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.int16,
)


def zigzag_order() -> np.ndarray:
    """Indices of the zig-zag scan over an 8×8 block (length 64)."""
    idx = np.arange(64).reshape(8, 8)
    out: List[int] = []
    for s in range(15):
        diag = [(i, s - i) for i in range(8) if 0 <= s - i < 8]
        if s % 2 == 0:
            diag.reverse()
        out.extend(idx[i, j] for i, j in diag)
    return np.array(out, dtype=np.uint8)


def dct_matrix() -> np.ndarray:
    """The orthonormal 8-point DCT-II basis matrix."""
    k = np.arange(BLOCK)
    c = np.cos((2 * k[None, :] + 1) * k[:, None] * np.pi / (2 * BLOCK))
    m = np.sqrt(2.0 / BLOCK) * c
    m[0, :] = np.sqrt(1.0 / BLOCK)
    return m


_DCT = dct_matrix()


def fdct2(block: np.ndarray) -> np.ndarray:
    """2-D forward DCT of one 8×8 block."""
    return _DCT @ block @ _DCT.T


def idct2(coef: np.ndarray) -> np.ndarray:
    """2-D inverse DCT of one 8×8 block."""
    return _DCT.T @ coef @ _DCT


# --------------------------------------------------------------------------
# Entropy coding: unary size-category + amplitude bits (a simplified but
# genuine prefix code with JPEG's category/amplitude structure).
# --------------------------------------------------------------------------
class BitWriter:
    """Append-only bit stream."""

    def __init__(self) -> None:
        self.bits: List[int] = []

    def write(self, value: int, nbits: int) -> None:
        """Write ``nbits`` of ``value``, MSB first."""
        for i in range(nbits - 1, -1, -1):
            self.bits.append((value >> i) & 1)

    def write_unary(self, n: int) -> None:
        """``n`` ones followed by a zero."""
        self.bits.extend([1] * n)
        self.bits.append(0)

    def to_bytes(self) -> np.ndarray:
        """Pack to a uint8 array (zero padded)."""
        return np.packbits(np.array(self.bits, dtype=np.uint8))


class BitReader:
    """Sequential bit-stream reader over a uint8 array."""

    def __init__(self, data: np.ndarray) -> None:
        self.bits = np.unpackbits(np.asarray(data, dtype=np.uint8))
        self.pos = 0

    def read(self, nbits: int) -> int:
        """Read ``nbits`` MSB-first."""
        if self.pos + nbits > len(self.bits):
            raise ConfigurationError("bitstream underrun")
        value = 0
        for _ in range(nbits):
            value = (value << 1) | int(self.bits[self.pos])
            self.pos += 1
        return value

    def read_unary(self) -> int:
        """Count ones until the terminating zero."""
        n = 0
        while True:
            if self.pos >= len(self.bits):
                raise ConfigurationError("bitstream underrun")
            bit = int(self.bits[self.pos])
            self.pos += 1
            if bit == 0:
                return n
            n += 1


def _category(value: int) -> int:
    """JPEG size category: bit length of |value|."""
    return int(abs(value)).bit_length()


def _encode_amplitude(writer: BitWriter, value: int, cat: int) -> None:
    if cat == 0:
        return
    if value < 0:  # one's-complement style negative coding, as in JPEG
        value = value + (1 << cat) - 1
    writer.write(value, cat)


def _decode_amplitude(reader: BitReader, cat: int) -> int:
    if cat == 0:
        return 0
    raw = reader.read(cat)
    if raw < (1 << (cat - 1)):  # negative range
        return raw - (1 << cat) + 1
    return raw


def encode_dc(dc_values: np.ndarray) -> np.ndarray:
    """Differential DC encoding of all blocks into one bitstream."""
    writer = BitWriter()
    prev = 0
    for dc in dc_values:
        diff = int(dc) - prev
        prev = int(dc)
        cat = _category(diff)
        writer.write_unary(cat)
        _encode_amplitude(writer, diff, cat)
    return writer.to_bytes()


def decode_dc(stream: np.ndarray, n_blocks: int) -> np.ndarray:
    """Inverse of :func:`encode_dc`."""
    reader = BitReader(stream)
    out = np.zeros(n_blocks, dtype=np.int16)
    prev = 0
    for i in range(n_blocks):
        cat = reader.read_unary()
        prev += _decode_amplitude(reader, cat)
        out[i] = prev
    return out


def encode_ac(ac_blocks: np.ndarray) -> np.ndarray:
    """Run-length + category coding of the 63 AC coefficients per block."""
    writer = BitWriter()
    for block in ac_blocks:
        run = 0
        for coef in block:
            if coef == 0:
                run += 1
                continue
            writer.write_unary(run)
            cat = _category(int(coef))
            writer.write_unary(cat)
            _encode_amplitude(writer, int(coef), cat)
            run = 0
        writer.write_unary(63)  # EOB marker (impossible run value)
    return writer.to_bytes()


def decode_ac(stream: np.ndarray, n_blocks: int) -> np.ndarray:
    """Inverse of :func:`encode_ac`."""
    reader = BitReader(stream)
    out = np.zeros((n_blocks, 63), dtype=np.int16)
    for b in range(n_blocks):
        pos = 0
        while True:
            run = reader.read_unary()
            if run == 63:  # EOB
                break
            pos += run
            cat = reader.read_unary()
            if pos >= 63:
                raise ConfigurationError("AC run overflow")
            out[b, pos] = _decode_amplitude(reader, cat)
            pos += 1
    return out


class JpegApp(Application):
    """Instrumented JPEG-style decoder over synthetic image blocks."""

    name = "jpeg"

    def __init__(self, scale: int = 1, seed: int = 2014) -> None:
        super().__init__(scale=scale, seed=seed)
        self.n_blocks = 96 * scale

    def kernel_traits(self) -> Dict[str, KernelTraits]:
        return {
            # Blocks are independent: AC decoding parallelizes across the
            # restart-interval split, which is what duplication exploits.
            "huff_dc_dec": KernelTraits(streams_host_io=True),
            "huff_ac_dec": KernelTraits(
                parallelizable=True, streams_host_io=True
            ),
            "dquantz_lum": KernelTraits(streams_kernel_input=True),
            "j_rev_dct": KernelTraits(
                streams_kernel_input=True, streams_host_io=True
            ),
        }

    # -- encoder (host side, untraced pre-processing) ----------------------
    def _encode_source(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Produce (source pixels, quantized zig-zag coefs, dc stream, ac stream)."""
        n = self.n_blocks
        # Smooth-ish synthetic blocks: low-frequency content + texture.
        yy, xx = np.mgrid[0:BLOCK, 0:BLOCK]
        pixels = np.empty((n, BLOCK, BLOCK), dtype=np.float64)
        for b in range(n):
            fx, fy = self.rng.uniform(0.1, 0.9, size=2)
            base = 128 + 90 * np.sin(fx * xx + b * 0.37) * np.cos(fy * yy)
            pixels[b] = np.clip(base + self.rng.normal(0, 4, (BLOCK, BLOCK)), 0, 255)
        zz = zigzag_order()
        coefs = np.empty((n, 64), dtype=np.int16)
        for b in range(n):
            q = np.round(fdct2(pixels[b] - 128.0) / QUANT_LUM).astype(np.int16)
            coefs[b] = q.reshape(-1)[zz]
        dc_stream = encode_dc(coefs[:, 0])
        ac_stream = encode_ac(coefs[:, 1:])
        return pixels, coefs, dc_stream, ac_stream

    def execute(self, tracer: Tracer, space: AddressSpace) -> None:
        n = self.n_blocks
        pixels_src, coefs_src, dc_bits, ac_bits = self._encode_source()
        self._pixels_src = pixels_src  # kept for verify()

        dc_stream = space.alloc("dc_stream", dc_bits.shape, np.uint8)
        ac_stream = space.alloc("ac_stream", ac_bits.shape, np.uint8)
        quant_tbl = space.alloc("quant_table", (64,), np.int16)
        zz_tbl = space.alloc("zigzag_table", (64,), np.uint8)
        dc_coef = space.alloc("dc_coef", (n,), np.int16)
        ac_coef = space.alloc("ac_coef", (n, 63), np.int16)
        coef = space.alloc("coef", (n, 64), np.int16)
        out_pixels = space.alloc("pixels", (n, BLOCK, BLOCK), np.uint8)

        zz = zigzag_order()
        with tracer.context("bitstream_parse"):
            dc_stream.store_full(dc_bits)
            ac_stream.store_full(ac_bits)
            quant_tbl.store_full(QUANT_LUM.reshape(-1)[zz])
            zz_tbl.store_full(zz)

        with tracer.context("huff_dc_dec"):
            stream = dc_stream.load_full()
            dc_coef.store_full(decode_dc(stream, n))
            tracer.add_work(40.0 * n)

        with tracer.context("huff_ac_dec"):
            stream = ac_stream.load_full()
            ac_coef.store_full(decode_ac(stream, n))
            tracer.add_work(900.0 * n)

        with tracer.context("dquantz_lum"):
            q = quant_tbl.load_full().astype(np.int32)
            dc = dc_coef.load_full().astype(np.int32)
            ac = ac_coef.load_full().astype(np.int32)
            dq = np.empty((n, 64), dtype=np.int16)
            dq[:, 0] = dc * int(q[0])
            dq[:, 1:] = ac * q[1:][None, :]
            coef.store_full(dq)
            tracer.add_work(128.0 * n)

        with tracer.context("j_rev_dct"):
            zz_inv = np.argsort(zz_tbl.load_full())
            dq = coef.load_full().astype(np.float64)
            out = np.empty((n, BLOCK, BLOCK), dtype=np.uint8)
            for b in range(n):
                block = dq[b][zz_inv].reshape(BLOCK, BLOCK)
                out[b] = np.clip(idct2(block) + 128.0, 0, 255).astype(np.uint8)
            out_pixels.store_full(out)
            tracer.add_work(700.0 * n)

        with tracer.context("display"):
            out_pixels.load_full()  # host consumes the decoded frame

    def verify(self, space: AddressSpace) -> None:
        decoded = space.get("pixels").data.astype(np.float64)
        err = np.abs(decoded - self._pixels_src)
        # Quantization with Annex K tables keeps mean error small.
        if err.mean() > 12.0:
            raise AssertionError(
                f"JPEG round-trip error too high (mean {err.mean():.1f})"
            )
