"""Calibration: mapping profiles onto the paper's platform numbers.

We do not have the authors' board, DWARV-generated kernels or ISE
synthesis runs, so per-kernel computation times, software times and
footprints cannot be *measured* — they are **fitted** from quantities the
paper publishes, and everything downstream (the design algorithm, the
proposed-system results, Tables III–IV, Figs. 7–9) then *emerges*:

* the byte volumes come from the real profiled applications (no fitting);
* ``τ_Σ`` (total kernel computation) is set from the published baseline
  communication/computation ratio: ``τ_Σ = C / ρ`` where ``C`` is the
  profiled traffic times ``θ``; per-kernel ``τ_i`` splits ``τ_Σ``
  proportionally to the profiled work counters;
* total software time is set from the published baseline-vs-SW kernel
  speed-up: ``Σ sw = σ_bk · (τ_Σ + C)``;
* the host-resident software time follows from the published
  application-level speed-up: ``T_other = A·(σ_bk − σ_ba)/(σ_ba − 1)``
  with ``A = τ_Σ + C`` (derivation: DESIGN.md §6);
* kernel footprints split Table IV's baseline column (minus the platform
  base and the bus) proportionally to work.

The ``σ`` targets are back-solved from the paper's own Table III
(baseline-vs-SW = proposed-vs-SW ÷ proposed-vs-baseline); ``ρ`` is the
published 3.63 for JPEG and chosen for the other three applications such
that the published average of ≈2.09 holds and the proposed-system
speed-ups land near Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..core.commgraph import CommGraph
from ..core.kernel import KernelSpec
from ..errors import ConfigurationError
from ..hw.resources import ComponentKind, ResourceCost, component_cost
from ..hw.synthesis import PLATFORM_BASE
from ..units import HOST_CLOCK, KERNEL_CLOCK
from .base import Application


@dataclass(frozen=True, slots=True)
class CalibrationTargets:
    """Published (or back-solved) per-application calibration targets."""

    app: str
    #: Baseline communication/computation ratio (Fig. 4 right axis).
    comm_comp_ratio: float
    #: Baseline-vs-SW application speed-up (Table III col2 / col4).
    baseline_app_speedup: float
    #: Baseline-vs-SW kernels speed-up (Table III col3 / col5).
    baseline_kernel_speedup: float
    #: Table IV baseline column.
    baseline_luts: int
    baseline_regs: int
    #: Streaming overhead ``O`` as a fraction of ``τ_Σ``.
    overhead_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.comm_comp_ratio <= 0:
            raise ConfigurationError(f"{self.app}: ratio must be positive")
        if abs(self.baseline_app_speedup - 1.0) < 1e-9:
            raise ConfigurationError(
                f"{self.app}: app speed-up of exactly 1 makes T_other "
                "indeterminate"
            )


#: Calibration table. σ values are Table III ratios; ρ for JPEG is the
#: published 3.63, the others are fitted (average ≈ 2.09 as published).
TARGETS: Dict[str, CalibrationTargets] = {
    "canny": CalibrationTargets(
        app="canny",
        comm_comp_ratio=2.30,
        baseline_app_speedup=3.15 / 1.83,
        baseline_kernel_speedup=3.88 / 2.12,
        baseline_luts=9926,
        baseline_regs=12707,
        overhead_fraction=0.10,
    ),
    "jpeg": CalibrationTargets(
        app="jpeg",
        comm_comp_ratio=3.63,
        baseline_app_speedup=2.33 / 2.87,
        baseline_kernel_speedup=2.5 / 3.08,
        baseline_luts=11755,
        baseline_regs=11910,
        overhead_fraction=0.245,
    ),
    "klt": CalibrationTargets(
        app="klt",
        comm_comp_ratio=1.48,
        baseline_app_speedup=3.72 / 1.26,
        baseline_kernel_speedup=6.58 / 1.55,
        baseline_luts=4721,
        baseline_regs=5430,
    ),
    "fluid": CalibrationTargets(
        app="fluid",
        comm_comp_ratio=0.95,
        baseline_app_speedup=1.66 / 1.59,
        baseline_kernel_speedup=1.68 / 1.60,
        baseline_luts=19125,
        baseline_regs=28793,
    ),
}


@dataclass(frozen=True)
class FittedApplication:
    """A profiled application with calibrated platform quantities."""

    app: Application
    targets: CalibrationTargets
    graph: CommGraph
    theta_s_per_byte: float
    host_other_s: float
    stream_overhead_s: float

    @property
    def name(self) -> str:
        """Application name."""
        return self.app.name


@dataclass(frozen=True, slots=True)
class GraphQuantities:
    """The per-application inputs the calibration math consumes.

    Either view of the communication behaviour produces these: the QUAD
    tracer (:func:`quantities_from_profile`) or the static analyzer
    (:func:`repro.static.fit.static_quantities`). Mapping orders are
    meaningful — ``work`` is in kernel order, edge maps heaviest-first —
    so the fitted :class:`~repro.core.commgraph.CommGraph` serializes
    identically no matter which view supplied the numbers.
    """

    work: Mapping[str, float]
    kk_edges: Mapping[Tuple[str, str], int]
    host_in: Mapping[str, int]
    host_out: Mapping[str, int]


def quantities_from_profile(app: Application) -> GraphQuantities:
    """Read the calibration inputs from a profiled execution."""
    profile = app.profile()
    names = app.kernel_names()
    work = {n: profile.function(n).work for n in names}
    folded = CommGraph.from_profile(
        profile, [KernelSpec(n, 0.0, 0.0) for n in names]
    )
    return GraphQuantities(
        work=work,
        kk_edges=dict(folded.kk_edges),
        host_in=dict(folded.host_in),
        host_out=dict(folded.host_out),
    )


def _proportional_split(total: int, weights: Mapping[str, float]) -> Dict[str, int]:
    """Split an integer total proportionally, conserving the sum."""
    wsum = sum(weights.values())
    if wsum <= 0:
        raise ConfigurationError("cannot split by non-positive weights")
    names = list(weights)
    out = {n: int(total * weights[n] / wsum) for n in names}
    # Hand the rounding remainder to the heaviest entries, biggest first.
    remainder = total - sum(out.values())
    for n in sorted(names, key=lambda n: -weights[n]):
        if remainder <= 0:
            break
        out[n] += 1
        remainder -= 1
    return out


def fit_quantities(
    app: Application,
    quantities: GraphQuantities,
    theta_s_per_byte: float,
    targets: CalibrationTargets | None = None,
) -> FittedApplication:
    """Fit the calibrated communication graph from measured or derived
    quantities (the shared core of the trace and static paths)."""
    if theta_s_per_byte <= 0:
        raise ConfigurationError("theta must be positive")
    targets = targets or TARGETS.get(app.name)
    if targets is None:
        raise ConfigurationError(
            f"no calibration targets for {app.name!r}; pass them explicitly"
        )

    traits = app.kernel_traits()
    names = list(quantities.work)
    work = dict(quantities.work)
    if any(w <= 0 for w in work.values()):
        raise ConfigurationError(
            f"{app.name}: every kernel must charge work; got {work}"
        )

    # Provisional graph to read the byte volumes through Eq. 1.
    provisional = CommGraph(
        kernels={n: KernelSpec(n, 0.0, 0.0) for n in names},
        kk_edges=dict(quantities.kk_edges),
        host_in=dict(quantities.host_in),
        host_out=dict(quantities.host_out),
    )
    traffic = provisional.total_kernel_traffic()
    if traffic <= 0:
        raise ConfigurationError(f"{app.name}: no kernel traffic profiled")

    comm_s = traffic * theta_s_per_byte
    tau_total_s = comm_s / targets.comm_comp_ratio
    a = tau_total_s + comm_s
    sw_total_s = targets.baseline_kernel_speedup * a
    sigma_a = targets.baseline_app_speedup
    sigma_k = targets.baseline_kernel_speedup
    host_other_s = max(a * (sigma_k - sigma_a) / (sigma_a - 1.0), 0.0)

    lut_budget = (
        targets.baseline_luts
        - PLATFORM_BASE.luts
        - component_cost(ComponentKind.BUS).luts
    )
    reg_budget = (
        targets.baseline_regs
        - PLATFORM_BASE.regs
        - component_cost(ComponentKind.BUS).regs
    )
    if lut_budget <= 0 or reg_budget <= 0:
        raise ConfigurationError(
            f"{app.name}: Table IV baseline smaller than platform base"
        )
    luts = _proportional_split(lut_budget, work)
    regs = _proportional_split(reg_budget, work)

    wsum = sum(work.values())
    specs = []
    for n in names:
        share = work[n] / wsum
        t = traits[n]
        specs.append(
            KernelSpec(
                name=n,
                tau_cycles=KERNEL_CLOCK.seconds_to_cycles(tau_total_s * share),
                sw_cycles=HOST_CLOCK.seconds_to_cycles(sw_total_s * share),
                parallelizable=t.parallelizable,
                streams_host_io=t.streams_host_io,
                streams_kernel_input=t.streams_kernel_input,
                resources=ResourceCost(luts[n], regs[n]),
                local_memory_bytes=provisional.d_in(n) + provisional.d_out(n),
            )
        )

    graph = CommGraph(
        kernels={s.name: s for s in specs},
        kk_edges=dict(quantities.kk_edges),
        host_in=dict(quantities.host_in),
        host_out=dict(quantities.host_out),
    )
    return FittedApplication(
        app=app,
        targets=targets,
        graph=graph,
        theta_s_per_byte=theta_s_per_byte,
        host_other_s=host_other_s,
        stream_overhead_s=targets.overhead_fraction * tau_total_s,
    )


def fit_application(
    app: Application,
    theta_s_per_byte: float,
    targets: CalibrationTargets | None = None,
) -> FittedApplication:
    """Profile ``app`` and fit the calibrated communication graph."""
    if theta_s_per_byte <= 0:
        raise ConfigurationError("theta must be positive")
    return fit_quantities(
        app, quantities_from_profile(app), theta_s_per_byte, targets
    )
