"""Application framework: instrumented workloads for the profiler.

An :class:`Application` owns:

* the real computation, written against
  :class:`~repro.profiling.memory.TrackedBuffer` objects and run inside
  tracer contexts, so profiling observes genuine traffic;
* :class:`KernelTraits` for each HW-candidate function — the capability
  flags Algorithm 1 consumes (HW-suitability, parallelizability,
  streaming);
* a verification hook (:meth:`Application.verify`) asserting the
  computation's *functional* output is correct — profiles from broken
  code would be meaningless.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..profiling import AddressSpace, CommunicationProfile, QuadAnalyzer, Tracer


@dataclass(frozen=True, slots=True)
class KernelTraits:
    """Capability flags of one HW-candidate function."""

    hw_suitable: bool = True
    parallelizable: bool = False
    streams_host_io: bool = False
    streams_kernel_input: bool = False


class Application(abc.ABC):
    """An instrumented workload with named kernel candidates."""

    #: Application name (stable identifier used in reports).
    name: str = ""

    def __init__(self, scale: int = 1, seed: int = 2014) -> None:
        if scale < 1:
            raise ConfigurationError(f"scale must be >= 1, got {scale}")
        self.scale = scale
        self.rng = np.random.default_rng(seed)
        self._profile: Optional[CommunicationProfile] = None

    # -- to implement -------------------------------------------------------
    @abc.abstractmethod
    def kernel_traits(self) -> Dict[str, KernelTraits]:
        """Traits of every HW-candidate function, keyed by name."""

    @abc.abstractmethod
    def execute(self, tracer: Tracer, space: AddressSpace) -> None:
        """Run the real computation under the tracer."""

    @abc.abstractmethod
    def verify(self, space: AddressSpace) -> None:
        """Assert functional correctness of the outputs (raises on error)."""

    # -- provided ------------------------------------------------------------
    def run_profiled(self, verify: bool = True) -> CommunicationProfile:
        """Execute once under a fresh tracer and return the profile."""
        tracer = Tracer()
        space = AddressSpace(tracer)
        self.execute(tracer, space)
        if verify:
            with tracer.paused():
                self.verify(space)
        return QuadAnalyzer(tracer).profile()

    def profile(self, refresh: bool = False) -> CommunicationProfile:
        """Cached communication profile of one execution."""
        if self._profile is None or refresh:
            self._profile = self.run_profiled()
        return self._profile

    def kernel_names(self) -> Tuple[str, ...]:
        """HW-suitable kernel-candidate names, stable order."""
        return tuple(
            n for n, t in self.kernel_traits().items() if t.hw_suitable
        )
