"""KLT feature tracker (Shi & Tomasi / Lucas–Kanade) — instrumented.

Two-kernel decomposition:

* ``compute_gradients`` — spatial gradients of the reference frame;
* ``track_features`` — iterative Lucas–Kanade updates per feature.

The gradient arrays are consumed *only* by the tracker, and the tracker
receives kernel data *only* from the gradient kernel, so Algorithm 1
applies the shared-local-memory solution and nothing else — matching the
paper's Table IV, where KLT's solution is "SM" and the proposed system
costs exactly one crossbar more than the baseline. Neither kernel
streams (tracking iterates over a window around each feature), so no
pipelining applies.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..profiling import AddressSpace, Tracer
from .base import Application, KernelTraits

#: Ground-truth translation between the two synthetic frames (pixels).
TRUE_SHIFT = (1.5, -0.8)
#: Half-width of the tracking window.
WIN = 4
#: Lucas–Kanade iterations per feature.
ITERS = 6


def smooth_noise(rng: np.random.Generator, n: int, octaves: int = 3) -> np.ndarray:
    """Band-limited random texture (trackable, unlike white noise)."""
    img = np.zeros((n, n))
    for o in range(octaves):
        step = 2 ** (octaves - o + 1)
        coarse = rng.standard_normal((n // step + 2, n // step + 2))
        up = np.kron(coarse, np.ones((step, step)))[:n, :n]
        img += up * (2.0 ** -o)
    img -= img.min()
    return 255.0 * img / img.max()


def bilinear_sample(img: np.ndarray, ys: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """Bilinear interpolation at fractional coordinates (clipped)."""
    h, w = img.shape
    ys = np.clip(ys, 0, h - 1.001)
    xs = np.clip(xs, 0, w - 1.001)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    fy, fx = ys - y0, xs - x0
    return (
        img[y0, x0] * (1 - fy) * (1 - fx)
        + img[y0, x0 + 1] * (1 - fy) * fx
        + img[y0 + 1, x0] * fy * (1 - fx)
        + img[y0 + 1, x0 + 1] * fy * fx
    )


def central_gradients(img: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Central-difference spatial gradients."""
    gx = np.zeros_like(img)
    gy = np.zeros_like(img)
    gx[:, 1:-1] = (img[:, 2:] - img[:, :-2]) / 2.0
    gy[1:-1, :] = (img[2:, :] - img[:-2, :]) / 2.0
    return gx, gy


def lk_track(
    img1: np.ndarray,
    img2: np.ndarray,
    gx: np.ndarray,
    gy: np.ndarray,
    features: np.ndarray,
) -> np.ndarray:
    """Iterative Lucas–Kanade: track each feature from img1 into img2."""
    tracked = features.astype(np.float64).copy()
    offs = np.arange(-WIN, WIN + 1)
    oy, ox = np.meshgrid(offs, offs, indexing="ij")
    for f in range(features.shape[0]):
        y, x = features[f]
        wy, wx = y + oy, x + ox
        t_gx = bilinear_sample(gx, wy, wx)
        t_gy = bilinear_sample(gy, wy, wx)
        template = bilinear_sample(img1, wy, wx)
        # Structure tensor in (y, x) order to match the displacement d.
        g = np.array(
            [
                [(t_gy * t_gy).sum(), (t_gx * t_gy).sum()],
                [(t_gx * t_gy).sum(), (t_gx * t_gx).sum()],
            ]
        )
        d = tracked[f] - features[f]
        for _ in range(ITERS):
            moved = bilinear_sample(img2, wy + d[0], wx + d[1])
            it = template - moved
            b = np.array([(t_gy * it).sum(), (t_gx * it).sum()])
            try:
                step = np.linalg.solve(g, b)
            except np.linalg.LinAlgError:  # degenerate window
                break
            d = d + step
            if np.abs(step).max() < 1e-3:
                break
        tracked[f] = features[f] + d
    return tracked


class KltApp(Application):
    """Instrumented KLT tracker over a synthetic translated frame pair."""

    name = "klt"

    def __init__(self, scale: int = 1, seed: int = 2014) -> None:
        super().__init__(scale=scale, seed=seed)
        self.size = 128 * scale
        self.n_features = 48 * scale

    def kernel_traits(self) -> Dict[str, KernelTraits]:
        return {
            "compute_gradients": KernelTraits(),
            "track_features": KernelTraits(),
        }

    def execute(self, tracer: Tracer, space: AddressSpace) -> None:
        n = self.size
        frame1 = smooth_noise(self.rng, n)
        ys, xs = np.mgrid[0:n, 0:n]
        # Sampling frame1 at (p - shift) moves the content by +shift, so
        # features tracked from frame1 into frame2 displace by TRUE_SHIFT.
        frame2 = bilinear_sample(frame1, ys - TRUE_SHIFT[0], xs - TRUE_SHIFT[1])

        img1 = space.alloc("img1", (n, n), np.float32)
        img2 = space.alloc("img2", (n, n), np.float32)
        feats = space.alloc("features", (self.n_features, 2), np.float32)
        gx_buf = space.alloc("gx", (n, n), np.float32)
        gy_buf = space.alloc("gy", (n, n), np.float32)
        tracked = space.alloc("tracked", (self.n_features, 2), np.float32)

        with tracer.context("frame_capture"):
            img1.store_full(frame1)
            img2.store_full(frame2)
            # Feature selection on the host: a jittered grid away from
            # the borders (stands in for the Shi–Tomasi corner ranking).
            margin = WIN + 4
            grid = self.rng.uniform(margin, n - margin, (self.n_features, 2))
            feats.store_full(grid.astype(np.float32))

        with tracer.context("compute_gradients"):
            f1 = img1.load_full().astype(np.float64)
            gx, gy = central_gradients(f1)
            gx_buf.store_full(gx)
            gy_buf.store_full(gy)
            tracer.add_work(8.0 * n * n)

        with tracer.context("track_features"):
            f1 = img1.load_full().astype(np.float64)
            f2 = img2.load_full().astype(np.float64)
            gx = gx_buf.load_full().astype(np.float64)
            gy = gy_buf.load_full().astype(np.float64)
            pts = feats.load_full().reshape(-1, 2).astype(np.float64)
            result = lk_track(f1, f2, gx, gy, pts)
            tracked.store_full(result.astype(np.float32))
            win = 2 * WIN + 1
            tracer.add_work(20.0 * self.n_features * ITERS * win * win)

        with tracer.context("display"):
            tracked.load_full()  # host consumes the tracked positions

    def verify(self, space: AddressSpace) -> None:
        feats = space.get("features").data.astype(np.float64)
        tracked = space.get("tracked").data.astype(np.float64)
        disp = tracked - feats
        med = np.median(disp, axis=0)
        err = np.hypot(med[0] - TRUE_SHIFT[0], med[1] - TRUE_SHIFT[1])
        if err > 0.35:
            raise ConfigurationError(
                f"KLT failed to recover the shift: median {med}, "
                f"truth {TRUE_SHIFT}"
            )
