"""Application registry."""

from __future__ import annotations

from typing import Dict, Tuple, Type

from ..errors import ConfigurationError
from .base import Application
from .canny import CannyApp
from .fluid import FluidApp
from .jpeg import JpegApp
from .klt import KltApp

_REGISTRY: Dict[str, Type[Application]] = {
    CannyApp.name: CannyApp,
    JpegApp.name: JpegApp,
    KltApp.name: KltApp,
    FluidApp.name: FluidApp,
}

#: The paper's four experimental applications, evaluation order.
APP_NAMES: Tuple[str, ...] = ("canny", "jpeg", "klt", "fluid")


def get_application(name: str, scale: int = 1, seed: int = 2014) -> Application:
    """Instantiate one of the paper's applications by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown application {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    return cls(scale=scale, seed=seed)
