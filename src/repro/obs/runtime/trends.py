"""Bench-history persistence and regression gating for ``repro bench``.

``BENCH_repro.json`` is one snapshot; this module gives it a memory.
Each bench run appends one compact JSONL entry (``bench-history-entry``)
to ``BENCH_history.jsonl`` — the flattened numeric metrics of the
report, dotted like ``apps.fluid.sim_baseline_s`` — and
``repro bench --compare`` diffs a fresh report against the **median**
of that history before the new entry is appended.

The median, not the latest entry, is the baseline: a single lucky or
unlucky historical run must not move the gate. And only *timing*
metrics (dotted names ending ``_s`` or ``_ms``) are gated, lower is
better, with a small absolute noise floor so sub-tenth-of-a-millisecond
jitter on trivial timings can't fail CI. Ratio metrics like
``fastcore_speedup``, ``profiler_overhead`` and ``cache_speedup`` are
first-class in the trend table — formatted as multipliers with their
own ``ratio`` verdict, and a speedup that *falls* against its baseline
is called out — but they never gate: they are already ratios of gated
quantities, so gating them would double-count a timing regression.

Everything here is pure data-in/data-out (the CLI owns printing and
exit codes), which is what makes the 2×-slowdown injection test in
``tests/test_trends.py`` possible.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from statistics import median
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ...io import FORMAT_VERSION

__all__ = [
    "HISTORY_KIND",
    "MetricDelta",
    "append_history",
    "compare_bench",
    "flatten_bench",
    "load_history",
    "regressions",
    "render_trend_table",
    "sparkline",
]

#: Document kind of one BENCH_history.jsonl line.
HISTORY_KIND = "bench-history-entry"

#: Default failure threshold: current > threshold x median(history).
DEFAULT_THRESHOLD = 1.5

#: Absolute noise floors per timing suffix — baselines below these are
#: too small to gate meaningfully (scheduler jitter dominates).
_NOISE_FLOORS: Mapping[str, float] = {"_s": 5e-5, "_ms": 0.05}

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def flatten_bench(report: Mapping[str, object]) -> Dict[str, float]:
    """Flatten a bench report's numeric leaves into dotted keys.

    ``apps.<name>.<metric>``, ``service.<metric>`` and (when a loadtest
    has been merged in) ``server.<metric>``; envelope fields (kind,
    version, schema, python, ...) are dropped. Booleans are excluded —
    they are numbers to ``isinstance`` but not to a trend line.
    """
    flat: Dict[str, float] = {}

    def _walk(prefix: str, node: object) -> None:
        if isinstance(node, bool):
            return
        if isinstance(node, (int, float)):
            if prefix:
                flat[prefix] = float(node)
            return
        if isinstance(node, Mapping):
            for key, value in node.items():
                _walk(f"{prefix}.{key}" if prefix else str(key), value)

    for section in ("apps", "service", "server"):
        value = report.get(section) if isinstance(report, Mapping) else None
        if isinstance(value, Mapping):
            _walk(section, value)
    return flat


def timing_suffix(name: str) -> Optional[str]:
    """``"_s"`` / ``"_ms"`` when ``name`` is a gated timing metric."""
    leaf = name.rsplit(".", 1)[-1]
    for suffix in ("_ms", "_s"):
        if leaf.endswith(suffix):
            return suffix
    return None


#: Leaf suffixes of displayed-but-never-gated multiplier metrics.
RATIO_SUFFIXES = ("_speedup", "_overhead", "_ratio")


def ratio_metric(name: str) -> bool:
    """Whether ``name`` is a ratio metric (shown as ``Nx``, not gated)."""
    leaf = name.rsplit(".", 1)[-1]
    return leaf.endswith(RATIO_SUFFIXES)


def history_entry(report: Mapping[str, object],
                  ts: Optional[float] = None) -> Dict[str, object]:
    """One JSONL line's document for ``report``."""
    return {
        "kind": HISTORY_KIND,
        "version": FORMAT_VERSION,
        "ts": time.time() if ts is None else ts,
        "python": report.get("python", ""),
        "metrics": flatten_bench(report),
    }


def append_history(report: Mapping[str, object],
                   path: Union[str, Path],
                   ts: Optional[float] = None) -> Dict[str, object]:
    """Append ``report`` to the history file; returns the entry written."""
    entry = history_entry(report, ts=ts)
    target = Path(path)
    with target.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True,
                                separators=(",", ":")) + "\n")
    return entry


def load_history(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a history file, oldest first.

    Tolerant of a missing file (no history yet → empty list) but loud
    about a corrupt one: a line that is not valid JSON or not a
    ``bench-history-entry`` raises ``ValueError``, because silently
    skipping history would silently weaken the gate.
    """
    target = Path(path)
    if not target.exists():
        return []
    entries: List[Dict[str, object]] = []
    for lineno, line in enumerate(
            target.read_text(encoding="utf-8").splitlines(), start=1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except ValueError as exc:
            raise ValueError(
                f"{target}:{lineno}: not valid JSON ({exc})"
            ) from exc
        if not isinstance(doc, dict) or doc.get("kind") != HISTORY_KIND:
            raise ValueError(
                f"{target}:{lineno}: expected a {HISTORY_KIND!r} document"
            )
        entries.append(doc)
    return entries


@dataclass(frozen=True)
class MetricDelta:
    """One metric's position against its history."""

    name: str
    current: float
    baseline: Optional[float]   # median of history; None when no history
    ratio: Optional[float]      # current / baseline
    history: Tuple[float, ...]  # prior values, oldest first
    gated: bool                 # timing metric above the noise floor?
    regressed: bool             # gated and ratio > threshold


def compare_bench(
    report: Mapping[str, object],
    history: List[Dict[str, object]],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[MetricDelta]:
    """Diff ``report`` against the median of ``history`` per metric.

    Every metric present in the current report yields a delta (sorted
    by name); metrics that exist only in history are ignored — a
    *removed* metric is a schema change for the R4 digest to catch,
    not a perf regression.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1.0, got {threshold}")
    current = flatten_bench(report)
    series: Dict[str, List[float]] = {}
    for entry in history:
        metrics = entry.get("metrics")
        if not isinstance(metrics, Mapping):
            continue
        for name, value in metrics.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                series.setdefault(str(name), []).append(float(value))

    deltas: List[MetricDelta] = []
    for name in sorted(current):
        value = current[name]
        past = tuple(series.get(name, ()))
        baseline = median(past) if past else None
        ratio = (value / baseline
                 if baseline is not None and baseline > 0 else None)
        suffix = timing_suffix(name)
        gated = (
            suffix is not None
            and baseline is not None
            and baseline >= _NOISE_FLOORS[suffix]
        )
        regressed = bool(gated and ratio is not None and ratio > threshold)
        deltas.append(MetricDelta(
            name=name, current=value, baseline=baseline, ratio=ratio,
            history=past, gated=gated, regressed=regressed,
        ))
    return deltas


def regressions(deltas: List[MetricDelta]) -> List[MetricDelta]:
    """The subset of ``deltas`` that should fail the gate."""
    return [d for d in deltas if d.regressed]


def sparkline(values: Tuple[float, ...]) -> str:
    """Unicode block sparkline of ``values`` (oldest left)."""
    if not values:
        return ""
    low, high = min(values), max(values)
    if high <= low:
        return _SPARK_BLOCKS[0] * len(values)
    span = high - low
    top = len(_SPARK_BLOCKS) - 1
    return "".join(
        _SPARK_BLOCKS[min(top, int((v - low) / span * top + 0.5))]
        for v in values
    )


def _fmt(name: str, value: Optional[float]) -> str:
    if value is None:
        return "—"
    if timing_suffix(name) == "_s":
        return f"{value * 1e3:.3f}ms"
    if timing_suffix(name) == "_ms":
        return f"{value:.3f}ms"
    if ratio_metric(name):
        return f"{value:.2f}x"
    return f"{value:.3g}"


def render_trend_table(deltas: List[MetricDelta],
                       threshold: float = DEFAULT_THRESHOLD) -> str:
    """ASCII trend table: baseline, current, ratio, sparkline, verdict."""
    width = max([len(d.name) for d in deltas] + [6])
    lines = [
        f"bench trends vs median of history "
        f"(gate: timing > {threshold:.2f}x baseline)",
        f"  {'metric':<{width}}  {'baseline':>12}  {'current':>12}"
        f"  {'ratio':>7}  {'trend':<10}  verdict",
    ]
    for d in deltas:
        trend = sparkline(d.history + (d.current,))
        if d.regressed:
            verdict = "REGRESSED"
        elif ratio_metric(d.name):
            # Never gated, but a speedup falling below its historical
            # baseline is exactly the throughput drift the table exists
            # to surface — name it, don't bury it in "info".
            dropped = (
                d.name.endswith("_speedup")
                and d.ratio is not None
                and d.ratio < 1.0 / threshold
            )
            verdict = "ratio (dropped)" if dropped else "ratio"
        elif not d.gated:
            verdict = "info"
        else:
            verdict = "ok"
        ratio = f"{d.ratio:.2f}x" if d.ratio is not None else "—"
        lines.append(
            f"  {d.name:<{width}}  {_fmt(d.name, d.baseline):>12}"
            f"  {_fmt(d.name, d.current):>12}  {ratio:>7}"
            f"  {trend:<10}  {verdict}"
        )
    return "\n".join(lines)
