"""Runtime telemetry for the *serving system* itself.

``repro.obs`` (PR 2) and ``repro.obs.profile`` (PR 4) observe the
*designs*: spans around Algorithm 1, provenance of every decision,
time-resolved lane utilization. This subpackage observes the *system
that serves them* — the admission/quota/batcher/worker ring added in
PR 6 — and the performance trajectory recorded by ``repro bench``:

``tracecontext``
    W3C-style ``traceparent`` propagation so a single request is one
    connected trace across client, server, batcher, and worker
    processes.
``events``
    A structured, typed JSONL event log (ring buffer + optional file
    sink) with a zero-cost ``NULL_LOG`` null object, mirroring
    ``NULL_TRACER`` / ``NULL_RECORDER``.
``debug``
    Builders/renderers for the ``GET /v1/debug`` introspection
    document and the ``repro top`` terminal dashboard.
``trends``
    Bench-history persistence (``BENCH_history.jsonl``) and
    regression gating for ``repro bench --compare``.

Deliberately *not* imported from ``repro.obs.__init__``: the serving
layers import these modules, and keeping the import edges explicit
(``repro.obs.runtime.events`` → nothing above it) avoids cycles and
keeps ``import repro.obs`` light.
"""

from .events import (
    DEFAULT_TENANT,
    EVENT_KINDS,
    MAX_TENANT_CHARS,
    NULL_LOG,
    EventLog,
    NullEventLog,
    RuntimeEvent,
    sanitize_tenant,
)
from .tracecontext import (
    TraceContext,
    format_traceparent,
    new_trace_context,
    parse_traceparent,
)

__all__ = [
    "DEFAULT_TENANT",
    "EVENT_KINDS",
    "MAX_TENANT_CHARS",
    "NULL_LOG",
    "EventLog",
    "NullEventLog",
    "RuntimeEvent",
    "TraceContext",
    "format_traceparent",
    "new_trace_context",
    "parse_traceparent",
    "sanitize_tenant",
]
