"""Renderers for runtime introspection: ``repro top`` over ``/v1/debug``.

The server assembles the live-state document (see
:func:`repro.server.protocol.debug_response`); this module only turns
that document — plus, optionally, the raw ``/metrics`` exposition —
into a terminal dashboard. Pure functions returning strings: printing
is the CLI's job (and the R5 lint rule bans raw ``print`` under
``repro.obs`` precisely so modules like this stay renderers).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

__all__ = ["render_top"]

_BAR_WIDTH = 24


def _bar(value: float, limit: float, width: int = _BAR_WIDTH) -> str:
    """``[#####.....]`` utilization bar; clamped, safe for limit<=0."""
    frac = 0.0 if limit <= 0 else min(1.0, max(0.0, value / limit))
    filled = int(round(frac * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _num(node: Mapping[str, object], key: str, default: float = 0.0) -> float:
    value = node.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return default
    return float(value)


def _section(node: object) -> Mapping[str, object]:
    return node if isinstance(node, Mapping) else {}


def _latency_lines(metrics_text: str, limit: int = 6) -> List[str]:
    """Pick the per-route exemplar gauges out of a /metrics scrape."""
    rows = [line for line in metrics_text.splitlines()
            if line.startswith("repro_http_request_last_seconds{")]
    return rows[:limit]


def render_top(
    doc: Mapping[str, object],
    metrics_text: Optional[str] = None,
    events_shown: int = 8,
) -> str:
    """One frame of the ``repro top`` dashboard.

    ``doc`` is the full ``debug-response`` envelope (or just its
    ``debug`` body — both are accepted so tests can feed the body
    directly). Missing sections render as empty rather than raising:
    a dashboard must degrade, not crash, against an older server.
    """
    debug = _section(doc.get("debug", doc))
    lines: List[str] = []

    admission = _section(debug.get("admission"))
    inflight = _num(admission, "inflight")
    max_inflight = _num(admission, "max_inflight")
    queued = _num(admission, "queue_depth")
    max_queue = _num(admission, "max_queue")
    draining = bool(admission.get("draining", False))
    state = "DRAINING" if draining else "serving"
    lines.append(
        f"repro top — {state}, uptime {_num(debug, 'uptime_s'):8.1f}s, "
        f"trace {doc.get('trace_id', '')}"
    )
    lines.append(
        f"  inflight {_bar(inflight, max_inflight)} "
        f"{inflight:.0f}/{max_inflight:.0f}   "
        f"queue {_bar(queued, max_queue)} {queued:.0f}/{max_queue:.0f}   "
        f"ewma {_num(admission, 'latency_ewma_s') * 1e3:.1f}ms"
    )

    batcher = _section(debug.get("batcher"))
    lines.append(
        f"  batcher: {_num(batcher, 'pending'):.0f} pending, "
        f"window {_num(batcher, 'window_s') * 1e3:.1f}ms, "
        f"max batch {_num(batcher, 'max_batch'):.0f}"
    )

    cache = _section(debug.get("cache"))
    service = _section(debug.get("service"))
    lines.append(
        f"  cache: {_num(cache, 'hits'):.0f} hits / "
        f"{_num(cache, 'misses'):.0f} misses   "
        f"service: {_num(service, 'jobs_submitted'):.0f} submitted, "
        f"{_num(service, 'jobs_coalesced'):.0f} coalesced, "
        f"{_num(service, 'jobs_failed'):.0f} failed"
    )

    tenants = _section(debug.get("tenants"))
    if tenants:
        lines.append("  tenants (tokens remaining):")
        for name in sorted(tenants):
            bucket = _section(tenants[name])
            remaining = _num(bucket, "remaining")
            burst = _num(bucket, "burst")
            lines.append(
                f"    {name:<24} {_bar(remaining, burst)} "
                f"{remaining:6.1f}/{burst:.0f}"
            )

    requests = debug.get("inflight_requests")
    if isinstance(requests, Sequence) and requests:
        lines.append("  in-flight requests:")
        for row in requests:
            entry = _section(row)
            lines.append(
                f"    {str(entry.get('trace_id', '')):<32} "
                f"{str(entry.get('route', '')):<18} "
                f"{str(entry.get('tenant', '')):<16} "
                f"age {_num(entry, 'age_s') * 1e3:8.1f}ms"
            )

    events = _section(debug.get("events"))
    recent = events.get("recent")
    if isinstance(recent, Sequence) and recent:
        lines.append(f"  recent events (last {events_shown}):")
        for row in list(recent)[-events_shown:]:
            entry = _section(row)
            fields = _section(entry.get("fields"))
            detail = " ".join(
                f"{key}={fields[key]}" for key in sorted(fields)
            )
            lines.append(
                f"    {str(entry.get('kind', '')):<18} "
                f"trace={str(entry.get('trace_id', ''))[:16]:<16} "
                f"{detail}"
            )

    if metrics_text:
        exemplars = _latency_lines(metrics_text)
        if exemplars:
            lines.append("  last request latency per route (exemplars):")
            lines.extend(f"    {row}" for row in exemplars)

    return "\n".join(lines)
