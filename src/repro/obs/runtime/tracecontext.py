"""W3C-style trace-context propagation.

A request's identity on the wire is a ``traceparent`` header::

    00-<32 lowercase hex trace-id>-<16 lowercase hex span-id>-<2 hex flags>

(`W3C Trace Context <https://www.w3.org/TR/trace-context/>`_, level 1).
``DesignClient`` mints a fresh context per request; ``DesignServer``
parses it (or mints its own for clients that send none) and threads the
``trace_id`` through admission → quota → batcher → ``submit_many`` →
``run_job_instrumented``, so the spans each process records can be
merged into one connected per-request trace, and every event in the
runtime :class:`~repro.obs.runtime.events.EventLog` can be joined back
to the request that caused it.

Parsing is deliberately forgiving: a malformed header yields ``None``
and the server simply starts a new trace — an instrumentation bug must
never fail a request.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

__all__ = [
    "TraceContext",
    "format_traceparent",
    "new_trace_context",
    "parse_traceparent",
]

_TRACE_ID_CHARS = 32
_SPAN_ID_CHARS = 16
_SUPPORTED_VERSION = "00"
_HEX = frozenset("0123456789abcdef")


def _is_hex(value: str, width: int) -> bool:
    return len(value) == width and all(c in _HEX for c in value)


@dataclass(frozen=True)
class TraceContext:
    """One hop of a distributed trace: ``trace_id`` names the whole
    request, ``span_id`` names this hop within it."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def child(self) -> "TraceContext":
        """A new hop in the same trace (fresh ``span_id``)."""
        return replace(self, span_id=_random_hex(_SPAN_ID_CHARS))

    def to_traceparent(self) -> str:
        flags = "01" if self.sampled else "00"
        return f"{_SUPPORTED_VERSION}-{self.trace_id}-{self.span_id}-{flags}"


def _random_hex(chars: int) -> str:
    return os.urandom(chars // 2).hex()


def new_trace_context() -> TraceContext:
    """Mint a fresh root context with random ids (``os.urandom``)."""
    return TraceContext(
        trace_id=_random_hex(_TRACE_ID_CHARS),
        span_id=_random_hex(_SPAN_ID_CHARS),
        sampled=True,
    )


def format_traceparent(ctx: TraceContext) -> str:
    return ctx.to_traceparent()


def parse_traceparent(header: object) -> TraceContext | None:
    """Parse a ``traceparent`` header value.

    Returns ``None`` for anything malformed (wrong shape, bad hex,
    all-zero ids, reserved version ``ff``) rather than raising: the
    caller falls back to a fresh context. Per the spec, versions above
    ``00`` are accepted as long as the first four fields parse.
    """
    if not isinstance(header, str):
        return None
    parts = header.strip().lower().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id, flags = parts[0], parts[1], parts[2], parts[3]
    if not _is_hex(version, 2) or version == "ff":
        return None
    if version == _SUPPORTED_VERSION and len(parts) != 4:
        return None
    if not _is_hex(trace_id, _TRACE_ID_CHARS) or trace_id == "0" * _TRACE_ID_CHARS:
        return None
    if not _is_hex(span_id, _SPAN_ID_CHARS) or span_id == "0" * _SPAN_ID_CHARS:
        return None
    if not _is_hex(flags, 2):
        return None
    sampled = bool(int(flags, 16) & 0x01)
    return TraceContext(trace_id=trace_id, span_id=span_id, sampled=sampled)
