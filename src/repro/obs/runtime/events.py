"""Structured runtime event log: a typed ring buffer with a JSONL sink.

Where :class:`repro.obs.trace.Tracer` answers "*how long* did each stage
of this request take", the :class:`EventLog` answers "*what happened*,
in order, across all requests": admissions rejected, quotas tripped,
batches flushed, caches hit, pools recycled, drains progressing. Every
event carries the W3C trace id of the request that caused it (see
:mod:`repro.obs.runtime.tracecontext`), so the log joins against both
the span trees and the response envelopes.

Design rules, matching the rest of ``repro.obs``:

* **Typed kinds.** ``emit`` refuses kinds outside :data:`EVENT_KINDS` —
  an event stream you can't enumerate is an event stream you can't
  alert on.
* **Bounded memory.** Events land in a ``deque(maxlen=capacity)`` ring;
  the optional JSONL file sink is the durable copy.
* **Null object.** :data:`NULL_LOG` mirrors ``NULL_TRACER`` /
  ``NULL_RECORDER``: hot paths guard with ``if events.enabled:`` so a
  disabled log costs one attribute read and a branch — zero
  allocations (asserted in ``tests/test_runtime_obs.py``).
* **Sanitized values.** Tenants pass through :func:`sanitize_tenant`
  (whose definition *lives here* now — ``repro.server.quota``
  re-exports it) and free-form string fields are scrubbed of
  non-printable characters with the same policy, so a hostile header
  can't smuggle newlines into the JSONL stream. Label-style escaping
  for Prometheus is still :func:`repro.service.metrics.metric_key`'s
  job, which :meth:`EventLog.metric_counts` reuses.

Thread-safety: a single lock guards the ring, the counters, and the
sink. Emission happens on the event loop *and* on executor threads, so
this is load-bearing, not ceremony.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, IO, Mapping, Optional, Tuple, Union

from ...errors import ConfigurationError

__all__ = [
    "DEFAULT_TENANT",
    "EVENT_KINDS",
    "MAX_TENANT_CHARS",
    "NULL_LOG",
    "EventLog",
    "NullEventLog",
    "RuntimeEvent",
    "sanitize_tenant",
]

#: Tenant bucket for requests without an ``X-Tenant`` header.
DEFAULT_TENANT = "anonymous"

#: Longest accepted tenant id; the rest is truncated, keeping metric
#: label cardinality and exposition line length bounded.
MAX_TENANT_CHARS = 64

#: The closed vocabulary of runtime events. One entry per observable
#: state change in the serving ring; extending the system means
#: extending this set (and the DESIGN.md §13 table) in the same PR.
EVENT_KINDS = frozenset({
    "request_start",      # request admitted past parsing; fields: route
    "request_finish",     # response written; fields: route, status, duration_ms
    "admission_reject",   # 429 from the inflight/queue bound; fields: route, retry_after_s
    "quota_reject",       # 429 from the tenant token bucket; fields: route, retry_after_s
    "batch_flush",        # micro-batch handed to submit_many; fields: size, reason
    "cache_hit",          # fingerprint served from ResultCache; fields: app, fingerprint
    "cache_miss",         # fingerprint scheduled for execution; fields: app, fingerprint
    "pool_recycle",       # worker pool torn down and rebuilt; fields: reason
    "drain_begin",        # SIGTERM/stop received, readiness dropped
    "drain_idle",         # in-flight requests and batcher drained
    "drain_done",         # worker pool reaped; fields: clean
    "watchdog_trip",      # a liveness source stalled; fields: source, detail
    "watchdog_clear",     # a stalled source recovered; fields: source
    "flight_dump",        # post-mortem dump written; fields: reason, path
})

#: Field values are restricted to JSON scalars; anything else is
#: stringified (then scrubbed like any other string).
FieldValue = Union[str, int, float, bool, None]


def sanitize_tenant(raw: str) -> str:
    """Normalize a client-supplied tenant id for quota + metric use.

    Control characters (including ``\\r``/``\\n`` — header smuggling)
    are dropped, surrounding whitespace is stripped, and the result is
    truncated to :data:`MAX_TENANT_CHARS`. An id that sanitizes to
    nothing falls back to :data:`DEFAULT_TENANT`. Printable characters
    like ``"`` and ``\\`` are *kept* — escaping them is the metric
    layer's job (:func:`repro.service.metrics.metric_key`), and the
    quota table is a plain dict where any string key is safe.
    """
    cleaned = "".join(ch for ch in raw if ch.isprintable()).strip()
    cleaned = cleaned[:MAX_TENANT_CHARS]
    return cleaned if cleaned else DEFAULT_TENANT


def _clean_field(value: object) -> FieldValue:
    """Coerce an event field to a JSON scalar, scrubbing strings."""
    if value is None or isinstance(value, (bool, int, float)):
        return value
    text = value if isinstance(value, str) else str(value)
    return "".join(ch for ch in text if ch.isprintable())[:256]


@dataclass(frozen=True)
class RuntimeEvent:
    """One entry in the log; immutable once recorded."""

    seq: int
    ts: float
    kind: str
    trace_id: str
    tenant: str
    fields: Mapping[str, FieldValue] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "tenant": self.tenant,
            "fields": dict(self.fields),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))


class EventLog:
    """Ring buffer of :class:`RuntimeEvent` with an optional JSONL sink.

    ``capacity`` bounds the in-memory ring (``/v1/debug`` serves its
    tail); ``sink`` is a path whose file receives every event as one
    JSON line, opened lazily on first emit and flushed per line so a
    crash loses at most the event being written.

    ``sink_max_bytes`` caps the sink file: once appending the next line
    would cross the cap, the current file rotates to ``<sink>.1``
    (replacing any previous rotation) and a fresh file starts — a
    long-running server keeps at most two generations on disk instead
    of an unbounded log (``repro serve --event-log-max-mb``).
    """

    enabled: bool = True

    def __init__(self, capacity: int = 1024,
                 sink: Optional[str] = None,
                 sink_max_bytes: Optional[int] = None) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"event log capacity must be >= 1, got {capacity}"
            )
        if sink_max_bytes is not None and sink_max_bytes < 1:
            raise ConfigurationError(
                f"sink_max_bytes must be >= 1, got {sink_max_bytes}"
            )
        self._capacity = int(capacity)
        self._ring: Tuple[RuntimeEvent, ...] = ()
        self._buffer: list[RuntimeEvent] = []
        self._counts: Dict[str, int] = {}
        self._seq = 0
        self._sink_path = sink
        self._sink: Optional[IO[str]] = None
        self._sink_max_bytes = sink_max_bytes
        self._sink_bytes = 0
        self._rotations = 0
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return self._capacity

    def emit(self, kind: str, *, trace_id: str = "", tenant: str = "",
             **fields: object) -> Optional[RuntimeEvent]:
        """Record one event; returns it (the null log returns ``None``).

        ``kind`` must come from :data:`EVENT_KINDS`; ``tenant`` is
        sanitized, field values scrubbed to printable JSON scalars.
        """
        if kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown runtime event kind {kind!r}; "
                f"known: {', '.join(sorted(EVENT_KINDS))}"
            )
        clean_fields = {key: _clean_field(value)
                        for key, value in sorted(fields.items())}
        clean_tenant = sanitize_tenant(tenant) if tenant else ""
        with self._lock:
            event = RuntimeEvent(
                seq=self._seq,
                ts=time.time(),
                kind=kind,
                trace_id=trace_id,
                tenant=clean_tenant,
                fields=clean_fields,
            )
            self._seq += 1
            self._buffer.append(event)
            if len(self._buffer) > self._capacity:
                del self._buffer[: len(self._buffer) - self._capacity]
            self._counts[kind] = self._counts.get(kind, 0) + 1
            if self._sink_path is not None:
                if self._sink is None:
                    self._sink = open(self._sink_path, "a", encoding="utf-8")
                    self._sink_bytes = self._sink.tell()
                line = event.to_json() + "\n"
                encoded = len(line.encode("utf-8"))
                if (
                    self._sink_max_bytes is not None
                    and self._sink_bytes > 0
                    and self._sink_bytes + encoded > self._sink_max_bytes
                ):
                    self._rotate_locked()
                self._sink.write(line)
                self._sink_bytes += encoded
                self._sink.flush()
        return event

    def _rotate_locked(self) -> None:
        """Roll the sink to ``<path>.1`` and start fresh (lock held)."""
        assert self._sink is not None and self._sink_path is not None
        self._sink.close()
        os.replace(self._sink_path, self._sink_path + ".1")
        self._sink = open(self._sink_path, "a", encoding="utf-8")
        self._sink_bytes = 0
        self._rotations += 1

    @property
    def rotations(self) -> int:
        """Sink rollovers performed since construction."""
        with self._lock:
            return self._rotations

    def events(self) -> Tuple[RuntimeEvent, ...]:
        """Ring contents, oldest first."""
        with self._lock:
            return tuple(self._buffer)

    def tail(self, n: int) -> Tuple[RuntimeEvent, ...]:
        """The most recent ``n`` events, oldest first."""
        if n <= 0:
            return ()
        with self._lock:
            return tuple(self._buffer[-n:])

    def counts(self) -> Dict[str, int]:
        """Total emits per kind since construction (not ring-bounded)."""
        with self._lock:
            return dict(self._counts)

    def metric_counts(self) -> Dict[str, int]:
        """:meth:`counts` keyed as Prometheus series names.

        Reuses :func:`repro.service.metrics.metric_key` so kind labels
        get the same escaping as every other label value in the repo.
        (Imported lazily: ``repro.obs.runtime`` sits below the service
        layer in the import DAG.)
        """
        from ...service.metrics import metric_key

        return {
            metric_key("runtime_events", {"kind": kind}): count
            for kind, count in sorted(self.counts().items())
        }

    def to_jsonl(self) -> str:
        """The ring as JSONL (the sink file holds the full history)."""
        return "".join(event.to_json() + "\n" for event in self.events())

    def close(self) -> None:
        """Close the sink file, if one was opened. Idempotent."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None


class NullEventLog(EventLog):
    """Do-nothing log: the default wherever telemetry is optional.

    Call sites on hot paths guard with ``if events.enabled:`` so the
    disabled cost is one attribute read — no kwargs dict, no lock, no
    event object. ``emit`` is still safe to call directly (returns
    ``None``), it just records nothing.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def emit(self, kind: str, *, trace_id: str = "", tenant: str = "",
             **fields: object) -> Optional[RuntimeEvent]:
        return None


#: Shared null instance, mirroring ``NULL_TRACER`` / ``NULL_RECORDER``.
NULL_LOG = NullEventLog()
