"""Span tracing for the experiment pipeline.

:class:`Tracer` records nested, monotonic-clock-timed spans through a
context-manager API and exports them as JSONL or Chrome ``trace_event``
JSON (loadable in ``chrome://tracing`` / Perfetto). It is deliberately
zero-dependency and cheap:

* the default everywhere is :data:`NULL_TRACER`, a :class:`NullTracer`
  whose ``span()`` hands back one shared no-op context manager — the
  disabled path allocates nothing and records nothing;
* recording appends to an in-memory buffer under a lock, so threads can
  share one tracer; worker *processes* build their own tracer and the
  service merges the serialized spans back (:meth:`Tracer.merge`);
* timestamps come from ``time.perf_counter`` (monotonic), relative to
  the tracer's construction. Wall-clock values are confined to the
  ``start_us``/``duration_us`` fields so determinism tests can compare
  everything else.

This is *pipeline* tracing — not to be confused with the QUAD-style
memory-access tracer in :mod:`repro.profiling.tracer`.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union


@dataclass(frozen=True)
class SpanEvent:
    """One recorded span (or instant marker)."""

    name: str
    category: str
    #: Monotonic microseconds since the owning tracer's epoch.
    start_us: float
    duration_us: float
    pid: int
    tid: int
    #: Record order within the emitting tracer (merge keeps per-worker order).
    seq: int
    #: Chrome trace phase: ``"X"`` complete span, ``"i"`` instant.
    phase: str = "X"
    args: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON/pickle-safe plain-dict form (the JSONL record shape)."""
        return {
            "name": self.name,
            "category": self.category,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "pid": self.pid,
            "tid": self.tid,
            "seq": self.seq,
            "phase": self.phase,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpanEvent":
        """Inverse of :meth:`as_dict`."""
        return cls(
            name=data["name"],
            category=data["category"],
            start_us=data["start_us"],
            duration_us=data["duration_us"],
            pid=data["pid"],
            tid=data["tid"],
            seq=data["seq"],
            phase=data.get("phase", "X"),
            args=dict(data.get("args", {})),
        )

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome ``trace_event`` form of this span."""
        event: Dict[str, Any] = {
            "name": self.name,
            "cat": self.category,
            "ph": self.phase,
            "ts": self.start_us,
            "pid": self.pid,
            "tid": self.tid,
            "args": dict(self.args),
        }
        if self.phase == "X":
            event["dur"] = self.duration_us
        else:
            event["s"] = "t"  # instant scope: thread
        return event


class Tracer:
    """Collects nested spans; thread-safe, per-process buffers."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._events: List[SpanEvent] = []
        self._lock = threading.Lock()
        self._pid = os.getpid()

    # -- recording ---------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether this tracer records anything (``False`` for the null)."""
        return True

    @property
    def epoch_s(self) -> float:
        """The ``time.perf_counter`` value span timestamps are relative
        to — lets samplers fold their own perf_counter timestamps onto
        this tracer's timeline (:meth:`StackSampler.fold_spans`)."""
        return self._epoch

    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    @contextlib.contextmanager
    def span(self, name: str, category: str = "pipeline", **args: Any) -> Iterator[None]:
        """Record the enclosed block as one complete span."""
        start = self._now_us()
        try:
            yield
        finally:
            end = self._now_us()
            self._append(
                SpanEvent(
                    name=name,
                    category=category,
                    start_us=start,
                    duration_us=end - start,
                    pid=self._pid,
                    tid=threading.get_ident(),
                    seq=0,  # assigned under the lock
                    phase="X",
                    args=args,
                )
            )

    def instant(self, name: str, category: str = "pipeline", **args: Any) -> None:
        """Record a zero-duration marker at the current time."""
        now = self._now_us()
        self._append(
            SpanEvent(
                name=name,
                category=category,
                start_us=now,
                duration_us=0.0,
                pid=self._pid,
                tid=threading.get_ident(),
                seq=0,
                phase="i",
                args=args,
            )
        )

    def _append(self, event: SpanEvent) -> None:
        with self._lock:
            object.__setattr__(event, "seq", len(self._events))
            self._events.append(event)

    # -- merging -----------------------------------------------------------
    def merge(self, spans: Iterable[Union[SpanEvent, Mapping[str, Any]]]) -> int:
        """Adopt spans from another tracer (e.g. a worker process).

        Accepts :class:`SpanEvent` objects or their :meth:`~SpanEvent.as_dict`
        form; the original ``pid``/``tid`` are preserved so per-worker
        lanes stay separate in chrome://tracing. Returns the count merged.
        """
        incoming = [
            s if isinstance(s, SpanEvent) else SpanEvent.from_dict(s)
            for s in spans
        ]
        with self._lock:
            base = len(self._events)
            for i, ev in enumerate(incoming):
                object.__setattr__(ev, "seq", base + i)
                self._events.append(ev)
        return len(incoming)

    # -- inspection / export -----------------------------------------------
    @property
    def events(self) -> Tuple[SpanEvent, ...]:
        """All recorded spans, record order."""
        with self._lock:
            return tuple(self._events)

    def as_dicts(self) -> List[Dict[str, Any]]:
        """All spans as plain dicts (pickle/JSON-safe worker transport)."""
        return [e.as_dict() for e in self.events]

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Chrome ``trace_event`` JSON document (``traceEvents`` array)."""
        return {
            "traceEvents": [e.to_chrome() for e in self.events],
            "displayTimeUnit": "ms",
        }

    def write_chrome_trace(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the chrome://tracing-loadable JSON file; returns the path."""
        out = pathlib.Path(path)
        out.write_text(json.dumps(self.to_chrome_trace()) + "\n")
        return out

    def to_jsonl(self) -> str:
        """One JSON object per line, record order."""
        return "".join(json.dumps(d, sort_keys=True) + "\n" for d in self.as_dicts())

    def write_jsonl(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the JSONL form; returns the path."""
        out = pathlib.Path(path)
        out.write_text(self.to_jsonl())
        return out


class _NullContext:
    """A reusable do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer(Tracer):
    """The off-by-default tracer: every operation is a no-op."""

    def __init__(self) -> None:  # no buffers, no lock, no clock reads
        pass

    @property
    def enabled(self) -> bool:
        return False

    @property
    def epoch_s(self) -> float:
        return 0.0

    def span(self, name: str, category: str = "pipeline", **args: Any):  # type: ignore[override]
        return _NULL_CONTEXT

    def instant(self, name: str, category: str = "pipeline", **args: Any) -> None:
        return None

    def merge(self, spans: Iterable[Union[SpanEvent, Mapping[str, Any]]]) -> int:
        return 0

    @property
    def events(self) -> Tuple[SpanEvent, ...]:
        return ()


#: Shared no-op tracer; ``tracer or NULL_TRACER`` is the idiom everywhere.
NULL_TRACER = NullTracer()


def active(tracer: Optional[Tracer]) -> Tracer:
    """Normalize an optional tracer argument to a usable instance."""
    return NULL_TRACER if tracer is None else tracer


@contextlib.contextmanager
def timed(registry: Any, name: str, labels: Optional[Mapping[str, Any]] = None) -> Iterator[None]:
    """Observe the enclosed block's wall time into a metrics registry.

    The one sanctioned place where a clock meets the registry: the
    registry itself stays clock-free (see :mod:`repro.service.metrics`).
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        registry.observe(name, time.perf_counter() - start, labels=labels)
