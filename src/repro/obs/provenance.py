"""Design-decision provenance: why Algorithm 1 did what it did.

Every decision the interconnect designer takes — kernel selection, the
``Δ_dp`` duplication test, shared-local-memory matches (and the edges
that *failed* the ``D^K_i(out) = D^K_j(in)`` condition), Table I
``{R,S} → {K,M}`` classifications, mesh placement with per-edge hop
distances, and the pipelining ``Δ_p1``/``Δ_p2`` tests — is recorded as a
typed :class:`ProvenanceEvent` and attached to the resulting
:class:`~repro.core.plan.InterconnectPlan`.

Events are **deterministic**: they carry no clocks, no pids, no
randomness — only the decision inputs and outcomes, in the exact order
the designer evaluated them. Two designs of the same graph under the
same config produce identical event sequences, which the determinism
tests pin. When a live tracer is attached, each event is additionally
mirrored as an instant marker on the span timeline.

``repro explain <app>`` renders the log via :func:`render_provenance`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .trace import Tracer, active

#: Tracer category provenance instants are filed under.
PROV_CATEGORY = "design"

# Stage names, in Algorithm 1 order.
STAGE_CONFIG = "config"
STAGE_SELECT = "select"
STAGE_DUPLICATION = "duplication"
STAGE_SHARING = "sharing"
STAGE_CLASSIFY = "classify"
STAGE_PLACEMENT = "placement"
STAGE_NOC = "noc"
STAGE_PIPELINE = "pipeline"

#: Render order of the stages (config first, pipeline last).
STAGE_ORDER = (
    STAGE_CONFIG,
    STAGE_SELECT,
    STAGE_DUPLICATION,
    STAGE_SHARING,
    STAGE_CLASSIFY,
    STAGE_NOC,
    STAGE_PLACEMENT,
    STAGE_PIPELINE,
)


@dataclass(frozen=True)
class ProvenanceEvent:
    """One typed, deterministic design decision."""

    #: Position in the designer's evaluation order.
    seq: int
    #: One of the ``STAGE_*`` constants.
    stage: str
    #: The kernel, ``producer->consumer`` edge, or app the event is about.
    subject: str
    #: ``applied`` / ``rejected`` / ``info`` / ``disabled`` / ...
    outcome: str
    #: Sorted ``(key, value)`` pairs — the decision's inputs and numbers.
    detail: Tuple[Tuple[str, Any], ...] = ()

    @property
    def detail_map(self) -> Dict[str, Any]:
        """The detail pairs as a plain dict."""
        return dict(self.detail)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe form (``repro explain --json`` rows)."""
        return {
            "seq": self.seq,
            "stage": self.stage,
            "subject": self.subject,
            "outcome": self.outcome,
            "detail": self.detail_map,
        }


class ProvenanceLog:
    """Ordered event collector the designer writes into."""

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self._events: List[ProvenanceEvent] = []
        self._tracer = active(tracer)

    def record(
        self, stage: str, subject: str, outcome: str = "info", **detail: Any
    ) -> ProvenanceEvent:
        """Append one event; mirrors it onto the tracer as an instant."""
        event = ProvenanceEvent(
            seq=len(self._events),
            stage=stage,
            subject=subject,
            outcome=outcome,
            detail=tuple(sorted(detail.items())),
        )
        self._events.append(event)
        if self._tracer.enabled:
            self._tracer.instant(
                f"{stage}:{subject}",
                category=PROV_CATEGORY,
                outcome=outcome,
                **detail,
            )
        return event

    def events(self) -> Tuple[ProvenanceEvent, ...]:
        """Everything recorded so far, evaluation order."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)


def _us(seconds: Any) -> str:
    return f"{float(seconds) * 1e6:+.2f}us"


def _format_event(event: ProvenanceEvent) -> str:
    """One human-readable line per event (the ``repro explain`` body)."""
    d = event.detail_map
    if event.stage == STAGE_CONFIG:
        toggles = ", ".join(f"{k}={v}" for k, v in sorted(d.items()))
        return f"{event.subject}: {toggles}"
    if event.stage == STAGE_SELECT:
        return (
            f"{event.subject:<22} tau={d.get('tau_cycles', 0):.0f}cyc "
            f"K-in/out={d.get('d_k_in', 0)}/{d.get('d_k_out', 0)}B "
            f"H-in/out={d.get('d_h_in', 0)}/{d.get('d_h_out', 0)}B"
        )
    if event.stage == STAGE_DUPLICATION:
        return (
            f"{event.subject:<22} {event.outcome:<9} "
            f"Δ_dp={_us(d.get('delta_dp_s', 0.0))} ({d.get('reason', '')})"
        )
    if event.stage == STAGE_SHARING:
        if event.outcome == "disabled":
            return f"{event.subject}: {d.get('reason', 'disabled')}"
        style = "crossbar" if d.get("crossbar") else "direct"
        tail = style if event.outcome == "applied" else d.get("reason", "")
        return (
            f"{event.subject:<22} {event.outcome:<9} "
            f"D_ij={d.get('bytes', 0)}B ({tail})"
        )
    if event.stage == STAGE_CLASSIFY:
        return (
            f"{event.subject:<22} {{{d.get('receive')},{d.get('send')}}} -> "
            f"{{{d.get('attach_kernel')},{d.get('attach_memory')}}}"
            f"  [{d.get('rule', '')}]"
        )
    if event.stage == STAGE_NOC:
        if event.outcome != "built":
            return f"{event.subject}: {d.get('reason', event.outcome)}"
        return (
            f"{d.get('width')}x{d.get('height')} {d.get('topology', 'mesh')}, "
            f"{d.get('routers')} routers, weighted cost "
            f"{d.get('weighted_cost', 0.0):.0f} byte-hops"
        )
    if event.stage == STAGE_PLACEMENT:
        if event.outcome == "placed":
            return f"router({d.get('x')},{d.get('y')}) <- {event.subject}"
        return (
            f"{event.subject:<28} {d.get('bytes', 0)}B x "
            f"{d.get('hops', 0)} hops"
        )
    if event.stage == STAGE_PIPELINE:
        if event.outcome == "disabled":
            return f"{event.subject}: {d.get('reason', 'disabled')}"
        delta = "Δ_p1" if d.get("case") == "case1" else "Δ_p2"
        return (
            f"{event.subject:<22} {event.outcome:<9} "
            f"{delta}={_us(d.get('delta_s', 0.0))} "
            f"({d.get('reason', '')})"
        )
    extras = ", ".join(f"{k}={v}" for k, v in event.detail)
    return f"{event.subject} {event.outcome} {extras}".rstrip()


_STAGE_TITLES = {
    STAGE_CONFIG: "configuration",
    STAGE_SELECT: "kernel selection (Algorithm 1, line 1)",
    STAGE_DUPLICATION: "duplication (lines 2-6, Δ_dp = τ/2 - O)",
    STAGE_SHARING: "shared local memory (lines 8-13, D^K_i(out) = D^K_j(in))",
    STAGE_CLASSIFY: "adaptive mapping (line 14, Table I)",
    STAGE_NOC: "NoC construction",
    STAGE_PLACEMENT: "mesh placement (Section IV-B)",
    STAGE_PIPELINE: "pipelining (line 15, Δ_p1/Δ_p2)",
}


def render_provenance(plan: Any) -> str:
    """Multi-line decision log of a plan (``repro explain`` output).

    ``plan`` is an :class:`~repro.core.plan.InterconnectPlan`; typed
    loosely to keep this module import-cycle-free.
    """
    events: Tuple[ProvenanceEvent, ...] = tuple(plan.provenance)
    lines = [
        f"Design provenance for {plan.app!r} — {len(events)} decisions, "
        f"solution {plan.solution_label()!r}"
    ]
    if not events:
        lines.append(
            "  (no provenance recorded — plan predates the obs layer)"
        )
        return "\n".join(lines)
    for stage in STAGE_ORDER:
        staged = [e for e in events if e.stage == stage]
        if not staged:
            continue
        lines.append(f"{_STAGE_TITLES.get(stage, stage)}:")
        for event in staged:
            lines.append(f"  [{event.seq:>3}] {_format_event(event)}")
    return "\n".join(lines)
