"""Observability layer: span tracing, design provenance, exporters.

Three deterministic, zero-dependency pieces threaded through the whole
stack (see DESIGN.md §8):

* :class:`Tracer` / :data:`NULL_TRACER` — nested monotonic-clock spans
  with JSONL and Chrome ``trace_event`` export; the no-op null tracer is
  the default everywhere, so disabled instrumentation costs nothing and
  never perturbs golden outputs;
* :class:`ProvenanceLog` / :class:`ProvenanceEvent` — every Algorithm 1
  decision (duplication slack, sharing matches, Table I classes,
  placement distances, pipelining deltas) recorded as typed events on
  the plan and rendered by ``repro explain``;
* :func:`to_prometheus` / :func:`to_json_snapshot` — exporters over the
  shared :class:`~repro.service.metrics.MetricsRegistry` snapshot schema
  used by the service, the sweep CLI, simulator statistics and the
  benchmark harness.
"""

from .export import PROM_PREFIX, to_json_snapshot, to_prometheus, write_metrics
from .provenance import (
    PROV_CATEGORY,
    STAGE_CLASSIFY,
    STAGE_CONFIG,
    STAGE_DUPLICATION,
    STAGE_NOC,
    STAGE_ORDER,
    STAGE_PIPELINE,
    STAGE_PLACEMENT,
    STAGE_SELECT,
    STAGE_SHARING,
    ProvenanceEvent,
    ProvenanceLog,
    render_provenance,
)
from .trace import NULL_TRACER, NullTracer, SpanEvent, Tracer, active, timed

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "PROM_PREFIX",
    "PROV_CATEGORY",
    "ProvenanceEvent",
    "ProvenanceLog",
    "STAGE_CLASSIFY",
    "STAGE_CONFIG",
    "STAGE_DUPLICATION",
    "STAGE_NOC",
    "STAGE_ORDER",
    "STAGE_PIPELINE",
    "STAGE_PLACEMENT",
    "STAGE_SELECT",
    "STAGE_SHARING",
    "SpanEvent",
    "Tracer",
    "active",
    "render_provenance",
    "timed",
    "to_json_snapshot",
    "to_prometheus",
    "write_metrics",
]
