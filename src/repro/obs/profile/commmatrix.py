"""The simulated communication matrix and its byte-conservation diff.

The design flow starts from a QUAD communication graph — bytes each
producer hands each consumer. The simulator then *moves* those bytes
over concrete channels (the shared bus, shared local memories, NoC
routes). This module aggregates the recorder's delivery samples into a
producer→consumer×channel matrix and diffs it against the input graph:
every byte the profile promised must arrive, on some channel, exactly
once. A mismatch means the system model dropped or duplicated data —
the strongest cheap end-to-end check the simulator admits.

Two conservation modes mirror the two simulated systems:

* ``direct`` (the proposed system): kernel→kernel deliveries must match
  ``kk_edges`` pair-exact; host↔kernel deliveries must match
  ``D^H`` quantities;
* ``mediated`` (the bus baseline): all traffic is host-mediated, so the
  expectation is ``host→k == D_in(k)`` and ``k→host == D_out(k)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ...core.commgraph import CommGraph
from ...errors import ConfigurationError
from .recorder import Delivery

#: Channel classes deliveries are filed under.
CHANNEL_BUS = "bus"
CHANNEL_SM = "sm"
CHANNEL_NOC = "noc"

HOST = "host"


@dataclass(frozen=True)
class MatrixEntry:
    """Aggregated bytes one producer delivered one consumer per channel."""

    producer: str
    consumer: str
    channel: str
    bytes_moved: int


@dataclass(frozen=True)
class ConservationReport:
    """Outcome of diffing the simulated matrix against the input graph."""

    mode: str
    ok: bool
    #: Human-readable mismatch descriptions (empty when ``ok``).
    mismatches: Tuple[str, ...]
    #: Number of expected pairs checked.
    checked_pairs: int


def build_matrix(deliveries: Sequence[Delivery]) -> Tuple[MatrixEntry, ...]:
    """Aggregate raw delivery samples, sorted for determinism."""
    totals: Dict[Tuple[str, str, str], int] = {}
    for _t, producer, consumer, nbytes, channel in deliveries:
        key = (producer, consumer, channel)
        totals[key] = totals.get(key, 0) + nbytes
    return tuple(
        MatrixEntry(producer=p, consumer=c, channel=ch, bytes_moved=b)
        for (p, c, ch), b in sorted(totals.items())
    )


def pair_totals(matrix: Sequence[MatrixEntry]) -> Dict[Tuple[str, str], int]:
    """Producer→consumer byte totals summed over channels."""
    totals: Dict[Tuple[str, str], int] = {}
    for entry in matrix:
        key = (entry.producer, entry.consumer)
        totals[key] = totals.get(key, 0) + entry.bytes_moved
    return totals


def _expected_pairs(graph: CommGraph, mode: str) -> Dict[Tuple[str, str], int]:
    expected: Dict[Tuple[str, str], int] = {}
    if mode == "direct":
        for (p, c), b in graph.kk_edges.items():
            if b > 0:
                expected[(p, c)] = b
        for k in graph.kernel_names():
            if graph.d_h_in(k) > 0:
                expected[(HOST, k)] = graph.d_h_in(k)
            if graph.d_h_out(k) > 0:
                expected[(k, HOST)] = graph.d_h_out(k)
    elif mode == "mediated":
        for k in graph.kernel_names():
            if graph.d_in(k) > 0:
                expected[(HOST, k)] = graph.d_in(k)
            if graph.d_out(k) > 0:
                expected[(k, HOST)] = graph.d_out(k)
    else:
        raise ConfigurationError(
            f"unknown conservation mode {mode!r}; use 'direct' or 'mediated'"
        )
    return expected


def check_conservation(
    matrix: Sequence[MatrixEntry], graph: CommGraph, mode: str = "direct"
) -> ConservationReport:
    """Diff the simulated matrix against the graph's byte quantities.

    Exact integer comparison per pair; unexpected pairs (bytes the
    simulator moved that the graph never promised) are mismatches too.
    """
    expected = _expected_pairs(graph, mode)
    observed = pair_totals(matrix)
    mismatches = []
    for pair in sorted(expected):
        want = expected[pair]
        got = observed.get(pair, 0)
        if got != want:
            mismatches.append(
                f"{pair[0]}->{pair[1]}: expected {want} B, simulated {got} B"
            )
    for pair in sorted(set(observed) - set(expected)):
        mismatches.append(
            f"{pair[0]}->{pair[1]}: simulated {observed[pair]} B "
            "but the graph has no such edge"
        )
    return ConservationReport(
        mode=mode,
        ok=not mismatches,
        mismatches=tuple(mismatches),
        checked_pairs=len(expected),
    )
