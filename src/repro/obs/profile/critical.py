"""Critical-path extraction: where did the makespan actually go?

The discrete-event run leaves a set of activity spans (compute halves,
bus bursts, DMA setups, NoC hop traversals, arbitration waits). The
makespan's critical path is reconstructed by walking *backwards* from
the final event: at each point in time ``t`` the walk picks the span
that was finishing there (preferring, deterministically, real work over
waits), attributes the interval back to that span's start to its kind,
and jumps to the start. Intervals no recorded span covers become
``unattributed`` segments (host-side gaps, event plumbing).

The resulting segments partition ``[0, makespan]`` exactly — each
segment begins where the previous one ended — so the per-category
attribution *telescopes*: its sum equals the makespan up to float
summation error, which the acceptance tests pin at 1e-9 relative.

This is an attribution walk, not a full dependency-graph longest path:
when several spans end at the same instant the tie-break (work before
waits, then lane name) chooses one true chain among the equally-long
candidates. That is exactly what a profiler wants — *a* maximal chain,
deterministically — and costs O(segments × spans), which at the few
thousand spans a run produces is microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .recorder import ActivitySpan

#: Attribution categories, preference order for simultaneous ends:
#: real work first, then waits; ``unattributed`` only fills gaps.
CATEGORY_ORDER = (
    "compute",
    "bus",
    "dma",
    "noc",
    "bus_wait",
    "noc_wait",
    "unattributed",
)

UNATTRIBUTED = "unattributed"


@dataclass(frozen=True)
class Segment:
    """One interval of the critical path with its time attribution."""

    start_s: float
    end_s: float
    kind: str
    lane: str
    detail: str

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def extract_critical_path(
    activities: Sequence[ActivitySpan], makespan_s: float
) -> Tuple[Tuple[Segment, ...], Dict[str, float]]:
    """Walk back from ``makespan_s`` and attribute every interval.

    Returns the chronological segment chain and the per-category
    seconds. Unknown activity kinds get their own category so custom
    instrumentation is never silently folded into ``unattributed``.
    """
    spans = [s for s in activities if s[3] > s[2]]
    prio = {kind: i for i, kind in enumerate(CATEGORY_ORDER)}

    segments: List[Segment] = []
    t = makespan_s
    while t > 0:
        best = None
        for span in spans:
            kind, lane, start, end, _detail = span
            if start >= t or end < t:
                continue
            if best is None:
                best = span
                continue
            b_kind, b_lane, b_start, b_end, _b = best
            rank = (
                -start, prio.get(kind, len(prio)), lane, -end,
            )
            b_rank = (
                -b_start, prio.get(b_kind, len(prio)), b_lane, -b_end,
            )
            if rank < b_rank:
                best = span
        if best is None:
            # Gap: nothing was running at t; attribute back to the
            # latest span end before t (or time zero).
            prev_end = 0.0
            for _kind, _lane, _start, end, _detail in spans:
                if end < t and end > prev_end:
                    prev_end = end
            segments.append(Segment(prev_end, t, UNATTRIBUTED, "", ""))
            t = prev_end
        else:
            kind, lane, start, end, detail = best
            segments.append(Segment(start, t, kind, lane, detail))
            t = start

    segments.reverse()
    attribution: Dict[str, float] = {kind: 0.0 for kind in CATEGORY_ORDER}
    for seg in segments:
        attribution[seg.kind] = attribution.get(seg.kind, 0.0) + seg.duration_s
    return tuple(segments), attribution
