"""The instrumentation sink the simulation core writes into.

:class:`TimeseriesRecorder` collects three kinds of timestamped samples
from the discrete-event components (bus, DMA, kernels, NoC links):

* **activity spans** ``(kind, lane, start_s, end_s, detail)`` — a
  resource doing work (or a requester waiting for it, for the
  ``*_wait`` kinds). These feed the utilization timeseries and the
  critical-path extractor;
* **occupancy samples** ``(t_s, lane, in_use, queued)`` — instantaneous
  resource state at grant/release edges, the source of queue-depth
  watermarks;
* **deliveries** ``(t_s, producer, consumer, nbytes, channel)`` — data
  logically arriving at a consumer over a channel class (``bus`` /
  ``sm`` / ``noc``), the raw material of the simulated communication
  matrix that is diffed against the QUAD input graph.

Storage is plain tuples in plain lists: appending one is the entire
per-sample cost, so profiling an enabled run stays well under the
2x-overhead budget the bench gate enforces.

:class:`NullRecorder` / :data:`NULL_RECORDER` follow the
:data:`~repro.obs.trace.NULL_TRACER` null-object pattern: every method
is a no-op, ``enabled`` is ``False`` so hot paths can skip argument
construction entirely, and no per-event state is allocated — disabled
runs are bit-identical to un-instrumented ones.
"""

from __future__ import annotations

from typing import List, Tuple

#: ``(kind, lane, start_s, end_s, detail)``
ActivitySpan = Tuple[str, str, float, float, str]
#: ``(t_s, lane, in_use, queued)``
OccupancySample = Tuple[float, str, int, int]
#: ``(t_s, producer, consumer, nbytes, channel)``
Delivery = Tuple[float, str, str, int, str]


class TimeseriesRecorder:
    """Collects activity/occupancy/delivery samples from a simulation."""

    __slots__ = ("activities", "occupancy_samples", "deliveries")

    #: Hot paths check this before building sample arguments.
    enabled = True

    def __init__(self) -> None:
        self.activities: List[ActivitySpan] = []
        self.occupancy_samples: List[OccupancySample] = []
        self.deliveries: List[Delivery] = []

    def activity(
        self, kind: str, lane: str, start_s: float, end_s: float,
        detail: str = "",
    ) -> None:
        """Record a span of ``lane`` doing ``kind`` work.

        Zero-length spans are dropped: they carry no time to attribute
        and would stall the critical-path walk.
        """
        if end_s > start_s:
            self.activities.append((kind, lane, start_s, end_s, detail))

    def occupancy(self, lane: str, t_s: float, in_use: int, queued: int) -> None:
        """Record a resource-state edge (grant/release instant)."""
        self.occupancy_samples.append((t_s, lane, in_use, queued))

    def delivery(
        self, t_s: float, producer: str, consumer: str, nbytes: int,
        channel: str,
    ) -> None:
        """Record ``nbytes`` logically arriving over ``channel``."""
        if nbytes > 0:
            self.deliveries.append((t_s, producer, consumer, int(nbytes), channel))


class NullRecorder:
    """No-op recorder: the zero-cost default on every component."""

    __slots__ = ()

    enabled = False

    def activity(
        self, kind: str, lane: str, start_s: float, end_s: float,
        detail: str = "",
    ) -> None:
        pass

    def occupancy(self, lane: str, t_s: float, in_use: int, queued: int) -> None:
        pass

    def delivery(
        self, t_s: float, producer: str, consumer: str, nbytes: int,
        channel: str,
    ) -> None:
        pass


#: Shared no-op instance; components default to it.
NULL_RECORDER = NullRecorder()
