"""Assembled simulation profiles: build, serialize, render.

:func:`build_profile` fuses one run's recorder samples into a
:class:`SimulationProfile` — the utilization timeseries, the simulated
communication matrix with its conservation diff, and the critical-path
attribution — and the renderers turn it into the three consumable
forms: ASCII (``repro profile`` stdout), a self-contained HTML report
(``--html``), and versioned JSON (``--json`` and the service's
``profile_dir`` persistence).
"""

from __future__ import annotations

import html as html_mod
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from ...core.commgraph import CommGraph
from ...core.plan import InterconnectPlan
from ...errors import ConfigurationError
from ...io import FORMAT_VERSION, validate_document
from ...sim.systems import SimulatedTimes
from ...sim.timeline import render_gantt, render_utilization_lanes
from .commmatrix import (
    ConservationReport,
    MatrixEntry,
    build_matrix,
    check_conservation,
)
from .critical import CATEGORY_ORDER, Segment, extract_critical_path
from .recorder import TimeseriesRecorder
from .timeseries import (
    LaneSeries,
    build_timeseries,
    lane_series_from_dict,
    lane_series_to_dict,
)

#: Document kind of one serialized profile.
PROFILE_KIND = "sim-profile"
#: Document kind of a per-job set of profiles (service ``profile_dir``).
PROFILE_SET_KIND = "sim-profile-set"

#: Category colors shared by the HTML report's bars and legends.
_KIND_COLORS = {
    "compute": "#4caf50",
    "bus": "#ff9800",
    "dma": "#9c27b0",
    "noc": "#2196f3",
    "bus_wait": "#f44336",
    "noc_wait": "#e91e63",
    "unattributed": "#9e9e9e",
}


@dataclass(frozen=True)
class SimulationProfile:
    """Everything the profiler measured about one simulated run."""

    app: str
    system: str
    makespan_s: float
    bucket_s: float
    lanes: Tuple[LaneSeries, ...]
    matrix: Tuple[MatrixEntry, ...]
    conservation: ConservationReport
    critical_path: Tuple[Segment, ...]
    attribution: Dict[str, float]
    kernel_spans: Dict[str, Tuple[float, float]]

    @property
    def attribution_total_s(self) -> float:
        """Σ of the attribution — equals the makespan by construction."""
        return sum(self.attribution.values())

    def lane(self, name: str) -> Optional[LaneSeries]:
        """The named lane's series, or ``None``."""
        for series in self.lanes:
            if series.lane == name:
                return series
        return None

    def channel_bytes(self, channel: str) -> int:
        """Total bytes delivered over one channel class."""
        return sum(
            e.bytes_moved for e in self.matrix if e.channel == channel
        )


def build_profile(
    app: str,
    times: SimulatedTimes,
    recorder: TimeseriesRecorder,
    graph: CommGraph,
    buckets: int = 64,
    mode: str = "direct",
) -> SimulationProfile:
    """Fuse one run's samples into a :class:`SimulationProfile`.

    ``graph`` is the communication graph the run executed (for the
    proposed system: the *post-duplication* plan graph) and ``mode``
    selects the conservation expectation — ``direct`` for the proposed
    system, ``mediated`` for the host-mediated bus baseline.
    """
    makespan = times.kernels_s
    if makespan <= 0:
        raise ConfigurationError(
            f"cannot profile a zero-makespan run of {app!r}"
        )
    lanes = build_timeseries(
        recorder.activities, recorder.occupancy_samples, makespan,
        buckets=buckets,
    )
    matrix = build_matrix(recorder.deliveries)
    conservation = check_conservation(matrix, graph, mode=mode)
    segments, attribution = extract_critical_path(
        recorder.activities, makespan
    )
    return SimulationProfile(
        app=app,
        system=times.label,
        makespan_s=makespan,
        bucket_s=makespan / buckets,
        lanes=lanes,
        matrix=matrix,
        conservation=conservation,
        critical_path=segments,
        attribution=attribution,
        kernel_spans=dict(times.kernel_spans),
    )


# -- serialization -----------------------------------------------------------


def profile_to_dict(profile: SimulationProfile) -> Dict[str, Any]:
    """Versioned JSON-safe form (``kind: sim-profile``)."""
    return {
        "kind": PROFILE_KIND,
        "version": FORMAT_VERSION,
        "app": profile.app,
        "system": profile.system,
        "makespan_s": profile.makespan_s,
        "bucket_s": profile.bucket_s,
        "lanes": [lane_series_to_dict(s) for s in profile.lanes],
        "matrix": [
            {"producer": e.producer, "consumer": e.consumer,
             "channel": e.channel, "bytes": e.bytes_moved}
            for e in profile.matrix
        ],
        "conservation": {
            "mode": profile.conservation.mode,
            "ok": profile.conservation.ok,
            "mismatches": list(profile.conservation.mismatches),
            "checked_pairs": profile.conservation.checked_pairs,
        },
        "critical_path": [
            {"start_s": s.start_s, "end_s": s.end_s, "kind": s.kind,
             "lane": s.lane, "detail": s.detail}
            for s in profile.critical_path
        ],
        "attribution": dict(sorted(profile.attribution.items())),
        "kernel_spans": {
            name: [start, end]
            for name, (start, end) in sorted(profile.kernel_spans.items())
        },
    }


def profile_from_dict(data: Dict[str, Any]) -> SimulationProfile:
    """Inverse of :func:`profile_to_dict` (validates the envelope)."""
    validate_document(data, PROFILE_KIND)
    cons = data["conservation"]
    return SimulationProfile(
        app=data["app"],
        system=data["system"],
        makespan_s=data["makespan_s"],
        bucket_s=data["bucket_s"],
        lanes=tuple(lane_series_from_dict(d) for d in data["lanes"]),
        matrix=tuple(
            MatrixEntry(
                producer=e["producer"], consumer=e["consumer"],
                channel=e["channel"], bytes_moved=e["bytes"],
            )
            for e in data["matrix"]
        ),
        conservation=ConservationReport(
            mode=cons["mode"],
            ok=cons["ok"],
            mismatches=tuple(cons["mismatches"]),
            checked_pairs=cons["checked_pairs"],
        ),
        critical_path=tuple(
            Segment(
                start_s=s["start_s"], end_s=s["end_s"], kind=s["kind"],
                lane=s["lane"], detail=s["detail"],
            )
            for s in data["critical_path"]
        ),
        attribution=dict(data["attribution"]),
        kernel_spans={
            name: (span[0], span[1])
            for name, span in data["kernel_spans"].items()
        },
    )


def profile_set_to_dict(
    app: str, profiles: Mapping[str, SimulationProfile]
) -> Dict[str, Any]:
    """Bundle several systems' profiles of one run into one document."""
    return {
        "kind": PROFILE_SET_KIND,
        "version": FORMAT_VERSION,
        "app": app,
        "profiles": {
            system: profile_to_dict(p)
            for system, p in sorted(profiles.items())
        },
    }


def profile_set_from_dict(
    data: Dict[str, Any]
) -> Dict[str, SimulationProfile]:
    """Inverse of :func:`profile_set_to_dict`."""
    validate_document(data, PROFILE_SET_KIND)
    return {
        system: profile_from_dict(d)
        for system, d in data["profiles"].items()
    }


# -- text rendering ----------------------------------------------------------


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f} ms"


def render_profile_text(
    profile: SimulationProfile, width: int = 60, top_lanes: int = 8
) -> str:
    """Terminal rendering: attribution, conservation, lanes, matrix."""
    p = profile
    lines = [
        f"simulation profile [{p.app}/{p.system}] "
        f"makespan {_fmt_ms(p.makespan_s)} "
        f"({len(p.lanes[0].buckets) if p.lanes else 0} buckets of "
        f"{p.bucket_s * 1e6:.1f} us)",
        "",
        "critical-path attribution:",
    ]
    for kind in CATEGORY_ORDER:
        seconds = p.attribution.get(kind, 0.0)
        if seconds <= 0:
            continue
        lines.append(
            f"  {kind:<14} {_fmt_ms(seconds):>12}  "
            f"{seconds / p.makespan_s:6.1%}"
        )
    for kind in sorted(set(p.attribution) - set(CATEGORY_ORDER)):
        seconds = p.attribution[kind]
        if seconds > 0:
            lines.append(
                f"  {kind:<14} {_fmt_ms(seconds):>12}  "
                f"{seconds / p.makespan_s:6.1%}"
            )
    lines.append(
        f"  {'total':<14} {_fmt_ms(p.attribution_total_s):>12}  "
        f"{p.attribution_total_s / p.makespan_s:6.1%}"
    )
    cons = p.conservation
    lines.append("")
    if cons.ok:
        lines.append(
            f"byte conservation [{cons.mode}]: ok "
            f"({cons.checked_pairs} pairs exact)"
        )
    else:
        lines.append(f"byte conservation [{cons.mode}]: FAILED")
        lines.extend(f"  {m}" for m in cons.mismatches)
    if p.lanes:
        lines.append("")
        lines.append(f"utilization lanes (top {min(top_lanes, len(p.lanes))} "
                     f"by busy time; peak queue in brackets):")
        shown = p.lanes[:top_lanes]
        chart = render_utilization_lanes(
            {
                f"{s.lane} [{s.peak_queue}]": s.buckets
                for s in shown
            },
            horizon_s=p.makespan_s,
        )
        lines.extend("  " + row for row in chart.splitlines())
    if p.matrix:
        lines.append("")
        lines.append("communication matrix (simulated deliveries):")
        name_w = max(
            len(f"{e.producer} -> {e.consumer}") for e in p.matrix
        )
        for e in p.matrix:
            pair = f"{e.producer} -> {e.consumer}"
            lines.append(
                f"  {pair:<{name_w}}  {e.channel:<4} {e.bytes_moved:>10} B"
            )
    if p.kernel_spans:
        lines.append("")
        lines.append("kernel timeline:")
        chart = render_gantt(
            p.kernel_spans, width=width, end_time=p.makespan_s
        )
        lines.extend("  " + row for row in chart.splitlines())
    return "\n".join(lines)


# -- HTML rendering ----------------------------------------------------------


def _esc(text: object) -> str:
    return html_mod.escape(str(text), quote=True)


def _html_attribution_bar(profile: SimulationProfile) -> str:
    cells = []
    for kind in CATEGORY_ORDER:
        seconds = profile.attribution.get(kind, 0.0)
        if seconds <= 0:
            continue
        pct = 100.0 * seconds / profile.makespan_s
        color = _KIND_COLORS.get(kind, "#607d8b")
        cells.append(
            f'<div class="seg" style="width:{pct:.2f}%;'
            f'background:{color}" title="{_esc(kind)}: '
            f'{seconds * 1e3:.3f} ms ({pct:.1f}%)"></div>'
        )
    legend = " ".join(
        f'<span class="key"><span class="swatch" style="background:'
        f'{_KIND_COLORS.get(kind, "#607d8b")}"></span>{_esc(kind)} '
        f"{profile.attribution.get(kind, 0.0) * 1e3:.3f} ms</span>"
        for kind in CATEGORY_ORDER
        if profile.attribution.get(kind, 0.0) > 0
    )
    return f'<div class="bar">{"".join(cells)}</div><p>{legend}</p>'


def _html_gantt_svg(profile: SimulationProfile) -> str:
    spans = sorted(profile.kernel_spans.items(), key=lambda kv: (kv[1][0], kv[0]))
    if not spans:
        return "<p>(no kernel spans)</p>"
    row_h, chart_w, label_w = 18, 640, 150
    height = row_h * len(spans) + 4
    parts = [
        f'<svg width="{label_w + chart_w + 8}" height="{height}" '
        f'role="img">'
    ]
    for i, (name, (start, end)) in enumerate(spans):
        y = 2 + i * row_h
        x = label_w + chart_w * start / profile.makespan_s
        w = max(chart_w * (end - start) / profile.makespan_s, 1.0)
        parts.append(
            f'<text x="{label_w - 6}" y="{y + 13}" text-anchor="end" '
            f'font-size="11">{_esc(name)}</text>'
        )
        parts.append(
            f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
            f'height="{row_h - 4}" fill="{_KIND_COLORS["compute"]}">'
            f"<title>{_esc(name)}: {start * 1e3:.3f}-{end * 1e3:.3f} ms"
            f"</title></rect>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _html_lane_heatmap(profile: SimulationProfile, top_lanes: int = 12) -> str:
    if not profile.lanes:
        return "<p>(no lanes)</p>"
    rows = []
    for series in profile.lanes[:top_lanes]:
        cells = "".join(
            f'<td style="background:rgba(33,150,243,{min(f, 1.0):.3f})" '
            f'title="{f:.0%}"></td>'
            for f in series.buckets
        )
        rows.append(
            f"<tr><th>{_esc(series.lane)}</th>{cells}"
            f"<td class=\"num\">{series.utilization:.1%}</td>"
            f"<td class=\"num\">q{series.peak_queue}</td></tr>"
        )
    return (
        '<table class="heat"><thead><tr><th>lane</th>'
        f'<th colspan="{len(profile.lanes[0].buckets)}">'
        f"0 → {profile.makespan_s * 1e3:.3f} ms</th>"
        "<th>util</th><th>peak queue</th></tr></thead>"
        f'<tbody>{"".join(rows)}</tbody></table>'
    )


def _html_matrix_table(profile: SimulationProfile) -> str:
    if not profile.matrix:
        return "<p>(no deliveries recorded)</p>"
    rows = "".join(
        f"<tr><td>{_esc(e.producer)}</td><td>{_esc(e.consumer)}</td>"
        f"<td>{_esc(e.channel)}</td><td class=\"num\">{e.bytes_moved}</td></tr>"
        for e in profile.matrix
    )
    return (
        "<table><thead><tr><th>producer</th><th>consumer</th>"
        "<th>channel</th><th>bytes</th></tr></thead>"
        f"<tbody>{rows}</tbody></table>"
    )


def _html_section(profile: SimulationProfile) -> str:
    cons = profile.conservation
    badge = (
        '<span class="ok">byte conservation ok '
        f"({cons.checked_pairs} pairs, {_esc(cons.mode)})</span>"
        if cons.ok
        else '<span class="bad">byte conservation FAILED: '
        + "; ".join(_esc(m) for m in cons.mismatches)
        + "</span>"
    )
    top_segments = sorted(
        profile.critical_path, key=lambda s: -s.duration_s
    )[:12]
    seg_rows = "".join(
        f"<tr><td>{s.start_s * 1e3:.3f}</td><td>{s.end_s * 1e3:.3f}</td>"
        f"<td>{_esc(s.kind)}</td><td>{_esc(s.lane)}</td>"
        f"<td>{_esc(s.detail)}</td>"
        f"<td class=\"num\">{s.duration_s * 1e3:.3f}</td></tr>"
        for s in top_segments
    )
    return f"""
<section>
<h2>{_esc(profile.system)} — makespan {profile.makespan_s * 1e3:.3f} ms</h2>
<p>{badge}</p>
<h3>Critical-path attribution</h3>
{_html_attribution_bar(profile)}
<h3>Kernel timeline</h3>
{_html_gantt_svg(profile)}
<h3>Utilization lanes</h3>
{_html_lane_heatmap(profile)}
<h3>Longest critical-path segments</h3>
<table><thead><tr><th>start ms</th><th>end ms</th><th>kind</th>
<th>lane</th><th>detail</th><th>ms</th></tr></thead>
<tbody>{seg_rows}</tbody></table>
<h3>Communication matrix</h3>
{_html_matrix_table(profile)}
</section>
"""


def render_html_report(
    app: str, profiles: Mapping[str, SimulationProfile]
) -> str:
    """Self-contained HTML report (inline CSS/SVG, no external assets)."""
    order = sorted(
        profiles, key=lambda s: {"baseline": 0, "proposed": 1}.get(s, 2)
    )
    sections = "".join(_html_section(profiles[s]) for s in order)
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>repro profile — {_esc(app)}</title>
<style>
body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 900px; color: #222; }}
h1 {{ font-size: 1.4rem; }} h2 {{ font-size: 1.15rem; margin-top: 2rem; }}
h3 {{ font-size: 0.95rem; margin-bottom: 0.4rem; }}
table {{ border-collapse: collapse; font-size: 12px; }}
td, th {{ border: 1px solid #ddd; padding: 2px 8px; text-align: left; }}
td.num {{ text-align: right; font-variant-numeric: tabular-nums; }}
table.heat td {{ border: none; width: 8px; height: 14px; padding: 0; }}
table.heat th {{ border: none; text-align: right; padding-right: 8px;
                 font-weight: normal; white-space: nowrap; }}
.bar {{ display: flex; height: 22px; border: 1px solid #ccc;
        overflow: hidden; }}
.bar .seg {{ height: 100%; }}
.key {{ margin-right: 1em; white-space: nowrap; }}
.swatch {{ display: inline-block; width: 10px; height: 10px;
           margin-right: 3px; }}
.ok {{ color: #2e7d32; font-weight: 600; }}
.bad {{ color: #c62828; font-weight: 600; }}
</style></head><body>
<h1>Simulation profile — {_esc(app)}</h1>
<p>Time-resolved communication profile of the simulated systems:
utilization timeseries, critical-path attribution, and the simulated
communication matrix diffed against the application's QUAD profile.</p>
{sections}
</body></html>
"""


# -- provenance interleaving (``repro explain --with-profile``) -------------


def render_decisions_with_profile(
    plan: InterconnectPlan,
    profiles: Mapping[str, SimulationProfile],
) -> str:
    """Interleave the designer's decision log with measured evidence.

    For every applied sharing / NoC / duplication / pipelining decision
    the proposed-system profile can speak to, a ``measured:`` line cites
    the simulated bytes, span overlap, or lane utilization that the
    decision produced — e.g. the bus saturation a sharing link removed.
    """
    proposed = profiles.get("proposed")
    baseline = profiles.get("baseline")
    if proposed is None:
        raise ConfigurationError(
            "render_decisions_with_profile needs a 'proposed' profile"
        )
    matrix = {
        (e.producer, e.consumer, e.channel): e.bytes_moved
        for e in proposed.matrix
    }
    lines = [f"design decisions for {plan.app!r}, with measured evidence:"]
    base_bus = baseline.attribution.get("bus", 0.0) if baseline else None
    prop_bus = proposed.attribution.get("bus", 0.0)
    if base_bus is not None:
        lines.append(
            f"  bus on the critical path: {base_bus * 1e3:.3f} ms "
            f"(baseline) -> {prop_bus * 1e3:.3f} ms (proposed); "
            f"makespan {baseline.makespan_s * 1e3:.3f} -> "
            f"{proposed.makespan_s * 1e3:.3f} ms"
        )
    lines.append("")

    spans = proposed.kernel_spans

    def overlap_ms(a: str, b: str) -> Optional[float]:
        if a not in spans or b not in spans:
            return None
        lo = max(spans[a][0], spans[b][0])
        hi = min(spans[a][1], spans[b][1])
        return max(hi - lo, 0.0) * 1e3

    for event in plan.provenance:
        detail = event.detail_map
        lines.append(
            f"[{event.stage}] {event.subject}: {event.outcome}"
        )
        evidence = None
        p, arrow, c = event.subject.partition("->")
        if event.stage == "sharing" and event.outcome == "applied":
            moved = matrix.get((p, c, "sm"))
            if moved is not None:
                evidence = (
                    f"{moved} B crossed the shared local memory "
                    "(zero bus transactions for this edge)"
                )
        elif event.stage == "noc" and plan.noc is None:
            # Zero-NoC designs (e.g. klt) still get a clear section: say
            # outright that no NoC exists and where the traffic went.
            sm_total = sum(
                b for (_, _, ch), b in matrix.items() if ch == "sm"
            )
            bus_total = sum(
                b for (_, _, ch), b in matrix.items() if ch == "bus"
            )
            evidence = (
                "no NoC was instantiated for this design — "
                f"{sm_total} B stayed on shared local memories and "
                f"{bus_total} B crossed the bus"
            )
            bus_lane = next(
                (s for s in proposed.lanes if s.lane == "plb"), None
            )
            if bus_lane is not None:
                evidence += f" (plb ran at {bus_lane.utilization:.1%})"
        elif arrow and (
            (event.stage == "noc"
             and event.outcome in ("applied", "info", "mapped"))
            or (event.stage == "placement" and event.outcome == "distance")
        ):
            # Placement logs flows as producer->mem:consumer; the matrix
            # keys deliveries by the kernel names on either end.
            consumer = c[4:] if c.startswith("mem:") else c
            moved = matrix.get((p, consumer, "noc"))
            if moved is not None:
                busiest = next(
                    (s for s in proposed.lanes if s.lane.startswith("noc(")),
                    None,
                )
                evidence = f"{moved} B delivered over the NoC"
                if busiest is not None:
                    evidence += (
                        f"; busiest link {busiest.lane} ran at "
                        f"{busiest.utilization:.1%} with peak queue "
                        f"{busiest.peak_queue}"
                    )
        elif event.stage == "duplication" and event.outcome == "applied":
            k = event.subject
            ov = overlap_ms(f"{k}#0", f"{k}#1")
            if ov is not None:
                evidence = (
                    f"copies {k}#0/{k}#1 computed concurrently for "
                    f"{ov:.3f} ms"
                )
        elif event.stage == "pipeline" and event.outcome == "applied":
            kernel = detail.get("kernel") or p or event.subject
            consumer = detail.get("consumer") or c
            if consumer:
                ov = overlap_ms(str(kernel), str(consumer))
                if ov is not None:
                    evidence = (
                        f"{kernel} and {consumer} overlapped for "
                        f"{ov:.3f} ms of streamed execution"
                    )
        if evidence:
            lines.append(f"    measured: {evidence}")
    return "\n".join(lines)
