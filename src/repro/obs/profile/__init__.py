"""Simulation-time profiling: timeseries, comm matrix, critical path.

This package closes the observability loop the paper opens: QUAD
profiles the *application's* data communication to drive the design;
``repro.obs.profile`` profiles the *simulated system* the same way, so
every design decision can be checked against what actually happened on
the interconnect (see DESIGN.md §10).

Import discipline: this ``__init__`` re-exports only the recorder — the
one piece the simulation core needs — and nothing that imports
``repro.sim``. The analysis layers live in sibling modules
(:mod:`~repro.obs.profile.timeseries`,
:mod:`~repro.obs.profile.commmatrix`,
:mod:`~repro.obs.profile.critical`,
:mod:`~repro.obs.profile.report`) which consumers import directly;
pulling them in here would create a sim ↔ obs import cycle through
:mod:`repro.sim.component`.
"""

from .recorder import NULL_RECORDER, NullRecorder, TimeseriesRecorder

__all__ = ["NULL_RECORDER", "NullRecorder", "TimeseriesRecorder"]
