"""Per-resource utilization timeseries with queue-depth watermarks.

Turns the recorder's raw activity spans into per-lane bucketed busy
fractions over ``[0, makespan]`` plus the occupancy watermarks
(deepest queue ever seen on the lane and when). Bucketing is exact —
each span contributes its precise overlap with every bucket it crosses,
so the sum over buckets times the bucket width equals the lane's total
busy seconds regardless of the bucket count.

``*_wait`` activity kinds are *not* busy time — a request sitting in an
arbitration queue does not occupy the resource — so lanes show true
utilization while the waits still reach the critical-path attribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ...errors import ConfigurationError
from .recorder import ActivitySpan, OccupancySample


def is_busy_kind(kind: str) -> bool:
    """Whether an activity kind counts as resource-busy time."""
    return not kind.endswith("_wait")


@dataclass(frozen=True)
class LaneSeries:
    """One resource lane's time-resolved utilization summary."""

    lane: str
    #: Total busy seconds over the run.
    busy_s: float
    #: ``busy_s / makespan`` — may exceed 1.0 on lanes that aggregate
    #: concurrent work (the DMA engine with several transfers in flight).
    utilization: float
    #: Busy fraction per bucket, ``len == bucket count``.
    buckets: Tuple[float, ...]
    #: Deepest arbitration queue observed, and when.
    peak_queue: int
    peak_queue_t_s: float
    #: Highest concurrent occupancy observed (capacity pressure).
    peak_in_use: int


def build_timeseries(
    activities: Sequence[ActivitySpan],
    occupancy_samples: Sequence[OccupancySample],
    makespan_s: float,
    buckets: int = 64,
) -> Tuple[LaneSeries, ...]:
    """Bucket activity spans into per-lane utilization series.

    Lanes are the union of those seen in activities and occupancy
    samples; output is sorted by total busy time (descending) then lane
    name, so "top lanes" is a prefix.
    """
    if buckets < 1:
        raise ConfigurationError(f"bucket count must be >= 1, got {buckets}")
    if makespan_s <= 0:
        raise ConfigurationError("makespan must be positive to bucket")
    bucket_w = makespan_s / buckets

    fills: Dict[str, List[float]] = {}
    busy: Dict[str, float] = {}
    for kind, lane, start, end, _detail in activities:
        if not is_busy_kind(kind):
            continue
        busy[lane] = busy.get(lane, 0.0) + (end - start)
        fill = fills.get(lane)
        if fill is None:
            fill = fills[lane] = [0.0] * buckets
        # Clip to the chart range; spans never start before 0.
        end = min(end, makespan_s)
        if end <= start:
            continue
        first = min(int(start / bucket_w), buckets - 1)
        last = min(int(end / bucket_w), buckets - 1)
        for i in range(first, last + 1):
            lo = max(start, i * bucket_w)
            hi = min(end, (i + 1) * bucket_w)
            if hi > lo:
                fill[i] += (hi - lo) / bucket_w

    peaks: Dict[str, Tuple[int, float, int]] = {}  # lane -> (queue, t, in_use)
    for t, lane, in_use, queued in occupancy_samples:
        pq, pt, pu = peaks.get(lane, (0, 0.0, 0))
        if queued > pq:
            pq, pt = queued, t
        if in_use > pu:
            pu = in_use
        peaks[lane] = (pq, pt, pu)

    lanes = sorted(set(fills) | set(peaks))
    series = []
    for lane in lanes:
        pq, pt, pu = peaks.get(lane, (0, 0.0, 0))
        series.append(LaneSeries(
            lane=lane,
            busy_s=busy.get(lane, 0.0),
            utilization=busy.get(lane, 0.0) / makespan_s,
            buckets=tuple(fills.get(lane, [0.0] * buckets)),
            peak_queue=pq,
            peak_queue_t_s=pt,
            peak_in_use=pu,
        ))
    series.sort(key=lambda s: (-s.busy_s, s.lane))
    return tuple(series)


def lane_series_to_dict(series: LaneSeries) -> Dict[str, object]:
    """JSON-safe form of one lane."""
    return {
        "lane": series.lane,
        "busy_s": series.busy_s,
        "utilization": series.utilization,
        "buckets": list(series.buckets),
        "peak_queue": series.peak_queue,
        "peak_queue_t_s": series.peak_queue_t_s,
        "peak_in_use": series.peak_in_use,
    }


def lane_series_from_dict(data: Dict[str, object]) -> LaneSeries:
    """Inverse of :func:`lane_series_to_dict`."""
    return LaneSeries(
        lane=str(data["lane"]),
        busy_s=float(data["busy_s"]),
        utilization=float(data["utilization"]),
        buckets=tuple(float(b) for b in data["buckets"]),  # type: ignore[union-attr]
        peak_queue=int(data["peak_queue"]),  # type: ignore[arg-type]
        peak_queue_t_s=float(data["peak_queue_t_s"]),  # type: ignore[arg-type]
        peak_in_use=int(data["peak_in_use"]),  # type: ignore[arg-type]
    )
