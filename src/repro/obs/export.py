"""Metric exporters: Prometheus text exposition and JSON snapshots.

Both operate on the :meth:`repro.service.metrics.MetricsRegistry.snapshot`
shape, so the service facade, the sweep CLI, the simulator statistics
publisher and the benchmark harness all export through one schema.
Unknown top-level snapshot keys (``cache``, ``last_mode``) are folded in
where they map naturally and preserved verbatim in JSON output.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Any, Dict, Mapping, Tuple, Union

#: Prefix stamped on every exposition metric name.
PROM_PREFIX = "repro_"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def escape_label_value(value: object) -> str:
    """Escape a label *value* per the Prometheus exposition format.

    Backslash, double quote and newline are the three characters the
    format reserves inside quoted label values; anything else passes
    through. Apply this before interpolating a value into ``k="v"`` —
    the label *name* side must instead be sanitized to the allowed
    identifier characters.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _split_key(key: str) -> Tuple[str, str]:
    """Split a registry series key into (name, label suffix)."""
    if "{" in key:
        name, _, rest = key.partition("{")
        return name, "{" + rest
    return key, ""


def _prom_name(name: str) -> str:
    return PROM_PREFIX + _NAME_RE.sub("_", name)


def _with_label(suffix: str, extra: str) -> str:
    """Insert an extra ``k="v"`` pair into a label suffix."""
    if not suffix:
        return "{" + extra + "}"
    return suffix[:-1] + "," + extra + "}"


def to_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a registry snapshot as Prometheus text exposition."""
    lines = []
    typed = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in snapshot.get("counters", {}).items():
        name, suffix = _split_key(key)
        pname = _prom_name(name)
        declare(pname, "counter")
        lines.append(f"{pname}{suffix} {value}")

    for key, value in snapshot.get("gauges", {}).items():
        name, suffix = _split_key(key)
        pname = _prom_name(name)
        declare(pname, "gauge")
        lines.append(f"{pname}{suffix} {value}")

    for key, stats in snapshot.get("timers", {}).items():
        name, suffix = _split_key(key)
        pname = _prom_name(name) + "_seconds"
        declare(pname, "summary")
        for q, field_name in (("0.5", "p50_s"), ("0.95", "p95_s"), ("0.99", "p99_s")):
            qsuffix = _with_label(suffix, f'quantile="{q}"')
            lines.append(f"{pname}{qsuffix} {stats[field_name]}")
        lines.append(f"{pname}_count{suffix} {stats['count']}")
        lines.append(f"{pname}_sum{suffix} {stats['mean_s'] * stats['count']}")

    for key, h in snapshot.get("histograms", {}).items():
        name, suffix = _split_key(key)
        pname = _prom_name(name)
        declare(pname, "histogram")
        for le, count in h["buckets"].items():
            bsuffix = _with_label(suffix, f'le="{le}"')
            lines.append(f"{pname}_bucket{bsuffix} {count}")
        lines.append(f"{pname}_count{suffix} {h['count']}")
        lines.append(f"{pname}_sum{suffix} {h['sum']}")

    return "\n".join(lines) + "\n"


def to_json_snapshot(snapshot: Mapping[str, Any]) -> str:
    """Stable (sorted-key) JSON form of a snapshot."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


def write_metrics(
    snapshot: Mapping[str, Any], path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write a snapshot to ``path``; ``.prom`` selects exposition format,
    anything else gets the JSON form."""
    out = pathlib.Path(path)
    if out.suffix == ".prom":
        out.write_text(to_prometheus(snapshot))
    else:
        out.write_text(to_json_snapshot(snapshot))
    return out
