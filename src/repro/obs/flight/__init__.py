"""Self-observability: flight recorder, stack sampler, stall watchdog.

The pieces (DESIGN.md §15):

* :class:`FlightRecorder` / :class:`RingTracer` — always-on bounded
  rings of recent spans, runtime events, and metrics snapshots;
* :class:`StackSampler` — thread-based wall-clock profiler with
  collapsed-stack / speedscope export and phase attribution
  (:data:`SIM_PHASES`);
* :class:`StallWatchdog` / :class:`Heartbeat` — stall detection over
  heartbeats and probes, edge-triggered trip/clear events;
* :func:`build_flight_report` / :func:`write_flight_dump` /
  :func:`load_flight_report` / :func:`render_flight_report` — the
  versioned ``flight-report`` post-mortem artifact
  (:data:`FLIGHT_KIND`), rendered by ``repro postmortem``.
"""

from .recorder import FlightRecorder, RingTracer
from .report import (
    FLIGHT_KIND,
    build_flight_report,
    load_flight_report,
    render_flight_report,
    thread_stacks,
    write_flight_dump,
)
from .sampler import (
    OTHER_PHASE,
    SAMPLED_PROFILE_KIND,
    SIM_PHASES,
    StackSampler,
    frame_label,
)
from .watchdog import Heartbeat, StallWatchdog

__all__ = [
    "FLIGHT_KIND",
    "OTHER_PHASE",
    "SAMPLED_PROFILE_KIND",
    "SIM_PHASES",
    "FlightRecorder",
    "Heartbeat",
    "RingTracer",
    "StackSampler",
    "StallWatchdog",
    "build_flight_report",
    "frame_label",
    "load_flight_report",
    "render_flight_report",
    "thread_stacks",
    "write_flight_dump",
]
