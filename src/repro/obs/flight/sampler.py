"""Sampling wall-clock profiler: a thread-based stack sampler.

Where :mod:`repro.obs.profile` measures the *simulated system* and
:class:`~repro.obs.trace.Tracer` times *annotated* pipeline stages, the
:class:`StackSampler` answers "where does the interpreter actually
spend its wall time" with **zero changes to the measured code**: a
daemon thread wakes every ``interval_s`` and snapshots every thread's
Python stack via ``sys._current_frames()``.

Design constraints, in order:

* **No signals.** ``signal.setitimer`` only fires in the main thread of
  the main interpreter; this sampler must work inside worker processes
  and under an asyncio loop, so it samples from a plain thread instead.
* **Bounded overhead.** Each sample briefly holds the GIL while it
  walks the frames; at the default 5 ms interval that is a sub-percent
  tax, gated in CI by ``repro bench --profile-self
  --max-sampler-overhead``.
* **Bounded memory.** Samples aggregate into a ``{stack: count}`` table
  keyed by interned frame-label tuples; a *separate*, capped timeline
  of ``(timestamp, stack)`` records exists only to support folding
  samples against tracer spans (:meth:`fold_spans`).

Exports: collapsed-stack text (flamegraph.pl / inferno compatible),
speedscope JSON (:data:`SAMPLED_PROFILE_KIND`), frame-needle *phase
attribution* (:data:`SIM_PHASES` splits simulator time into calendar
queue vs. dispatch vs. fusion vs. numpy lane), and span folding against
a :class:`~repro.obs.trace.Tracer`.
"""

from __future__ import annotations

import sys
import threading
import time
from types import FrameType
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...errors import ConfigurationError
from ..trace import Tracer

#: Document kind of the exported speedscope profile.
SAMPLED_PROFILE_KIND = "sampled-profile"

#: Smallest honored sampling interval; below this the sampler itself
#: becomes the workload.
MIN_INTERVAL_S = 1e-4

#: A captured stack: frame labels, root first.
StackKey = Tuple[str, ...]

#: Frame-label needles attributing simulator samples to engine phases.
#: Scanned innermost-frame-first; first match wins; order matters (the
#: fusion needles must hit before the engine file needle claims the
#: frame for generic dispatch).
SIM_PHASES: Tuple[Tuple[str, str], ...] = (
    ("calendar_queue", "fastcore/calendar.py"),
    ("numpy_lane", "fastcore/vector.py"),
    ("fusion", "advance (fastcore/engine.py"),
    ("dispatch", "fastcore/engine.py"),
    ("reference_engine", "sim/engine.py"),
)

#: Phase bucket for samples no needle claims.
OTHER_PHASE = "other"


def frame_label(filename: str, func: str, lineno: int = 0) -> str:
    """Compact, needle-friendly label: ``func (pkg/file.py[:line])``."""
    parts = filename.replace("\\", "/").rsplit("/", 2)
    short = "/".join(parts[-2:])
    if lineno > 0:
        return f"{func} ({short}:{lineno})"
    return f"{func} ({short})"


def _walk(frame: Optional[FrameType], max_depth: int) -> StackKey:
    """Fold one live frame chain into a root-first label tuple."""
    labels: List[str] = []
    depth = 0
    while frame is not None and depth < max_depth:
        code = frame.f_code
        labels.append(frame_label(code.co_filename, code.co_name))
        frame = frame.f_back
        depth += 1
    labels.reverse()
    return tuple(labels)


class StackSampler:
    """Samples Python stacks from a daemon thread at a fixed interval."""

    def __init__(
        self,
        interval_s: float = 0.005,
        max_depth: int = 128,
        threads: Optional[Sequence[int]] = None,
        max_timeline: int = 100_000,
    ) -> None:
        if interval_s < MIN_INTERVAL_S:
            raise ConfigurationError(
                f"sampling interval must be >= {MIN_INTERVAL_S}s, "
                f"got {interval_s}"
            )
        if max_depth < 1:
            raise ConfigurationError(
                f"max stack depth must be >= 1, got {max_depth}"
            )
        self.interval_s = float(interval_s)
        self.max_depth = int(max_depth)
        #: Restrict sampling to these thread idents (``None`` = all).
        self._threads = frozenset(threads) if threads is not None else None
        self._max_timeline = int(max_timeline)
        self._counts: Dict[Tuple[int, StackKey], int] = {}
        self._timeline: List[Tuple[float, StackKey]] = []
        self._samples = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Start the sampling thread. Idempotent while running."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling and join the thread. Idempotent."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "StackSampler":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self.sample_once(skip_tid=own)

    # -- sampling -----------------------------------------------------------
    def sample_once(self, skip_tid: Optional[int] = None) -> int:
        """Take one sample of every eligible thread; returns stacks taken.

        Public so tests (and one-shot captures) can sample
        deterministically without running the thread.
        """
        now = time.perf_counter()
        frames = sys._current_frames()
        captured: List[Tuple[int, StackKey]] = []
        for tid, frame in frames.items():
            if tid == skip_tid:
                continue
            if self._threads is not None and tid not in self._threads:
                continue
            captured.append((tid, _walk(frame, self.max_depth)))
        with self._lock:
            self._samples += 1
            for tid, stack in captured:
                key = (tid, stack)
                self._counts[key] = self._counts.get(key, 0) + 1
                if len(self._timeline) < self._max_timeline:
                    self._timeline.append((now, stack))
        return len(captured)

    # -- inspection ---------------------------------------------------------
    @property
    def samples(self) -> int:
        """Sampling rounds taken (each may capture several threads)."""
        with self._lock:
            return self._samples

    def stacks(self) -> Dict[StackKey, int]:
        """Aggregated ``{stack: count}``, merged across threads."""
        merged: Dict[StackKey, int] = {}
        with self._lock:
            items = list(self._counts.items())
        for (_, stack), count in items:
            merged[stack] = merged.get(stack, 0) + count
        return merged

    # -- exports ------------------------------------------------------------
    def collapsed(self) -> str:
        """Folded-stack text: one ``frame;frame;... count`` line each."""
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.stacks().items())
            if stack
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_speedscope(self, name: str = "repro") -> Dict[str, Any]:
        """The aggregated profile as a speedscope JSON document.

        Weights are seconds (count x interval), so the UI's time axis is
        meaningful even though samples are aggregated, not sequential.
        """
        stacks = sorted(self.stacks().items())
        frame_index: Dict[str, int] = {}
        frames: List[Dict[str, str]] = []
        samples: List[List[int]] = []
        weights: List[float] = []
        for stack, count in stacks:
            row: List[int] = []
            for label in stack:
                if label not in frame_index:
                    frame_index[label] = len(frames)
                    frames.append({"name": label})
                row.append(frame_index[label])
            samples.append(row)
            weights.append(count * self.interval_s)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "kind": SAMPLED_PROFILE_KIND,
            "version": 1,
            "name": name,
            "exporter": "repro.obs.flight",
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
        }

    def phase_totals(
        self, phases: Sequence[Tuple[str, str]] = SIM_PHASES
    ) -> Dict[str, int]:
        """Sample counts per phase, by innermost-first needle match."""
        totals: Dict[str, int] = {name: 0 for name, _ in phases}
        totals[OTHER_PHASE] = 0
        for stack, count in self.stacks().items():
            bucket = OTHER_PHASE
            for label in reversed(stack):  # innermost frame first
                matched = next(
                    (name for name, needle in phases if needle in label),
                    None,
                )
                if matched is not None:
                    bucket = matched
                    break
            totals[bucket] += count
        return totals

    def phase_fractions(
        self, phases: Sequence[Tuple[str, str]] = SIM_PHASES
    ) -> Dict[str, float]:
        """:meth:`phase_totals` normalized to fractions of all samples."""
        totals = self.phase_totals(phases)
        grand = sum(totals.values())
        if grand == 0:
            return {name: 0.0 for name in totals}
        return {
            name: round(count / grand, 6) for name, count in totals.items()
        }

    def fold_spans(self, tracer: Tracer) -> Dict[str, int]:
        """Attribute timeline samples to the tracer span active at each.

        For every recorded sample timestamp, finds the *innermost*
        (shortest) span whose interval contains it and counts the
        sample under that span's name; samples outside every span land
        in ``"(no span)"``. This is the bridge between wall-clock
        sampling and the annotated pipeline stages.
        """
        spans = [e for e in tracer.events if e.phase == "X"]
        epoch = tracer.epoch_s
        with self._lock:
            timeline = list(self._timeline)
        totals: Dict[str, int] = {}
        for ts, _stack in timeline:
            rel_us = (ts - epoch) * 1e6
            best_name = "(no span)"
            best_dur = float("inf")
            for span in spans:
                if (
                    span.start_us <= rel_us
                    <= span.start_us + span.duration_us
                    and span.duration_us < best_dur
                ):
                    best_name, best_dur = span.name, span.duration_us
            totals[best_name] = totals.get(best_name, 0) + 1
        return totals
