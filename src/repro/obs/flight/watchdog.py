"""Stall watchdog: heartbeats and probes over the serving ring.

A server that stops making progress is worse than one that crashes —
nothing restarts it. The :class:`StallWatchdog` turns "stopped making
progress" into a detectable, reportable *edge*:

* **Heartbeats** (:class:`Heartbeat`) are pushed liveness: the watched
  component calls :meth:`Heartbeat.beat` when it runs; the watchdog
  flags it once the last beat is older than its budget. The server's
  event-loop beat task uses this — a blocked loop cannot beat, which is
  exactly the point.
* **Probes** are pulled liveness: a callable returning ``None``
  (healthy) or a human-readable stall description. The micro-batcher
  exposes its oldest-pending / longest-flush ages this way, covering
  both a wedged batcher and a hung worker pool (a stuck
  ``submit_many`` keeps its flush in flight forever).

Trip/clear are edge-triggered per source: one ``watchdog_trip`` event
and one ``on_trip`` callback when a source enters the stalled state,
one ``watchdog_clear``/``on_clear`` when it recovers — no per-interval
spam while a stall persists. Callbacks run on the watchdog thread; the
server's trip handler degrades ``/readyz`` and writes a flight dump,
both of which are safe off the event loop.

:meth:`StallWatchdog.check_once` is the whole decision procedure and
takes no locks on the watched components, so tests drive it directly
with a fake clock.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...errors import ConfigurationError
from ..runtime.events import NULL_LOG, EventLog

#: A probe: returns ``None`` when healthy, a stall description when not.
Probe = Callable[[], Optional[str]]


class Heartbeat:
    """Pushed liveness signal with a freshness budget."""

    def __init__(
        self,
        name: str,
        max_age_s: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_age_s <= 0:
            raise ConfigurationError(
                f"heartbeat budget must be > 0, got {max_age_s}"
            )
        self.name = name
        self.max_age_s = float(max_age_s)
        self._clock = clock
        # A float store is atomic under the GIL; beat() needs no lock.
        self._last = clock()

    def beat(self) -> None:
        """Record that the watched component just ran."""
        self._last = self._clock()

    def age_s(self) -> float:
        """Seconds since the last beat."""
        return self._clock() - self._last

    def check(self) -> Optional[str]:
        """Probe-shaped view: stall message once the budget is blown."""
        age = self.age_s()
        if age > self.max_age_s:
            return (
                f"no heartbeat for {age:.2f}s "
                f"(budget {self.max_age_s:.2f}s)"
            )
        return None


class StallWatchdog:
    """Periodically evaluates heartbeats and probes; reports edges."""

    def __init__(
        self,
        interval_s: float = 0.25,
        events: EventLog = NULL_LOG,
        on_trip: Optional[Callable[[str, str], None]] = None,
        on_clear: Optional[Callable[[str], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_s <= 0:
            raise ConfigurationError(
                f"watchdog interval must be > 0, got {interval_s}"
            )
        self.interval_s = float(interval_s)
        self.events = events
        self._on_trip = on_trip
        self._on_clear = on_clear
        self._clock = clock
        self._checks: List[Tuple[str, Probe]] = []
        self._stalled: Dict[str, str] = {}
        self._trips = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- registration -------------------------------------------------------
    def heartbeat(self, name: str, max_age_s: float) -> Heartbeat:
        """Register and return a named heartbeat."""
        beat = Heartbeat(name, max_age_s, clock=self._clock)
        with self._lock:
            self._checks.append((name, beat.check))
        return beat

    def probe(self, name: str, check: Probe) -> None:
        """Register a pulled-liveness probe."""
        with self._lock:
            self._checks.append((name, check))

    # -- decision procedure -------------------------------------------------
    def check_once(self) -> List[Tuple[str, str]]:
        """Evaluate every check; fire trip/clear edges; return stalls.

        A probe that *raises* counts as a stall — a health check too
        broken to run is not evidence of health.
        """
        with self._lock:
            checks = list(self._checks)
        active: List[Tuple[str, str]] = []
        for name, check in checks:
            try:
                message = check()
            except Exception as exc:
                message = f"probe raised {type(exc).__name__}: {exc}"
            if message is not None:
                active.append((name, message))
                with self._lock:
                    fresh = name not in self._stalled
                    self._stalled[name] = message
                    if fresh:
                        self._trips += 1
                if fresh:
                    if self.events.enabled:
                        self.events.emit(
                            "watchdog_trip", source=name, detail=message
                        )
                    if self._on_trip is not None:
                        self._on_trip(name, message)
            else:
                with self._lock:
                    recovered = self._stalled.pop(name, None) is not None
                if recovered:
                    if self.events.enabled:
                        self.events.emit("watchdog_clear", source=name)
                    if self._on_clear is not None:
                        self._on_clear(name)
        return active

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Start the checking thread. Idempotent while running."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the checking thread. Idempotent."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.check_once()

    # -- inspection ---------------------------------------------------------
    @property
    def tripped(self) -> bool:
        """Whether any source is currently stalled."""
        with self._lock:
            return bool(self._stalled)

    @property
    def trips(self) -> int:
        """Total stall episodes observed (edges, not intervals)."""
        with self._lock:
            return self._trips

    def stalled(self) -> Dict[str, str]:
        """Currently stalled sources and their latest messages."""
        with self._lock:
            return dict(self._stalled)

    def status(self) -> Dict[str, Any]:
        """JSON-safe summary for ``/v1/debug`` and flight reports."""
        with self._lock:
            return {
                "interval_s": self.interval_s,
                "checks": [name for name, _ in self._checks],
                "stalled": dict(self._stalled),
                "trips": self._trips,
                "running": (
                    self._thread is not None and self._thread.is_alive()
                ),
            }
