"""Always-on bounded capture of recent telemetry (the "flight recorder").

A crashed or wedged server can only explain itself from state that was
already being recorded when things went wrong. The
:class:`FlightRecorder` therefore keeps three *bounded* rings — recent
spans, recent runtime events, and periodic metrics snapshots — cheap
enough to leave on in every ``repro serve`` process, and hands their
contents to :func:`repro.obs.flight.report.build_flight_report` when a
dump is triggered (crash, SIGQUIT, watchdog trip).

Memory discipline mirrors the rest of ``repro.obs``:

* spans go through :class:`RingTracer`, a :class:`~repro.obs.trace.Tracer`
  whose buffer keeps only the newest ``capacity`` spans (sequence
  numbers keep counting, so merged worker spans stay ordered);
* events are already ring-bounded by :class:`~repro.obs.runtime.events.EventLog`;
* metrics snapshots are taken at most once per ``snapshot_interval_s``
  and kept in a ring of ``snapshot_capacity`` — a registry snapshot is
  the one non-trivial allocation here, so it is rate-limited rather
  than per-request.

The recorder never touches request hot paths itself: the server's beat
task calls :meth:`maybe_snapshot` from its idle loop.
"""

from __future__ import annotations

import threading
import time
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    Union,
)

from ...errors import ConfigurationError
from ..runtime.events import NULL_LOG, EventLog
from ..trace import SpanEvent, Tracer


class MetricsSource(Protocol):
    """Anything with a ``snapshot()`` — structurally typed so this
    module stays below :mod:`repro.service.metrics` in the import DAG."""

    def snapshot(self) -> Dict[str, Any]:
        ...  # pragma: no cover - protocol


class RingTracer(Tracer):
    """A tracer bounded to the most recent ``capacity`` spans.

    Sequence numbers are monotonic across evictions (a private counter,
    not ``len(buffer)``), so exported spans still sort by record order
    even after the ring has wrapped. This is what lets ``repro serve``
    keep span capture always on without unbounded growth.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"ring tracer capacity must be >= 1, got {capacity}"
            )
        super().__init__()
        self._capacity = int(capacity)
        self._next_seq = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def _append(self, event: SpanEvent) -> None:
        with self._lock:
            object.__setattr__(event, "seq", self._next_seq)
            self._next_seq += 1
            self._events.append(event)
            overflow = len(self._events) - self._capacity
            if overflow > 0:
                del self._events[:overflow]

    def merge(
        self, spans: Iterable[Union[SpanEvent, Mapping[str, Any]]]
    ) -> int:
        incoming = [
            s if isinstance(s, SpanEvent) else SpanEvent.from_dict(s)
            for s in spans
        ]
        with self._lock:
            for ev in incoming:
                object.__setattr__(ev, "seq", self._next_seq)
                self._next_seq += 1
                self._events.append(ev)
            overflow = len(self._events) - self._capacity
            if overflow > 0:
                del self._events[:overflow]
        return len(incoming)

    @property
    def recorded(self) -> int:
        """Total spans ever recorded (ring holds the newest slice)."""
        with self._lock:
            return self._next_seq


class FlightRecorder:
    """Bounded rings of recent spans, events, and metrics snapshots."""

    enabled: bool = True

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        events: EventLog = NULL_LOG,
        registry: Optional[MetricsSource] = None,
        snapshot_capacity: int = 32,
        snapshot_interval_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if snapshot_capacity < 1:
            raise ConfigurationError(
                "flight snapshot capacity must be >= 1, "
                f"got {snapshot_capacity}"
            )
        if snapshot_interval_s <= 0:
            raise ConfigurationError(
                "flight snapshot interval must be > 0, "
                f"got {snapshot_interval_s}"
            )
        self.tracer = tracer
        self.events = events
        self.registry = registry
        self.snapshot_interval_s = float(snapshot_interval_s)
        self._snapshot_capacity = int(snapshot_capacity)
        self._snapshots: List[Tuple[float, Dict[str, Any]]] = []
        self._last_snapshot: Optional[float] = None
        self._clock = clock
        self._lock = threading.Lock()

    # -- metrics snapshots --------------------------------------------------
    def snapshot_metrics(self) -> bool:
        """Capture one registry snapshot into the ring, unconditionally.

        Returns whether a snapshot was taken (``False`` without a
        registry). The snapshot itself happens outside this object's
        lock — the registry has its own.
        """
        if self.registry is None:
            return False
        snap = self.registry.snapshot()
        now = self._clock()
        with self._lock:
            self._last_snapshot = now
            self._snapshots.append((now, snap))
            overflow = len(self._snapshots) - self._snapshot_capacity
            if overflow > 0:
                del self._snapshots[:overflow]
        return True

    def maybe_snapshot(self) -> bool:
        """:meth:`snapshot_metrics`, rate-limited to the interval."""
        if self.registry is None:
            return False
        now = self._clock()
        with self._lock:
            due = (
                self._last_snapshot is None
                or now - self._last_snapshot >= self.snapshot_interval_s
            )
        if not due:
            return False
        return self.snapshot_metrics()

    def snapshots(self) -> List[Dict[str, Any]]:
        """Snapshot ring, oldest first, with ages relative to now."""
        now = self._clock()
        with self._lock:
            rows = list(self._snapshots)
        return [
            {"age_s": round(now - ts, 3), "metrics": snap}
            for ts, snap in rows
        ]

    # -- assembly -----------------------------------------------------------
    def rings(self) -> Dict[str, Any]:
        """All three rings as JSON-safe lists (the dump's ``rings``)."""
        spans: List[Dict[str, Any]] = []
        if self.tracer is not None and self.tracer.enabled:
            spans = [e.as_dict() for e in self.tracer.events]
        events: List[Dict[str, Any]] = []
        if self.events.enabled:
            events = [e.as_dict() for e in self.events.events()]
        return {
            "spans": spans,
            "events": events,
            "metric_snapshots": self.snapshots(),
        }

    def state(self) -> Dict[str, Any]:
        """Cheap size/config summary for ``/v1/debug``."""
        with self._lock:
            snapshots = len(self._snapshots)
        spans = 0
        if self.tracer is not None and self.tracer.enabled:
            spans = len(self.tracer.events)
        return {
            "spans": spans,
            "events": len(self.events.events()) if self.events.enabled else 0,
            "metric_snapshots": snapshots,
            "snapshot_interval_s": self.snapshot_interval_s,
        }
