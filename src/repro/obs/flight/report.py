"""The ``flight-report`` artifact: build, write, load, render.

One versioned JSON document captures everything a post-mortem needs:
why the dump happened (``reason``), every thread's Python stack at dump
time (``sys._current_frames()`` — no signals, works from any thread),
the flight recorder's three rings (recent spans / events / metrics
snapshots), the watchdog's view, and a free-form ``state`` section the
server fills with admission/batcher/pool counters.

The document carries ``kind``/``version`` like every other artifact in
the repo (:data:`FLIGHT_KIND`, :data:`~repro.io.FORMAT_VERSION`), so
``repro postmortem`` refuses files it does not understand instead of
rendering garbage. Rendering is a pure function returning a string —
printing is the CLI's job (rule R5 bans ``print`` in ``repro.obs``).
"""

from __future__ import annotations

import os
import pathlib
import platform
import sys
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Union

from ...io import FORMAT_VERSION, load_json, save_json, validate_document
from .recorder import FlightRecorder
from .sampler import frame_label
from .watchdog import StallWatchdog

#: Document kind of a post-mortem dump.
FLIGHT_KIND = "flight-report"


def thread_stacks(max_depth: int = 64) -> List[Dict[str, Any]]:
    """Every live thread's Python stack, root-first, with line numbers.

    Taken via ``sys._current_frames()`` so it works from any thread —
    including the watchdog thread while the event loop is blocked,
    which is precisely the moment this matters.
    """
    frames = sys._current_frames()
    by_ident = {t.ident: t for t in threading.enumerate()}
    rows: List[Dict[str, Any]] = []
    for tid in sorted(frames):
        frame: Optional[Any] = frames[tid]
        stack: List[str] = []
        depth = 0
        while frame is not None and depth < max_depth:
            code = frame.f_code
            stack.append(
                frame_label(code.co_filename, code.co_name, frame.f_lineno)
            )
            frame = frame.f_back
            depth += 1
        stack.reverse()
        thread = by_ident.get(tid)
        rows.append({
            "tid": tid,
            "name": thread.name if thread is not None else f"tid-{tid}",
            "daemon": thread.daemon if thread is not None else False,
            "stack": stack,
        })
    return rows


def build_flight_report(
    reason: str,
    recorder: Optional[FlightRecorder] = None,
    watchdog: Optional[StallWatchdog] = None,
    state: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the versioned dump document from live process state."""
    rings: Dict[str, Any] = {
        "spans": [],
        "events": [],
        "metric_snapshots": [],
    }
    if recorder is not None:
        rings = recorder.rings()
    return {
        "kind": FLIGHT_KIND,
        "version": FORMAT_VERSION,
        "reason": reason,
        "ts": time.time(),
        "pid": os.getpid(),
        "python": platform.python_version(),
        "threads": thread_stacks(),
        "rings": rings,
        "watchdog": watchdog.status() if watchdog is not None else None,
        "state": dict(state) if state is not None else {},
    }


def write_flight_dump(
    doc: Dict[str, Any], directory: Union[str, pathlib.Path] = "."
) -> pathlib.Path:
    """Write one dump file; returns its path.

    File names embed the UTC timestamp and pid
    (``flight-20260808T120000-pid1234.json``) with a counter suffix on
    collision, so repeated dumps from one process never overwrite.
    """
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime(
        "%Y%m%dT%H%M%S", time.gmtime(float(doc.get("ts", time.time())))
    )
    base = f"flight-{stamp}-pid{doc.get('pid', os.getpid())}"
    path = out_dir / f"{base}.json"
    suffix = 1
    while path.exists():
        path = out_dir / f"{base}-{suffix}.json"
        suffix += 1
    save_json(doc, path)
    return path


def load_flight_report(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    """Load and validate a dump (``kind``/``version`` envelope)."""
    doc = load_json(path)
    validate_document(doc, FLIGHT_KIND)
    return doc


def _render_threads(doc: Dict[str, Any], frames_shown: int) -> List[str]:
    lines: List[str] = []
    for row in doc.get("threads", []):
        flags = " daemon" if row.get("daemon") else ""
        lines.append(f"  thread {row['name']} (tid {row['tid']}{flags})")
        stack = row.get("stack", [])
        for label in stack[-frames_shown:]:
            lines.append(f"    {label}")
        if len(stack) > frames_shown:
            lines.append(f"    ... ({len(stack) - frames_shown} outer "
                         "frames elided)")
    return lines


def render_flight_report(
    doc: Dict[str, Any], events_shown: int = 15, frames_shown: int = 12
) -> str:
    """Human-readable post-mortem (the ``repro postmortem`` body)."""
    when = time.strftime(
        "%Y-%m-%d %H:%M:%SZ", time.gmtime(float(doc.get("ts", 0.0)))
    )
    lines = [
        f"flight report: {doc.get('reason', '?')}",
        f"  captured {when} by pid {doc.get('pid', '?')} "
        f"(python {doc.get('python', '?')})",
    ]
    watchdog = doc.get("watchdog")
    if watchdog:
        stalled = watchdog.get("stalled", {})
        lines.append(
            f"  watchdog: {watchdog.get('trips', 0)} trip(s), "
            f"{len(stalled)} active stall(s), "
            f"checks: {', '.join(watchdog.get('checks', [])) or '-'}"
        )
        for source, message in sorted(stalled.items()):
            lines.append(f"    STALLED {source}: {message}")
    state = doc.get("state", {})
    if state:
        lines.append("  server state:")
        for section in sorted(state):
            lines.append(f"    {section}: {state[section]}")
    lines.append(f"threads ({len(doc.get('threads', []))}):")
    lines.extend(_render_threads(doc, frames_shown))
    rings = doc.get("rings", {})
    events = rings.get("events", [])
    lines.append(f"recent events ({len(events)} in ring):")
    for event in events[-events_shown:]:
        fields = event.get("fields", {})
        extras = " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
        trace = event.get("trace_id") or "-"
        lines.append(
            f"  [{event.get('seq', '?'):>5}] {event.get('kind', '?'):<18} "
            f"trace={trace:<34} {extras}".rstrip()
        )
    spans = rings.get("spans", [])
    lines.append(f"recent spans ({len(spans)} in ring):")
    for span in spans[-events_shown:]:
        lines.append(
            f"  [{span.get('seq', '?'):>5}] {span.get('name', '?'):<18} "
            f"{span.get('duration_us', 0.0) / 1e3:>10.3f}ms "
            f"{span.get('category', '')}"
        )
    snapshots = rings.get("metric_snapshots", [])
    lines.append(f"metric snapshots ({len(snapshots)} in ring)")
    if snapshots:
        latest = snapshots[-1]
        metrics = latest.get("metrics", {})
        counters = metrics.get("counters", {})
        lines.append(
            f"  latest (age {latest.get('age_s', '?')}s): "
            f"{len(counters)} counter series"
        )
        for name in sorted(counters)[:10]:
            lines.append(f"    {name} = {counters[name]}")
    return "\n".join(lines)
