"""JSON serialization of profiles, communication graphs and plans.

Profiling a large application or re-running the designer is cheap here,
but in the workflow the paper targets these artifacts cross tool
boundaries (QUAD output → design tool → system builder), so the library
provides stable, versioned JSON round-trips:

* :func:`profile_to_dict` / :func:`profile_from_dict`
* :func:`graph_to_dict` / :func:`graph_from_dict`
* :func:`plan_to_dict` / :func:`plan_from_dict`

plus :func:`save_json` / :func:`load_json` file helpers. All
``*_from_dict`` functions validate through the normal constructors, so a
hand-edited file cannot smuggle in inconsistent state.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Union

from .core.commgraph import CommGraph
from .core.duplication import DuplicationDecision
from .core.kernel import KernelSpec
from .core.parallel import PipelineCase, PipelineDecision
from .core.placement import MeshPlacement
from .core.plan import InterconnectPlan, KernelMapping, NocPlan
from .core.sharing import SharedMemoryLink
from .core.topology import KernelAttach, MemoryAttach, ReceiveClass, SendClass
from .errors import ConfigurationError
from .hw.resources import ResourceCost
from .profiling.quad import CommunicationProfile, FunctionStats, ProfileEdge

#: Format version stamped into every serialized artifact.
FORMAT_VERSION = 1


def _check_version(data: Dict[str, Any], kind: str) -> None:
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported {kind} format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    if data.get("kind") != kind:
        raise ConfigurationError(
            f"expected a {kind!r} document, got {data.get('kind')!r}"
        )


def validate_document(data: Dict[str, Any], kind: str) -> None:
    """Check a serialized artifact's ``kind``/``version`` envelope.

    Raises :class:`~repro.errors.ConfigurationError` on mismatch — the
    service cache uses this to invalidate stale on-disk entries when
    :data:`FORMAT_VERSION` moves.
    """
    _check_version(data, kind)


def canonical_json(data: Dict[str, Any]) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace).

    This is the byte stream content-addressed fingerprints hash over, so
    it must stay stable across Python versions and dict insertion order.
    """
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


# -- profiles ---------------------------------------------------------------


def profile_to_dict(profile: CommunicationProfile) -> Dict[str, Any]:
    """Serialize a communication profile."""
    return {
        "kind": "profile",
        "version": FORMAT_VERSION,
        "entry": profile.entry_name,
        "edges": [
            {"producer": e.producer, "consumer": e.consumer,
             "bytes": e.bytes, "umas": e.umas}
            for e in profile.edges
        ],
        "functions": [
            {"name": f.name, "calls": f.calls,
             "bytes_loaded": f.bytes_loaded,
             "bytes_stored": f.bytes_stored, "work": f.work}
            for f in profile.functions
        ],
    }


def profile_from_dict(data: Dict[str, Any]) -> CommunicationProfile:
    """Deserialize a communication profile."""
    _check_version(data, "profile")
    return CommunicationProfile(
        (ProfileEdge(**e) for e in data["edges"]),
        (FunctionStats(**f) for f in data["functions"]),
        entry_name=data["entry"],
    )


# -- kernel specs and graphs -----------------------------------------------


def _spec_to_dict(spec: KernelSpec) -> Dict[str, Any]:
    return {
        "name": spec.name,
        "tau_cycles": spec.tau_cycles,
        "sw_cycles": spec.sw_cycles,
        "parallelizable": spec.parallelizable,
        "streams_host_io": spec.streams_host_io,
        "streams_kernel_input": spec.streams_kernel_input,
        "luts": spec.resources.luts,
        "regs": spec.resources.regs,
        "local_memory_bytes": spec.local_memory_bytes,
    }


def _spec_from_dict(data: Dict[str, Any]) -> KernelSpec:
    return KernelSpec(
        name=data["name"],
        tau_cycles=data["tau_cycles"],
        sw_cycles=data["sw_cycles"],
        parallelizable=data["parallelizable"],
        streams_host_io=data["streams_host_io"],
        streams_kernel_input=data["streams_kernel_input"],
        resources=ResourceCost(data["luts"], data["regs"]),
        local_memory_bytes=data["local_memory_bytes"],
    )


def graph_to_dict(graph: CommGraph) -> Dict[str, Any]:
    """Serialize a communication graph (with its kernel specs)."""
    return {
        "kind": "commgraph",
        "version": FORMAT_VERSION,
        "kernels": [_spec_to_dict(graph.kernel(k)) for k in graph.kernel_names()],
        "kk_edges": [
            {"producer": p, "consumer": c, "bytes": b}
            for (p, c), b in graph.kk_edges.items()
        ],
        "host_in": dict(graph.host_in),
        "host_out": dict(graph.host_out),
    }


def graph_from_dict(data: Dict[str, Any]) -> CommGraph:
    """Deserialize a communication graph."""
    _check_version(data, "commgraph")
    specs = [_spec_from_dict(s) for s in data["kernels"]]
    return CommGraph(
        kernels={s.name: s for s in specs},
        kk_edges={
            (e["producer"], e["consumer"]): e["bytes"]
            for e in data["kk_edges"]
        },
        host_in=dict(data["host_in"]),
        host_out=dict(data["host_out"]),
    )


# -- plans ---------------------------------------------------------------------


def plan_to_dict(plan: InterconnectPlan) -> Dict[str, Any]:
    """Serialize an interconnect plan (including its graph)."""
    noc = None
    if plan.noc is not None:
        noc = {
            "width": plan.noc.placement.width,
            "height": plan.noc.placement.height,
            "torus": plan.noc.placement.torus,
            "positions": {
                name: list(coord)
                for name, coord in plan.noc.placement.positions.items()
            },
            "kernel_nodes": list(plan.noc.kernel_nodes),
            "memory_nodes": list(plan.noc.memory_nodes),
            "edges": [
                {"producer": p, "consumer": c, "bytes": b}
                for p, c, b in plan.noc.edges
            ],
        }
    return {
        "kind": "plan",
        "version": FORMAT_VERSION,
        "app": plan.app,
        "graph": graph_to_dict(plan.graph),
        "duplications": [
            {"kernel": d.kernel, "delta_dp_seconds": d.delta_dp_seconds,
             "applied": d.applied, "reason": d.reason}
            for d in plan.duplications
        ],
        "sharing": [
            {"producer": l.producer, "consumer": l.consumer,
             "bytes": l.bytes, "crossbar": l.crossbar}
            for l in plan.sharing
        ],
        "mappings": [
            {"kernel": m.kernel, "receive": m.receive.name,
             "send": m.send.name, "attach_kernel": m.attach_kernel.name,
             "attach_memory": m.attach_memory.name}
            for m in plan.mappings.values()
        ],
        "noc": noc,
        "pipeline": [
            {"case": d.case.value, "kernel": d.kernel,
             "consumer": d.consumer, "delta_seconds": d.delta_seconds,
             "applied": d.applied, "reason": d.reason}
            for d in plan.pipeline
        ],
    }


def plan_from_dict(data: Dict[str, Any]) -> InterconnectPlan:
    """Deserialize an interconnect plan."""
    _check_version(data, "plan")
    graph = graph_from_dict(data["graph"])
    noc = None
    if data["noc"] is not None:
        d = data["noc"]
        noc = NocPlan(
            placement=MeshPlacement(
                width=d["width"],
                height=d["height"],
                positions={
                    name: tuple(coord) for name, coord in d["positions"].items()
                },
                torus=d.get("torus", False),
            ),
            kernel_nodes=tuple(d["kernel_nodes"]),
            memory_nodes=tuple(d["memory_nodes"]),
            edges=tuple(
                (e["producer"], e["consumer"], e["bytes"]) for e in d["edges"]
            ),
        )
    return InterconnectPlan(
        app=data["app"],
        graph=graph,
        duplications=tuple(
            DuplicationDecision(**d) for d in data["duplications"]
        ),
        sharing=tuple(SharedMemoryLink(**l) for l in data["sharing"]),
        mappings={
            m["kernel"]: KernelMapping(
                kernel=m["kernel"],
                receive=ReceiveClass[m["receive"]],
                send=SendClass[m["send"]],
                attach_kernel=KernelAttach[m["attach_kernel"]],
                attach_memory=MemoryAttach[m["attach_memory"]],
            )
            for m in data["mappings"]
        },
        noc=noc,
        pipeline=tuple(
            PipelineDecision(
                case=PipelineCase(d["case"]),
                kernel=d["kernel"],
                consumer=d["consumer"],
                delta_seconds=d["delta_seconds"],
                applied=d["applied"],
                reason=d["reason"],
            )
            for d in data["pipeline"]
        ),
    )


# -- file helpers -------------------------------------------------------------


def save_json(obj: Dict[str, Any], path: Union[str, pathlib.Path]) -> None:
    """Write a serialized artifact to disk (pretty-printed, stable order)."""
    pathlib.Path(path).write_text(
        json.dumps(obj, indent=2, sort_keys=True) + "\n"
    )


def load_json(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    """Read a serialized artifact from disk."""
    return json.loads(pathlib.Path(path).read_text())
