"""Command-line interface.

``python -m repro <command>`` exposes the library's main flows:

* ``profile <app>`` — run the instrumented application and print its
  QUAD-style communication profile (Fig. 5 format); with ``--sim`` /
  ``--json`` / ``--html`` instead produce the time-resolved simulation
  profile (utilization lanes, critical-path attribution, byte
  conservation);
* ``design <app>`` — run Algorithm 1 and print the interconnect plan
  (Fig. 6 format), with ``--no-sharing`` / ``--noc-only`` etc. toggles;
* ``explain <app>`` — print the designer's full decision log (why each
  duplication/sharing/mapping/placement/pipelining choice was made);
  ``--with-profile`` cites measured evidence next to each decision;
* ``lint <app|--all>`` — static diagnostics over the designed plan
  (``repro.analyze`` rule engine): graph smells, Table I re-derivation,
  bandwidth bounds, CDG deadlock proof; ``--sim-crosscheck`` proves
  every bound against the simulator, ``--sarif`` exports for CI;
* ``static <app|--all>`` — derive the communication graph from the
  declarative task-graph description alone (``repro.static``), without
  executing a single kernel; ``--check`` traces the app too and proves
  byte-exact agreement on every deterministic edge (``--diff-out``
  writes the ``static-diff`` document CI archives);
* ``bench`` — time the designer/simulator/service hot paths and write
  the versioned ``bench-report`` JSON CI tracks (``BENCH_repro.json``);
* ``report`` — regenerate every paper table/figure in one go;
* ``simulate <app>`` — run the discrete-event simulation and show the
  baseline-vs-proposed Gantt comparison;
* ``sweep`` — evaluate a parameter grid through the design service
  (``--jobs`` workers, ``--cache-dir`` result reuse, ``--stats``);
* ``fuzz`` — property-based fuzz campaign over random communication
  graphs: Algorithm 1 invariants, analytic-vs-simulated differential
  oracle, metamorphic checks, with ``--shrink`` minimization and a
  JSON ``--report`` artifact;
* ``serve`` — run the networked design service (``repro.server``):
  JSON design/sweep API, SSE streaming sweeps, per-tenant quotas,
  admission control, Prometheus ``/metrics``, graceful SIGTERM drain;
* ``loadtest`` — drive a running server with concurrent clients and
  report served p50/p95/p99 latency, a bucketed latency histogram, and
  error rates (optionally merged into ``BENCH_repro.json`` and gated
  with ``--max-error-rate``);
* ``top`` — live dashboard over a running server's ``/v1/debug``
  runtime introspection endpoint (``--once`` for a single snapshot,
  ``--json`` for the raw machine-readable document);
* ``postmortem <dump>`` — render a ``flight-report`` JSON written by a
  crashed, SIGQUIT'd, or watchdog-tripped server (thread stacks,
  recent spans/events, metric snapshots);
* ``apps`` — list the available applications.

``bench --history BENCH_history.jsonl --compare`` turns the benchmark
into a trend gate: every run appends to the history, and timings that
exceed ``--threshold`` times the historical median exit non-zero.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .apps import fit_application, get_application
from .apps.registry import APP_NAMES
from .core.designer import DesignConfig, design_interconnect
from .errors import ReproError
from .flow import run_all, run_experiment
from .profiling.report import render_profile_graph, render_profile_table
from .reporting import (
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig8,
    render_fig9,
    render_simulation_crosscheck,
    render_table2,
    render_table3,
    render_table4,
)
from .sim.systems import SystemParams
from .sim.timeline import render_comparison


def _add_app_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "app", choices=APP_NAMES, help="application to operate on"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Automated hybrid interconnect design (IPPS 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", help="print an application's communication profile")
    _add_app_argument(p)
    p.add_argument("--table", action="store_true", help="tabular instead of graph form")
    p.add_argument("--scale", type=int, default=1, help="workload scale factor")
    p.add_argument("--sim", action="store_true",
                   help="time-resolved simulation profile (utilization "
                        "lanes, critical path, byte conservation)")
    p.add_argument("--json", action="store_true",
                   help="simulation profile as versioned JSON (implies --sim)")
    p.add_argument("--html", type=str, default=None, metavar="PATH",
                   help="write a self-contained HTML simulation profile "
                        "report here (implies --sim)")
    p.add_argument("--buckets", type=int, default=64,
                   help="utilization-timeseries bucket count (default 64)")

    p = sub.add_parser("design", help="design and print the custom interconnect")
    _add_app_argument(p)
    p.add_argument("--no-sharing", action="store_true", help="disable shared local memory")
    p.add_argument("--no-duplication", action="store_true", help="disable kernel duplication")
    p.add_argument("--no-pipelining", action="store_true", help="disable pipelining")
    p.add_argument("--noc-only", action="store_true",
                   help="the paper's NoC-only comparison system")

    p = sub.add_parser(
        "explain",
        help="print the designer's full Algorithm 1 decision log",
    )
    _add_app_argument(p)
    p.add_argument("--json", action="store_true",
                   help="machine-readable event list instead of prose")
    p.add_argument("--noc-only", action="store_true",
                   help="explain the NoC-only comparison design instead")
    p.add_argument("--scale", type=int, default=1, help="workload scale factor")
    p.add_argument("--with-profile", action="store_true",
                   help="interleave each decision with the measured "
                        "evidence from a profiled simulation run")

    p = sub.add_parser(
        "lint",
        help="static diagnostics (rule engine) over a designed plan",
    )
    p.add_argument("app", nargs="?", choices=APP_NAMES, default=None,
                   help="application to lint (omit with --all)")
    p.add_argument("--all", action="store_true", dest="all_apps",
                   help="lint every registered application")
    p.add_argument("--scale", type=int, default=1, help="workload scale factor")
    p.add_argument("--sim-crosscheck", action="store_true",
                   help="simulate the plan and verify every static "
                        "bandwidth bound against measured behavior")
    p.add_argument("--json", action="store_true",
                   help="versioned lint-report JSON instead of prose")
    p.add_argument("--sarif", type=str, default=None, metavar="PATH",
                   help="also write a SARIF 2.1.0 document here")
    p.add_argument("--fail-on", choices=("error", "warning", "info",
                                         "hint", "never"),
                   default="error",
                   help="exit 1 when any finding is at least this severe "
                        "(default: error)")

    p = sub.add_parser(
        "static",
        help="derive the communication graph statically (no execution)",
    )
    p.add_argument("app", nargs="?", choices=APP_NAMES, default=None,
                   help="application to analyze (omit with --all)")
    p.add_argument("--all", action="store_true", dest="all_apps",
                   help="analyze every statically-described application")
    p.add_argument("--scale", type=int, default=1, help="workload scale factor")
    p.add_argument("--seed", type=int, default=2014,
                   help="RNG seed for the tracer side of --check")
    p.add_argument("--check", action="store_true",
                   help="trace the application too and cross-check the "
                        "static graph byte-exactly against the tracer")
    p.add_argument("--json", action="store_true",
                   help="versioned static-graph (or static-diff) JSON "
                        "instead of prose")
    p.add_argument("--diff-out", type=str, default=None, metavar="PATH",
                   help="with --check, also write the static-diff "
                        "document here")

    p = sub.add_parser("simulate", help="simulate baseline vs proposed with a Gantt chart")
    _add_app_argument(p)
    p.add_argument("--width", type=int, default=60, help="gantt chart width")
    p.add_argument("--qos", action="store_true", help="enable NoC WRR QoS weights")

    p = sub.add_parser("report", help="regenerate every paper table and figure")
    p.add_argument("--markdown", action="store_true",
                   help="emit one markdown document instead of sections")
    p.add_argument("--output", type=str, default=None,
                   help="also write the report to this file")
    sub.add_parser("apps", help="list available applications")

    p = sub.add_parser(
        "sweep",
        help="run a parameter sweep through the design service (CSV out)",
    )
    p.add_argument("--apps", type=str, default=",".join(APP_NAMES),
                   help="comma-separated applications (default: all)")
    p.add_argument("--scales", type=str, default="1",
                   help="comma-separated workload scales")
    p.add_argument("--param", action="append", default=[], metavar="NAME=V1,V2",
                   help="SystemParams field to sweep (repeatable)")
    p.add_argument("--simulate", action="store_true",
                   help="also run discrete-event simulation per point")
    p.add_argument("--seed", type=int, default=2014, help="workload RNG seed")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel worker processes (1 = in-process serial)")
    p.add_argument("--cache-dir", type=str, default=None,
                   help="persist results here and reuse them across runs")
    p.add_argument("--stats", action="store_true",
                   help="print service metrics (cache hit ratio, latency)")
    p.add_argument("--output", type=str, default=None,
                   help="write the CSV here instead of stdout")
    p.add_argument("--trace-out", type=str, default=None, metavar="PATH",
                   help="collect spans and write them here "
                        "(.jsonl = JSONL, else Chrome trace_event JSON)")
    p.add_argument("--metrics-out", type=str, default=None, metavar="PATH",
                   help="write the service metrics snapshot here "
                        "(.prom = Prometheus exposition, else JSON)")
    p.add_argument("--profile-dir", type=str, default=None, metavar="DIR",
                   help="profile every simulated point and persist the "
                        "profiles here (one JSON per job fingerprint)")
    p.add_argument("--sim-backend", type=str, default=None,
                   metavar="{reference,fast,auto}",
                   help="simulation engine for fresh points (results are "
                        "byte-identical; default: REPRO_SIM_BACKEND or "
                        "reference)")

    p = sub.add_parser(
        "bench",
        help="benchmark the designer/simulator/service hot paths",
    )
    p.add_argument("--apps", type=str, default=",".join(APP_NAMES),
                   help="comma-separated applications (default: all)")
    p.add_argument("--repeat", type=int, default=3,
                   help="timing repetitions (each number is the minimum)")
    p.add_argument("--buckets", type=int, default=64,
                   help="profiler bucket count for the overhead measurement")
    p.add_argument("--out", type=str, default=None, metavar="PATH",
                   help="write the bench-report JSON here "
                        "(e.g. BENCH_repro.json)")
    p.add_argument("--max-overhead", type=float, default=None, metavar="X",
                   help="exit 1 if the profiler overhead ratio exceeds X "
                        "(gates on jpeg when benched)")
    p.add_argument("--history", type=str, default=None, metavar="PATH",
                   help="append this run to a JSONL history file "
                        "(e.g. BENCH_history.jsonl)")
    p.add_argument("--compare", action="store_true",
                   help="compare against the --history baseline "
                        "(median of past runs) before appending; exit 1 "
                        "on any timing regression")
    p.add_argument("--threshold", type=float, default=None, metavar="R",
                   help="regression ratio for --compare (default 1.5 = "
                        "50%% slower than the historical median)")
    p.add_argument("--max-fastcore-ratio", type=float, default=None,
                   metavar="R",
                   help="exit 1 unless sim_fastcore_s <= R * sim_baseline_s "
                        "(gates on fluid when benched)")
    p.add_argument("--sim-backend", type=str, default=None,
                   metavar="{reference,fast,auto}",
                   help="engine for the service batch measurement (per-app "
                        "sim metrics always pin their own engine)")
    p.add_argument("--profile-self", action="store_true",
                   help="also sample the benchmark's own stacks: adds "
                        "sim_sampled_s / sampler_overhead per app and a "
                        "self_profile phase-attribution section")
    p.add_argument("--profile-out", type=str, default=None, metavar="PATH",
                   help="write the speedscope profile of the phase-"
                        "attribution pass here (implies --profile-self)")
    p.add_argument("--max-sampler-overhead", type=float, default=None,
                   metavar="X",
                   help="exit 1 if the stack-sampler overhead ratio "
                        "exceeds X (implies --profile-self; gates on the "
                        "worst benched app)")

    p = sub.add_parser(
        "fuzz",
        help="property-based fuzzing of Algorithm 1 + the simulator",
    )
    p.add_argument("--seed", type=int, default=0, help="campaign seed")
    p.add_argument("--cases", type=int, default=100,
                   help="number of generated cases")
    p.add_argument("--shrink", action="store_true",
                   help="minimize every failing case before reporting")
    p.add_argument("--shrink-budget", type=int, default=300,
                   help="max candidate evaluations per shrink")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel worker processes (1 = in-process serial)")
    p.add_argument("--min-kernels", type=int, default=2,
                   help="smallest generated kernel count")
    p.add_argument("--max-kernels", type=int, default=8,
                   help="largest generated kernel count")
    p.add_argument("--density", type=float, default=0.3,
                   help="kernel-to-kernel edge probability")
    p.add_argument("--distribution", choices=("uniform", "log_uniform",
                                              "heavy_tail"),
                   default="log_uniform", help="byte-volume distribution")
    p.add_argument("--fixed-params", action="store_true",
                   help="use default SystemParams instead of fuzzing them")
    p.add_argument("--report", type=str, default=None, metavar="PATH",
                   help="write the JSON campaign report here")
    p.add_argument("--stats", action="store_true",
                   help="print service metrics after the campaign")
    p.add_argument("--trace-out", type=str, default=None, metavar="PATH",
                   help="collect spans and write them here "
                        "(.jsonl = JSONL, else Chrome trace_event JSON)")
    p.add_argument("--metrics-out", type=str, default=None, metavar="PATH",
                   help="write the service metrics snapshot here "
                        "(.prom = Prometheus exposition, else JSON)")

    p = sub.add_parser(
        "serve",
        help="run the networked design service (HTTP JSON API + SSE)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: loopback)")
    p.add_argument("--port", type=int, default=8014,
                   help="bind port (0 = ephemeral, printed at startup)")
    p.add_argument("--jobs", type=int, default=1,
                   help="service worker processes (1 = in-process serial)")
    p.add_argument("--cache-dir", type=str, default=None,
                   help="persist design results here across restarts")
    p.add_argument("--max-inflight", type=int, default=8,
                   help="requests allowed past admission at once")
    p.add_argument("--max-queue", type=int, default=32,
                   help="admission queue depth before 429s")
    p.add_argument("--quota-rate", type=float, default=50.0,
                   help="per-tenant sustained requests/second")
    p.add_argument("--quota-burst", type=float, default=100.0,
                   help="per-tenant burst capacity (token bucket size)")
    p.add_argument("--batch-window-ms", type=float, default=2.0,
                   help="micro-batching window in milliseconds")
    p.add_argument("--batch-max", type=int, default=16,
                   help="flush a batch at this many queued requests")
    p.add_argument("--max-sweep-points", type=int, default=4096,
                   help="largest accepted sweep grid (413 beyond)")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   help="seconds to wait for in-flight work on SIGTERM")
    p.add_argument("--event-log", type=str, default=None, metavar="PATH",
                   help="also append every runtime event as JSONL here")
    p.add_argument("--event-log-max-mb", type=float, default=0.0,
                   metavar="MB",
                   help="rotate the --event-log sink when it would exceed "
                        "this size (one .1 backup; 0 = never rotate)")
    p.add_argument("--flight-dir", type=str, default=".", metavar="DIR",
                   help="directory for flight-report dumps written on "
                        "crash, SIGQUIT, or a watchdog trip (default: cwd)")
    p.add_argument("--sim-backend", type=str, default=None,
                   metavar="{reference,fast,auto}",
                   help="simulation engine for served jobs (results are "
                        "byte-identical; a pure throughput knob)")

    p = sub.add_parser(
        "top",
        help="live runtime dashboard for a running repro server",
    )
    p.add_argument("--url", required=True,
                   help="server base URL, e.g. http://127.0.0.1:8014")
    p.add_argument("--tenant", default=None,
                   help="X-Tenant header for the introspection requests")
    p.add_argument("--interval", type=float, default=2.0,
                   help="refresh period in seconds")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit (no screen control)")
    p.add_argument("--json", action="store_true",
                   help="print the raw /v1/debug document as JSON and "
                        "exit (machine-readable; implies --once)")

    p = sub.add_parser(
        "postmortem",
        help="render a flight-report dump from a crashed/SIGQUIT'd server",
    )
    p.add_argument("dump", help="path to a flight-*.json dump file")
    p.add_argument("--json", action="store_true",
                   help="re-emit the validated document as canonical JSON "
                        "instead of the human rendering")
    p.add_argument("--events", type=int, default=15, metavar="N",
                   help="recent events to show per ring (default 15)")
    p.add_argument("--frames", type=int, default=12, metavar="N",
                   help="stack frames to show per thread (default 12)")

    p = sub.add_parser(
        "loadtest",
        help="drive a running repro server; report served p50/p99",
    )
    p.add_argument("--url", required=True,
                   help="server base URL, e.g. http://127.0.0.1:8014")
    p.add_argument("--requests", type=int, default=200)
    p.add_argument("--concurrency", type=int, default=8)
    p.add_argument("--apps", nargs="+", default=None,
                   help="applications to request (default: all four)")
    p.add_argument("--tenant", default=None,
                   help="X-Tenant header for every request")
    p.add_argument("--json-out", default=None, metavar="PATH",
                   help="write the full loadtest-report JSON here")
    p.add_argument("--bench-out", default=None, metavar="PATH",
                   help="merge headline numbers into this bench-report "
                        "JSON (e.g. BENCH_repro.json)")
    p.add_argument("--max-error-rate", type=float, default=None,
                   help="exit 1 if the error rate exceeds this")

    p = sub.add_parser("pareto", help="time/area Pareto front of designer configs")
    _add_app_argument(p)

    sub.add_parser(
        "portfolio",
        help="rank all applications by expected interconnect benefit",
    )

    p = sub.add_parser(
        "reconfig",
        help="deployment strategies for all four apps on one device",
    )
    p.add_argument("--device-luts", type=int, default=81920,
                   help="device LUT capacity (default: xc5vfx130t)")
    p.add_argument("--device-regs", type=int, default=81920,
                   help="device register capacity")
    p.add_argument("--rounds", type=int, default=8,
                   help="round-robin invocations per application")
    return parser


def cmd_profile(args: argparse.Namespace) -> int:
    if not (args.sim or args.json or args.html):
        # Legacy QUAD-style communication profile (Fig. 5).
        app = get_application(args.app, scale=args.scale)
        profile = app.profile()
        folded = profile.restricted_to(app.kernel_names(), "host")
        render = render_profile_table if args.table else render_profile_graph
        print(render(folded))
        return 0

    import json as json_mod
    import pathlib

    from .obs.profile.report import (
        profile_set_to_dict,
        render_html_report,
        render_profile_text,
    )

    result = run_experiment(
        args.app, scale=args.scale, profile=True,
        profile_buckets=args.buckets,
    )
    if args.json:
        print(json_mod.dumps(
            profile_set_to_dict(args.app, result.profiles),
            indent=2, sort_keys=True,
        ))
    else:
        for label in ("baseline", "proposed"):
            print(render_profile_text(result.profiles[label]))
            print()
    if args.html is not None:
        pathlib.Path(args.html).write_text(
            render_html_report(args.app, result.profiles)
        )
        # Keep stdout clean for --json piping.
        print(f"wrote HTML profile report to {args.html}",
              file=sys.stderr if args.json else sys.stdout)
    return 0


def cmd_design(args: argparse.Namespace) -> int:
    params = SystemParams()
    theta = params.theta_s_per_byte()
    fitted = fit_application(get_application(args.app), theta)
    config = DesignConfig(
        theta_s_per_byte=theta,
        stream_overhead_s=fitted.stream_overhead_s,
        enable_sharing=not args.no_sharing,
        enable_duplication=not args.no_duplication,
        enable_pipelining=not args.no_pipelining,
    )
    if args.noc_only:
        config = config.noc_only()
    plan = design_interconnect(args.app, fitted.graph, config)
    print(plan.describe())
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    import json as json_mod

    from .obs.provenance import render_provenance

    if args.with_profile:
        from .errors import ConfigurationError
        from .obs.profile.report import render_decisions_with_profile

        if args.noc_only or args.json:
            raise ConfigurationError(
                "--with-profile explains the proposed design in prose; "
                "drop --noc-only/--json"
            )
        result = run_experiment(args.app, scale=args.scale, profile=True)
        print(render_decisions_with_profile(result.plan, result.profiles))
        return 0

    params = SystemParams()
    theta = params.theta_s_per_byte()
    fitted = fit_application(get_application(args.app, scale=args.scale), theta)
    config = DesignConfig(
        theta_s_per_byte=theta,
        stream_overhead_s=fitted.stream_overhead_s,
    )
    if args.noc_only:
        config = config.noc_only()
    plan = design_interconnect(args.app, fitted.graph, config)
    if args.json:
        print(json_mod.dumps(
            [e.as_dict() for e in plan.provenance], indent=2
        ))
    else:
        from .analyze import analyze_plan

        print(render_provenance(plan))
        print()
        print(analyze_plan(plan, params).render())
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    import json as json_mod
    import pathlib

    from .analyze import Severity, analyze_plan, crosscheck_plan, to_sarif
    from .errors import ConfigurationError

    if args.all_apps == (args.app is not None):
        raise ConfigurationError(
            "lint needs exactly one of: an app name, or --all"
        )
    names = list(APP_NAMES) if args.all_apps else [args.app]
    params = SystemParams()
    theta = params.theta_s_per_byte()
    reports = []
    for name in names:
        fitted = fit_application(
            get_application(name, scale=args.scale), theta
        )
        config = DesignConfig(
            theta_s_per_byte=theta,
            stream_overhead_s=fitted.stream_overhead_s,
        )
        plan = design_interconnect(name, fitted.graph, config)
        report = analyze_plan(plan, params)
        if args.sim_crosscheck:
            report = report.extended(crosscheck_plan(plan, params))
        reports.append(report)
    if args.json:
        payload = [r.to_dict() for r in reports]
        print(json_mod.dumps(
            payload if args.all_apps else payload[0],
            indent=2, sort_keys=True,
        ))
    else:
        for report in reports:
            print(report.render())
    if args.sarif is not None:
        pathlib.Path(args.sarif).write_text(
            json_mod.dumps(to_sarif(reports), indent=2, sort_keys=True)
        )
        print(f"wrote SARIF report to {args.sarif}",
              file=sys.stderr if args.json else sys.stdout)
    if args.fail_on == "never":
        return 0
    threshold = Severity(args.fail_on)
    failing = any(r.at_least(threshold) for r in reports)
    return 1 if failing else 0


def cmd_static(args: argparse.Namespace) -> int:
    import json as json_mod
    import pathlib

    from .errors import ConfigurationError
    from .static import STATIC_APP_NAMES, analyze, describe
    from .static.crosscheck import (
        crosscheck_apps,
        crosscheck_to_dict,
        render_crosscheck,
    )

    if args.all_apps == (args.app is not None):
        raise ConfigurationError(
            "static needs exactly one of: an app name, or --all"
        )
    names = list(STATIC_APP_NAMES) if args.all_apps else [args.app]

    if args.check:
        checks = crosscheck_apps(names, scale=args.scale, seed=args.seed)
        doc = crosscheck_to_dict(checks)
        if args.json:
            print(json_mod.dumps(doc, indent=2, sort_keys=True))
        else:
            for check in checks:
                print(render_crosscheck(check))
        if args.diff_out is not None:
            pathlib.Path(args.diff_out).write_text(
                json_mod.dumps(doc, indent=2, sort_keys=True)
            )
            print(f"wrote static-diff report to {args.diff_out}",
                  file=sys.stderr if args.json else sys.stdout)
        return 0 if doc["ok"] else 1

    graphs = [analyze(describe(n, scale=args.scale)) for n in names]
    if args.json:
        payload = [g.to_dict() for g in graphs]
        print(json_mod.dumps(
            payload if args.all_apps else payload[0],
            indent=2, sort_keys=True,
        ))
        return 0
    for graph in graphs:
        tag = "exact" if graph.exact else (
            f"{len(graph.approximations)} data-dependent edge(s)"
        )
        print(f"{graph.app}: {len(graph.kernels)} kernels, "
              f"{len(graph.kk_edges)} kernel edges ({tag})")
        for (prod, cons), ext in graph.kk_edges.items():
            span = (str(ext.nominal) if ext.exact
                    else f"[{ext.lo}, {ext.hi}] ~{ext.nominal}")
            count = graph.transfers.get((prod, cons), 0)
            print(f"  {prod:>18} -> {cons:<18} {span:>24}  "
                  f"({count} transfers)")
        for kernel, ext in graph.host_in.items():
            print(f"  {'host':>18} -> {kernel:<18} {ext.nominal:>24}")
        for kernel, ext in graph.host_out.items():
            print(f"  {kernel:>18} -> {'host':<18} {ext.nominal:>24}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from .sim.stats import collect_stats
    from .sim.systems import simulate_proposed

    params = SystemParams(noc_qos=args.qos)
    result = run_experiment(args.app, params=params)
    assert result.sim_baseline is not None and result.sim_proposed is not None
    print(render_comparison(result.sim_baseline, result.sim_proposed,
                            width=args.width))
    app_s, kern_s = result.sim_proposed.speedup_over(result.sim_baseline)
    print(f"\nsimulated speed-up vs baseline: {app_s:.2f}x application, "
          f"{kern_s:.2f}x kernels\n")
    # Re-run once more keeping the live components for exact counters.
    components: dict = {}
    times = simulate_proposed(
        result.plan, result.fitted.host_other_s, params,
        components_out=components,
    )
    print(collect_stats(
        times,
        bus=components.get("bus"),
        noc=components.get("noc"),
        dma=components.get("dma"),
        engine=components.get("engine"),
    ).render())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    results = run_all()
    if getattr(args, "markdown", False):
        from .reporting import generate_markdown_report

        text = generate_markdown_report(results)
        print(text)
        if args.output:
            import pathlib

            pathlib.Path(args.output).write_text(text)
        return 0
    sections = [
        ("Fig. 4  — baseline vs software", render_fig4(results)),
        ("Table II — interconnect components", render_table2()),
        ("Fig. 5  — jpeg communication profile", render_fig5(results["jpeg"])),
        ("Fig. 6  — jpeg interconnect plan", render_fig6(results["jpeg"])),
        ("Table III / Fig. 7 — proposed-system speed-ups", render_table3(results)),
        ("Table IV — resource utilization", render_table4(results)),
        ("Fig. 8  — interconnect / kernel resources", render_fig8(results)),
        ("Fig. 9  — normalized energy", render_fig9(results)),
        ("Model vs simulation cross-check", render_simulation_crosscheck(results)),
    ]
    for title, body in sections:
        print(f"=== {title} ===")
        print(body)
        print()
    return 0


def _parse_param_value(text: str):
    """Best-effort scalar parsing for ``--param`` values."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def cmd_sweep(args: argparse.Namespace) -> int:
    from .errors import ConfigurationError
    from .service import DesignService
    from .sweep import SweepGrid, run_sweep, to_csv

    if args.profile_dir is not None and not args.simulate:
        raise ConfigurationError(
            "--profile-dir profiles simulated points; add --simulate"
        )
    param_grid = {}
    for spec in args.param:
        name, sep, values = spec.partition("=")
        if not sep or not values:
            raise ConfigurationError(
                f"--param expects NAME=V1,V2,... got {spec!r}"
            )
        param_grid[name] = [_parse_param_value(v) for v in values.split(",")]
    grid = SweepGrid(
        apps=[a for a in args.apps.split(",") if a],
        scales=[int(s) for s in args.scales.split(",") if s],
        param_grid=param_grid,
        simulate=args.simulate,
        seed=args.seed,
    )
    tracer = None
    if args.trace_out is not None:
        from .obs.trace import Tracer

        tracer = Tracer()
    service = DesignService(
        jobs=args.jobs, cache_dir=args.cache_dir, tracer=tracer,
        profile_dir=args.profile_dir, sim_backend=args.sim_backend,
    )
    points = run_sweep(grid, service=service)
    text = to_csv(points, args.output)
    if args.output is None:
        # CSV on stdout; keep metrics off it so piping stays clean.
        print(text, end="")
        if args.stats:
            print(service.render_stats(), file=sys.stderr)
    else:
        print(f"wrote {len(points)} sweep points to {args.output}")
        if args.stats:
            print(service.render_stats())
    if tracer is not None:
        import pathlib

        trace_path = pathlib.Path(args.trace_out)
        if trace_path.suffix == ".jsonl":
            tracer.write_jsonl(trace_path)
        else:
            tracer.write_chrome_trace(trace_path)
        print(f"wrote {len(tracer.events)} spans to {trace_path}",
              file=sys.stderr)
    if args.metrics_out is not None:
        from .obs.export import write_metrics

        out = write_metrics(service.stats(), args.metrics_out)
        print(f"wrote metrics snapshot to {out}", file=sys.stderr)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import render_bench, run_bench
    from .errors import ConfigurationError

    if args.compare and args.history is None:
        raise ConfigurationError("--compare needs --history PATH")
    if args.threshold is not None and not args.compare:
        raise ConfigurationError("--threshold only applies with --compare")

    profile_self = (
        args.profile_self
        or args.profile_out is not None
        or args.max_sampler_overhead is not None
    )
    apps = [a for a in args.apps.split(",") if a]
    report = run_bench(
        apps=apps, repeat=args.repeat, buckets=args.buckets, out=args.out,
        sim_backend=args.sim_backend, profile_self=profile_self,
        profile_out=args.profile_out,
    )
    print(render_bench(report))
    if args.out is not None:
        print(f"wrote benchmark report to {args.out}")
    if args.profile_out is not None:
        print(f"wrote speedscope self-profile to {args.profile_out}")

    regression = False
    if args.history is not None:
        from .obs.runtime.trends import (
            DEFAULT_THRESHOLD,
            append_history,
            compare_bench,
            load_history,
            regressions,
            render_trend_table,
        )

        threshold = (
            args.threshold if args.threshold is not None
            else DEFAULT_THRESHOLD
        )
        history = load_history(args.history)
        if args.compare:
            if not history:
                print(
                    "bench trend: no history yet at "
                    f"{args.history}; recording a baseline (not gating)"
                )
            else:
                deltas = compare_bench(
                    report, history, threshold=threshold
                )
                print(render_trend_table(deltas, threshold))
                regressed = regressions(deltas)
                if regressed:
                    names = ", ".join(d.name for d in regressed)
                    print(
                        f"FAIL: {len(regressed)} timing metric(s) "
                        f"regressed beyond {threshold:.2f}x the "
                        f"historical median: {names}",
                        file=sys.stderr,
                    )
                    regression = True
        # Always record this run (even a regressed one: the history is
        # the measurement log, the gate is the exit code).
        append_history(report, args.history)
        print(
            f"bench trend: appended run #{len(history) + 1} "
            f"to {args.history}"
        )
    if regression:
        return 1

    if args.max_overhead is not None:
        rows = report["apps"]
        # Gate on jpeg (the paper's running example and the heaviest
        # communicator); fall back to the worst app when not benched.
        name = ("jpeg" if "jpeg" in rows
                else max(rows, key=lambda n: rows[n]["profiler_overhead"]))
        overhead = rows[name]["profiler_overhead"]
        if overhead > args.max_overhead:
            print(
                f"FAIL: profiler overhead on {name} is {overhead:.2f}x "
                f"> allowed {args.max_overhead:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(f"profiler overhead gate ok: {name} {overhead:.2f}x "
              f"<= {args.max_overhead:.2f}x")

    if args.max_fastcore_ratio is not None:
        rows = report["apps"]
        # Gate on fluid (the workload the fast engine's acceptance
        # criterion is stated against); fall back to the app where the
        # fast engine does worst when fluid is not benched.
        name = ("fluid" if "fluid" in rows
                else max(rows, key=lambda n: rows[n]["sim_fastcore_s"]
                         / rows[n]["sim_baseline_s"]))
        ratio = rows[name]["sim_fastcore_s"] / rows[name]["sim_baseline_s"]
        if ratio > args.max_fastcore_ratio:
            print(
                f"FAIL: fastcore ratio on {name} is {ratio:.2f}x "
                f"> allowed {args.max_fastcore_ratio:.2f}x "
                f"(fast engine too slow vs reference)",
                file=sys.stderr,
            )
            return 1
        print(f"fastcore gate ok: {name} sim_fastcore_s is {ratio:.2f}x "
              f"sim_baseline_s <= {args.max_fastcore_ratio:.2f}x")

    if args.max_sampler_overhead is not None:
        rows = report["apps"]
        # Gate on the worst app: the sampler's cost is supposed to be
        # flat across workloads, so any app breaching the bound means
        # sampling got structurally more expensive.
        name = max(rows, key=lambda n: rows[n]["sampler_overhead"])
        overhead = rows[name]["sampler_overhead"]
        if overhead > args.max_sampler_overhead:
            print(
                f"FAIL: stack-sampler overhead on {name} is "
                f"{overhead:.2f}x > allowed "
                f"{args.max_sampler_overhead:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(f"sampler overhead gate ok: {name} {overhead:.2f}x "
              f"<= {args.max_sampler_overhead:.2f}x")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .io import save_json
    from .service import DesignService
    from .verify import FuzzSpec, run_fuzz

    spec = FuzzSpec(
        min_kernels=args.min_kernels,
        max_kernels=args.max_kernels,
        edge_density=args.density,
        volume_distribution=args.distribution,
        fuzz_system_params=not args.fixed_params,
    )
    tracer = None
    if args.trace_out is not None:
        from .obs.trace import Tracer

        tracer = Tracer()
    from .verify import run_fuzz_job

    service = DesignService(jobs=args.jobs, tracer=tracer,
                            runner=run_fuzz_job)
    report = run_fuzz(
        spec=spec,
        seed=args.seed,
        cases=args.cases,
        shrink=args.shrink,
        shrink_budget=args.shrink_budget,
        service=service,
        tracer=tracer,
    )
    print(report.render())
    if args.report is not None:
        save_json(report.to_dict(), args.report)
        print(f"wrote fuzz report to {args.report}")
    if args.stats:
        print(service.render_stats(), file=sys.stderr)
    if tracer is not None:
        import pathlib

        trace_path = pathlib.Path(args.trace_out)
        if trace_path.suffix == ".jsonl":
            tracer.write_jsonl(trace_path)
        else:
            tracer.write_chrome_trace(trace_path)
        print(f"wrote {len(tracer.events)} spans to {trace_path}",
              file=sys.stderr)
    if args.metrics_out is not None:
        from .obs.export import write_metrics

        out = write_metrics(service.stats(), args.metrics_out)
        print(f"wrote metrics snapshot to {out}", file=sys.stderr)
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from .server import ServerConfig
    from .server.runtime import serve

    config = ServerConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        batch_window_s=args.batch_window_ms / 1e3,
        batch_max=args.batch_max,
        max_sweep_points=args.max_sweep_points,
        drain_timeout_s=args.drain_timeout,
        event_log_path=args.event_log,
        event_log_max_mb=args.event_log_max_mb,
        flight_dir=args.flight_dir,
        sim_backend=args.sim_backend,
    )

    def _announce(server) -> None:
        print(f"repro server listening on {server.url} "
              f"(SIGTERM drains gracefully)", flush=True)

    return serve(config, ready=_announce)


def cmd_loadtest(args: argparse.Namespace) -> int:
    from .io import save_json
    from .server.loadtest import (
        DEFAULT_APPS,
        LoadtestConfig,
        format_report,
        merge_into_bench,
        run_loadtest,
    )

    config = LoadtestConfig(
        url=args.url,
        apps=tuple(args.apps) if args.apps else DEFAULT_APPS,
        requests=args.requests,
        concurrency=args.concurrency,
        tenant=args.tenant,
    )
    report = run_loadtest(config)
    print(format_report(report))
    if args.json_out:
        save_json(report, args.json_out)
        print(f"  report written to {args.json_out}")
    if args.bench_out:
        merge_into_bench(report, args.bench_out)
        print(f"  server section merged into {args.bench_out}")
    if (
        args.max_error_rate is not None
        and report["error_rate"] > args.max_error_rate
    ):
        print(
            f"FAIL: error rate {report['error_rate']:.3f} exceeds "
            f"--max-error-rate {args.max_error_rate:.3f}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    from .obs.runtime.debug import render_top
    from .server import DesignClient

    client = DesignClient(args.url, tenant=args.tenant)
    if args.json:
        import json as json_mod

        # Machine-readable one-shot: the raw /v1/debug document, no
        # ANSI, no table formatting — scriptable with jq.
        print(json_mod.dumps(client.debug(), indent=2, sort_keys=True))
        return 0
    while True:
        doc = client.debug()
        metrics_text = client.metrics()
        screen = render_top(doc, metrics_text=metrics_text)
        if args.once:
            print(screen)
            return 0
        # Home the cursor + clear so the dashboard repaints in place.
        print(f"\x1b[H\x1b[2J{screen}", flush=True)
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def cmd_postmortem(args: argparse.Namespace) -> int:
    from .obs.flight import load_flight_report, render_flight_report

    doc = load_flight_report(args.dump)
    if args.json:
        from .io import canonical_json

        print(canonical_json(doc))
    else:
        print(render_flight_report(
            doc, events_shown=args.events, frames_shown=args.frames
        ))
    return 0


def cmd_apps(_args: argparse.Namespace) -> int:
    for name in APP_NAMES:
        app = get_application(name)
        kernels = ", ".join(app.kernel_names())
        print(f"{name:<8} kernels: {kernels}")
    return 0


def cmd_pareto(args: argparse.Namespace) -> int:
    from .explore import enumerate_design_points, pareto_front

    params = SystemParams()
    theta = params.theta_s_per_byte()
    fitted = fit_application(get_application(args.app), theta)
    config = DesignConfig(
        theta_s_per_byte=theta, stream_overhead_s=fitted.stream_overhead_s
    )
    points = enumerate_design_points(
        args.app, fitted.graph, config, fitted.host_other_s
    )
    front = {p.label for p in pareto_front(points)}
    print(f"{'':2}{'configuration':<20}{'kernels':>12}{'LUTs':>8}")
    for p in sorted(points, key=lambda p: p.kernels_seconds):
        mark = "*" if p.label in front else " "
        print(
            f"{mark:2}{p.label:<20}{p.kernels_seconds * 1e3:>10.3f}ms"
            f"{p.luts:>8}"
        )
    print("\n(* = Pareto-optimal)")
    return 0


def cmd_reconfig(args: argparse.Namespace) -> int:
    from .flow import to_deployment
    from .hw.device import Device
    from .hw.resources import ComponentKind, component_cost
    from .hw.synthesis import PLATFORM_BASE
    from .reconfig import ReconfigurationScheduler, WorkloadMix

    results = run_all(simulate=False)
    deployments = [to_deployment(r) for r in results.values()]
    device = Device("cli-device", args.device_luts, args.device_regs, 10**6)
    sched = ReconfigurationScheduler(
        deployments,
        PLATFORM_BASE + component_cost(ComponentKind.BUS),
        device=device,
    )
    mix = WorkloadMix.round_robin([d.name for d in deployments], args.rounds)
    print(f"device: {device.luts} LUTs / {device.regs} regs; "
          f"mix: {len(mix.sequence)} invocations, {len(mix.switches())} switches")
    for strategy, plan in sched.evaluate(mix).items():
        status = "ok " if plan.feasible else "N/A"
        print(
            f"  {strategy.value:<16} [{status}] {plan.resources.luts:>6} LUTs  "
            f"total {plan.total_seconds * 1e3:8.2f} ms  "
            f"(reconfig {plan.reconfig_seconds * 1e3:.2f} ms x{plan.reconfig_count})"
        )
    best = sched.best(mix)
    print(f"best: {best.strategy.value}")
    return 0


def cmd_portfolio(_args: argparse.Namespace) -> int:
    from .explore import portfolio_summary, render_portfolio

    params = SystemParams()
    theta = params.theta_s_per_byte()
    graphs = {
        name: fit_application(get_application(name), theta).graph
        for name in APP_NAMES
    }
    print(render_portfolio(portfolio_summary(graphs, theta)))
    return 0


_COMMANDS = {
    "profile": cmd_profile,
    "design": cmd_design,
    "explain": cmd_explain,
    "lint": cmd_lint,
    "static": cmd_static,
    "simulate": cmd_simulate,
    "report": cmd_report,
    "sweep": cmd_sweep,
    "bench": cmd_bench,
    "fuzz": cmd_fuzz,
    "serve": cmd_serve,
    "loadtest": cmd_loadtest,
    "top": cmd_top,
    "postmortem": cmd_postmortem,
    "apps": cmd_apps,
    "pareto": cmd_pareto,
    "reconfig": cmd_reconfig,
    "portfolio": cmd_portfolio,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
