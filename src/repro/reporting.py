"""Formatting of the paper's tables and figure series.

Each ``render_*`` function prints the rows/series of one table or figure
from :class:`~repro.flow.ExperimentResult` objects; the benchmark harness
calls these so every experiment regenerates the exact artifact the paper
reports (numbers will differ — see EXPERIMENTS.md — but rows, columns and
series match).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .flow import ExperimentResult
from .hw.resources import COMPONENT_LIBRARY, ComponentKind
from .profiling.report import render_profile_graph
from .units import percent_saving


def _table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    out = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def render_fig4(results: Dict[str, ExperimentResult]) -> str:
    """Fig. 4: baseline-vs-SW speed-ups + comm/comp ratio per app."""
    rows = []
    ratios = []
    for name, r in results.items():
        s = r.baseline_vs_sw
        ratios.append(r.comm_comp_ratio)
        rows.append(
            [
                name,
                f"{s.application:.2f}x",
                f"{s.kernels:.2f}x",
                f"{r.comm_comp_ratio:.2f}",
            ]
        )
    rows.append(
        [
            "average",
            f"{sum(r.baseline_vs_sw.application for r in results.values()) / len(results):.2f}x",
            f"{sum(r.baseline_vs_sw.kernels for r in results.values()) / len(results):.2f}x",
            f"{sum(ratios) / len(ratios):.2f}",
        ]
    )
    return _table(
        ["app", "baseline/SW (app)", "baseline/SW (kernels)", "comm/comp"],
        rows,
    )


def render_table2() -> str:
    """Table II: interconnect component resource costs and fmax."""
    rows = []
    for kind in (
        ComponentKind.BUS,
        ComponentKind.CROSSBAR,
        ComponentKind.ROUTER,
        ComponentKind.NA_KERNEL,
        ComponentKind.NA_MEMORY,
        ComponentKind.MUX,
        ComponentKind.NOC_GLUE,
    ):
        spec = COMPONENT_LIBRARY[kind]
        fmax = "N/A" if spec.fmax_hz is None else f"{spec.fmax_hz / 1e6:.1f}MHz"
        rows.append(
            [
                kind.value,
                f"{spec.cost.luts}/{spec.cost.regs}",
                fmax,
                spec.provenance,
            ]
        )
    return _table(["component", "LUTs/Registers", "max freq", "provenance"], rows)


def render_fig5(result: ExperimentResult) -> str:
    """Fig. 5: the JPEG data-communication profiling graph."""
    profile = result.fitted.app.profile()
    kernel_names = result.fitted.app.kernel_names()
    folded = profile.restricted_to(kernel_names, "host")
    return render_profile_graph(folded)


def render_fig6(result: ExperimentResult) -> str:
    """Fig. 6: the resulting interconnect for the JPEG decoder."""
    return result.plan.describe()


def render_table3(results: Dict[str, ExperimentResult]) -> str:
    """Table III: proposed-system speed-ups vs SW and vs baseline."""
    rows = []
    for name, r in results.items():
        sw = r.proposed_vs_sw
        base = r.proposed_vs_baseline
        rows.append(
            [
                name,
                f"{sw.application:.2f}x",
                f"{sw.kernels:.2f}x",
                f"{base.application:.2f}x",
                f"{base.kernels:.2f}x",
            ]
        )
    return _table(
        ["app", "vs SW (app)", "vs SW (kernels)", "vs base (app)", "vs base (kernels)"],
        rows,
    )


def render_fig7(results: Dict[str, ExperimentResult]) -> str:
    """Fig. 7: the Table III numbers as the chart's four bar series."""
    return render_table3(results)


def render_table4(results: Dict[str, ExperimentResult]) -> str:
    """Table IV: whole-system LUTs/registers + the chosen solution."""
    rows = []
    for name, r in results.items():
        b, p, n = r.synth_baseline.total, r.synth_proposed.total, r.synth_noc_only.total
        rows.append(
            [
                name,
                f"{b.luts}/{b.regs}",
                f"{p.luts}/{p.regs}",
                f"{n.luts}/{n.regs}",
                r.plan.solution_label(),
                f"{percent_saving(n.luts, p.luts):.1f}%",
            ]
        )
    return _table(
        ["app", "baseline", "our system", "NoC only", "solution", "LUTs saved vs NoC-only"],
        rows,
    )


def render_fig8(results: Dict[str, ExperimentResult]) -> str:
    """Fig. 8: interconnect resources normalized to kernel resources."""
    rows = []
    for name, r in results.items():
        est = r.synth_proposed
        rows.append(
            [
                name,
                f"{est.custom_interconnect.luts}",
                f"{est.kernels.luts}",
                f"{est.interconnect_over_kernels:.3f}",
            ]
        )
    return _table(
        ["app", "custom interconnect LUTs", "kernel LUTs", "interconnect/kernels"],
        rows,
    )


def render_fig9(results: Dict[str, ExperimentResult]) -> str:
    """Fig. 9: energy normalized to the baseline system."""
    rows = []
    for name, r in results.items():
        e = r.energy
        rows.append(
            [
                name,
                f"{e.baseline_power_w:.2f}W",
                f"{e.proposed_power_w:.2f}W",
                f"{e.normalized_energy:.3f}",
                f"{e.saving_percent:.1f}%",
            ]
        )
    return _table(
        ["app", "baseline power", "our power", "normalized energy", "saving"],
        rows,
    )


def generate_markdown_report(results: Dict[str, ExperimentResult]) -> str:
    """One self-contained markdown document with every regenerated
    table/figure — what ``python -m repro report --markdown`` emits.

    Tables are wrapped in code fences (they are fixed-width artifacts,
    not markdown tables) so the document renders identically everywhere.
    """

    def fence(text: str) -> str:
        return f"```\n{text}\n```"

    jpeg = results.get("jpeg")
    sections = [
        "# Reproduced evaluation — Pham-Quoc et al., IPPS 2014",
        "",
        "Regenerated tables and figures of *Automated Hybrid Interconnect "
        "Design for FPGA Accelerators Using Data Communication Profiling*. "
        "See EXPERIMENTS.md for paper-vs-measured commentary.",
        "",
        "## Fig. 4 — baseline vs software",
        fence(render_fig4(results)),
        "",
        "## Table II — interconnect components",
        fence(render_table2()),
    ]
    if jpeg is not None:
        sections += [
            "",
            "## Fig. 5 — JPEG communication profile",
            fence(render_fig5(jpeg)),
            "",
            "## Fig. 6 — JPEG interconnect plan",
            fence(render_fig6(jpeg)),
        ]
    sections += [
        "",
        "## Table III / Fig. 7 — proposed-system speed-ups",
        fence(render_table3(results)),
        "",
        "## Table IV — resource utilization",
        fence(render_table4(results)),
        "",
        "## Fig. 8 — interconnect / kernel resources",
        fence(render_fig8(results)),
        "",
        "## Fig. 9 — normalized energy",
        fence(render_fig9(results)),
        "",
        "## Model vs simulation cross-check",
        fence(render_simulation_crosscheck(results)),
        "",
    ]
    return "\n".join(sections)


def render_simulation_crosscheck(results: Dict[str, ExperimentResult]) -> str:
    """Analytic-vs-simulated kernel times (our EXPERIMENTS.md evidence)."""
    rows: List[List[str]] = []
    for name, r in results.items():
        if r.sim_baseline is None or r.sim_proposed is None:
            continue
        rows.append(
            [
                name,
                f"{r.analytic_baseline.kernels_s * 1e3:.3f}ms",
                f"{r.sim_baseline.kernels_s * 1e3:.3f}ms",
                f"{r.analytic_proposed.kernels_s * 1e3:.3f}ms",
                f"{r.sim_proposed.kernels_s * 1e3:.3f}ms",
            ]
        )
    return _table(
        ["app", "base (model)", "base (sim)", "ours (model)", "ours (sim)"],
        rows,
    )
