"""Interval containers used by the memory tracer.

QUAD tracks producers *per byte address*. Tracking a dictionary entry per
byte would make profiling a few-megabyte working set unusably slow in
Python, so the tracer stores maximal half-open intervals instead: an
:class:`IntervalMap` maps ``[lo, hi)`` address ranges to the function that
last wrote them, and an :class:`IntervalSet` maintains the union of ranges
a consumer has read from a given producer (its UMA count is the measure of
that union). Both structures are exact — they produce byte-identical
results to the naive per-byte implementation, which the test suite checks
against a reference model.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional, Tuple

from ..errors import ProfilingError


def _check_range(lo: int, hi: int) -> None:
    if lo < 0 or hi < lo:
        raise ProfilingError(f"invalid interval [{lo}, {hi})")


class IntervalMap:
    """Maps half-open integer intervals to values, last write wins.

    Internally keeps two parallel sorted lists of starts/ends plus a value
    list; intervals never overlap and adjacent intervals with equal values
    are coalesced, so memory stays proportional to the number of distinct
    producer regions rather than the number of accesses.
    """

    __slots__ = ("_starts", "_ends", "_values")

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._values: List[object] = []

    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self) -> Iterator[Tuple[int, int, object]]:
        return iter(zip(self._starts, self._ends, self._values))

    def total_length(self) -> int:
        """Total number of addresses covered by the map."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    def assign(self, lo: int, hi: int, value: object) -> None:
        """Set ``[lo, hi)`` to ``value``, overwriting prior assignments."""
        _check_range(lo, hi)
        if lo == hi:
            return
        starts, ends, values = self._starts, self._ends, self._values

        # Find the window of existing intervals that overlap or touch.
        i = bisect_left(ends, lo)  # first interval with end >= lo
        j = bisect_right(starts, hi)  # first interval with start > hi

        # Fragments of overlapped intervals that survive on each side.
        prefix: Optional[Tuple[int, int, object]] = None
        suffix: Optional[Tuple[int, int, object]] = None
        if i < j:
            if starts[i] < lo:
                prefix = (starts[i], lo, values[i])
            if ends[j - 1] > hi:
                suffix = (hi, ends[j - 1], values[j - 1])

        new_items: List[Tuple[int, int, object]] = []
        if prefix is not None:
            if prefix[2] == value:
                lo = prefix[0]
            else:
                new_items.append(prefix)
        new_items.append((lo, hi, value))
        if suffix is not None:
            if suffix[2] == value:
                s, e, v = new_items[-1]
                new_items[-1] = (s, suffix[1], v)
            else:
                new_items.append(suffix)

        starts[i:j] = [it[0] for it in new_items]
        ends[i:j] = [it[1] for it in new_items]
        values[i:j] = [it[2] for it in new_items]
        self._coalesce_around(i, i + len(new_items))

    def _coalesce_around(self, lo_idx: int, hi_idx: int) -> None:
        """Merge equal-valued touching neighbours in ``[lo_idx-1, hi_idx]``."""
        starts, ends, values = self._starts, self._ends, self._values
        i = max(lo_idx - 1, 0)
        while i < min(hi_idx + 1, len(starts)) - 1:
            if ends[i] == starts[i + 1] and values[i] == values[i + 1]:
                ends[i] = ends[i + 1]
                del starts[i + 1], ends[i + 1], values[i + 1]
                hi_idx -= 1
            else:
                i += 1

    def query(self, lo: int, hi: int) -> List[Tuple[int, int, object]]:
        """Return the assigned sub-intervals overlapping ``[lo, hi)``.

        Each returned triple ``(s, e, v)`` is clipped to the query range.
        Unassigned gaps are omitted — callers treat gaps as "no producer".
        """
        _check_range(lo, hi)
        if lo == hi or not self._starts:
            return []
        starts, ends, values = self._starts, self._ends, self._values
        i = bisect_right(ends, lo)  # first interval with end > lo
        out: List[Tuple[int, int, object]] = []
        while i < len(starts) and starts[i] < hi:
            out.append((max(starts[i], lo), min(ends[i], hi), values[i]))
            i += 1
        return out

    def value_at(self, addr: int) -> Optional[object]:
        """Value covering a single address, or ``None`` when unassigned."""
        hits = self.query(addr, addr + 1)
        return hits[0][2] if hits else None


class IntervalSet:
    """A set of integers stored as maximal disjoint half-open intervals.

    Used for UMA accounting: ``add`` unions a new range in, ``measure``
    returns the exact number of distinct addresses accumulated.
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []

    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(zip(self._starts, self._ends))

    def add(self, lo: int, hi: int) -> None:
        """Union ``[lo, hi)`` into the set."""
        _check_range(lo, hi)
        if lo == hi:
            return
        starts, ends = self._starts, self._ends
        # Intervals touching [lo, hi) get merged (hence bisect on ends>=lo
        # and starts<=hi with equality included via left/right choice).
        i = bisect_left(ends, lo)
        j = bisect_right(starts, hi)
        if i < j:
            lo = min(lo, starts[i])
            hi = max(hi, ends[j - 1])
        starts[i:j] = [lo]
        ends[i:j] = [hi]

    def measure(self) -> int:
        """Number of distinct addresses in the set."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    def contains(self, addr: int) -> bool:
        """Whether a single address is in the set."""
        i = bisect_right(self._starts, addr)
        return i > 0 and self._ends[i - 1] > addr

    def intersect_length(self, lo: int, hi: int) -> int:
        """Number of addresses of ``[lo, hi)`` present in the set."""
        _check_range(lo, hi)
        starts, ends = self._starts, self._ends
        i = bisect_right(ends, lo)
        total = 0
        while i < len(starts) and starts[i] < hi:
            total += min(ends[i], hi) - max(starts[i], lo)
            i += 1
        return total
