"""QUAD-style quantitative data-communication profiling.

This package substitutes the QUAD toolset the paper uses (a Pin-based
dynamic binary instrumentation tool over C programs). Applications are
written against :class:`~repro.profiling.memory.TrackedBuffer` objects;
every load and store is recorded by a :class:`~repro.profiling.tracer.Tracer`
with exact byte intervals, and :class:`~repro.profiling.quad.QuadAnalyzer`
derives the same output QUAD produces: the amount of data transferred
between each producer function and consumer function, together with the
number of Unique Memory Addresses (UMAs) involved in the transfer.
"""

from .intervals import IntervalMap, IntervalSet
from .memory import AddressSpace, TrackedBuffer
from .tracer import Tracer, trace_context
from .quad import CommunicationProfile, ProfileEdge, FunctionStats, QuadAnalyzer
from .hotspot import HotspotReport, rank_functions, select_hw_candidates
from .report import render_profile_graph, render_profile_table
from .phases import PhaseProfiler, PhaseSlice

__all__ = [
    "IntervalMap",
    "IntervalSet",
    "AddressSpace",
    "TrackedBuffer",
    "Tracer",
    "trace_context",
    "CommunicationProfile",
    "ProfileEdge",
    "FunctionStats",
    "QuadAnalyzer",
    "HotspotReport",
    "rank_functions",
    "select_hw_candidates",
    "render_profile_graph",
    "render_profile_table",
    "PhaseProfiler",
    "PhaseSlice",
]
