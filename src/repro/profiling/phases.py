"""Phase-aware profiling.

Iterative applications (the fluid solver, video pipelines) repeat a
communication pattern every step. QUAD-style whole-run profiles sum
over all steps; for interconnect design it matters whether the pattern
is *stable* — a custom interconnect is synthesized once, so traffic
that only exists in one phase still needs wires in every phase.

:class:`PhaseProfiler` slices a tracer's producer→consumer byte counters
at phase boundaries (cheap deltas of the cumulative counters) and
reports per-phase communication, the stable core (edges present in
every phase) and phase-only outliers. UMA counts are inherently
whole-run (a union over addresses) and are not sliced.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..errors import ProfilingError
from .tracer import Tracer

Edge = Tuple[str, str]


@dataclass(frozen=True)
class PhaseSlice:
    """Traffic observed during one phase."""

    name: str
    index: int
    edge_bytes: Dict[Edge, int]

    def total_bytes(self) -> int:
        """Traffic of this phase."""
        return sum(self.edge_bytes.values())


class PhaseProfiler:
    """Slices a tracer's edge counters into named phases."""

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self._slices: List[PhaseSlice] = []
        self._open = False

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Record one phase; nesting is not supported (phases tile the
        run linearly, like solver time steps)."""
        if self._open:
            raise ProfilingError("phases cannot nest")
        self._open = True
        before = {k: b for k, (b, _) in self.tracer.edges().items()}
        try:
            yield
        finally:
            self._open = False
            after = {k: b for k, (b, _) in self.tracer.edges().items()}
            delta = {
                k: after[k] - before.get(k, 0)
                for k in after
                if after[k] - before.get(k, 0) > 0
            }
            self._slices.append(
                PhaseSlice(name=name, index=len(self._slices), edge_bytes=delta)
            )

    @property
    def slices(self) -> Tuple[PhaseSlice, ...]:
        """All recorded phases, in order."""
        return tuple(self._slices)

    def slices_named(self, name: str) -> Tuple[PhaseSlice, ...]:
        """The phases with a given name (e.g. every "step")."""
        return tuple(s for s in self._slices if s.name == name)

    def stable_edges(self) -> Dict[Edge, Tuple[int, int]]:
        """Edges present in *every* phase, with (min, max) per-phase bytes.

        These are the flows a statically synthesized interconnect must
        serve continuously.
        """
        if not self._slices:
            return {}
        common = set(self._slices[0].edge_bytes)
        for s in self._slices[1:]:
            common &= set(s.edge_bytes)
        return {
            e: (
                min(s.edge_bytes[e] for s in self._slices),
                max(s.edge_bytes[e] for s in self._slices),
            )
            for e in common
        }

    def phase_only_edges(self) -> Dict[Edge, Tuple[int, ...]]:
        """Edges absent from at least one phase → phase indices seen in."""
        seen: Dict[Edge, List[int]] = {}
        for s in self._slices:
            for e in s.edge_bytes:
                seen.setdefault(e, []).append(s.index)
        n = len(self._slices)
        return {
            e: tuple(idx) for e, idx in seen.items() if len(idx) < n
        }

    def union_edge_bytes(self) -> Dict[Edge, int]:
        """Total bytes per edge across all recorded phases.

        This is what a statically synthesized interconnect must be
        designed for: the union of every phase's traffic. Feed it to
        :meth:`repro.core.commgraph.CommGraph` construction (or compare
        against the whole-run profile, which it matches when all
        traffic happened inside phases).
        """
        out: Dict[Edge, int] = {}
        for s in self._slices:
            for e, b in s.edge_bytes.items():
                out[e] = out.get(e, 0) + b
        return out

    def is_stationary(self, tolerance: float = 0.25) -> bool:
        """Whether same-named phases repeat the same traffic pattern.

        True when every stable edge's per-phase byte counts stay within
        ``tolerance`` (relative) of each other and no edge is
        phase-only. A stationary pattern means designing from any one
        phase (or the whole-run profile) yields the same interconnect.
        """
        if len(self._slices) < 2:
            return True
        if self.phase_only_edges():
            return False
        for lo, hi in self.stable_edges().values():
            if hi > 0 and (hi - lo) / hi > tolerance:
                return False
        return True
