"""Textual rendering of communication profiles (the paper's Fig. 5).

QUAD emits the profile as a graph of functions with byte-annotated edges;
these helpers render the same information as an ASCII adjacency listing
and as a table, which is what the Fig. 5 bench prints.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .quad import CommunicationProfile


def _fmt_bytes(n: int) -> str:
    """Human-oriented byte count (exact below 10 KiB, rounded above)."""
    if n < 10 * 1024:
        return f"{n} B"
    if n < 10 * 1024 * 1024:
        return f"{n / 1024:.1f} KiB"
    return f"{n / (1024 * 1024):.2f} MiB"


def render_profile_table(
    profile: CommunicationProfile,
    limit: Optional[int] = None,
) -> str:
    """Render edges as a fixed-width table, heaviest first."""
    rows = profile.edges[:limit] if limit else profile.edges
    if not rows:
        return "(no inter-function communication observed)"
    pw = max(len("producer"), *(len(e.producer) for e in rows))
    cw = max(len("consumer"), *(len(e.consumer) for e in rows))
    lines = [
        f"{'producer':<{pw}}  {'consumer':<{cw}}  {'bytes':>12}  {'UMAs':>10}",
        f"{'-' * pw}  {'-' * cw}  {'-' * 12}  {'-' * 10}",
    ]
    for e in rows:
        lines.append(
            f"{e.producer:<{pw}}  {e.consumer:<{cw}}  {e.bytes:>12}  {e.umas:>10}"
        )
    return "\n".join(lines)


def render_profile_graph(
    profile: CommunicationProfile,
    focus: Sequence[str] = (),
) -> str:
    """Render the profile as an adjacency listing.

    ``focus`` optionally restricts the producers shown (the Fig. 5 bench
    focuses on the host plus the four JPEG kernels). Edge annotations show
    bytes and UMA counts just like QUAD's graph labels.
    """
    producers = list(dict.fromkeys(e.producer for e in profile.edges))
    if focus:
        wanted = set(focus)
        producers = [p for p in producers if p in wanted]
    lines = []
    for p in producers:
        lines.append(p)
        outs = [e for e in profile.edges if e.producer == p]
        for i, e in enumerate(outs):
            elbow = "`--" if i == len(outs) - 1 else "|--"
            lines.append(
                f"  {elbow}> {e.consumer}   [{_fmt_bytes(e.bytes)}, {e.umas} UMAs]"
            )
    return "\n".join(lines) if lines else "(empty profile)"


def render_dot(profile: CommunicationProfile, name: str = "quad") -> str:
    """Render the profile as a Graphviz ``dot`` digraph string.

    Handy for users who want to *see* the Fig. 5 graph; the library never
    shells out to graphviz itself.
    """
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for e in profile.edges:
        lines.append(
            f'  "{e.producer}" -> "{e.consumer}" '
            f'[label="{e.bytes} B / {e.umas} UMA"];'
        )
    lines.append("}")
    return "\n".join(lines)
