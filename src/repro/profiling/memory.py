"""Tracked address space and buffers.

Applications under profiling allocate their working arrays from an
:class:`AddressSpace`; the resulting :class:`TrackedBuffer` objects carry a
NumPy payload plus a base address in a flat byte-addressed space. Every
``load``/``store`` call both moves real data and reports the exact byte
interval to the attached :class:`~repro.profiling.tracer.Tracer`, which is
how producer→consumer byte counts and UMA counts are derived.

Granularity note: accesses are recorded in *bytes* (QUAD's unit), but the
buffer API is element-oriented — offsets and lengths are in elements of
the buffer dtype and converted internally using the dtype item size.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from ..errors import AddressSpaceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .tracer import Tracer


class TrackedBuffer:
    """A named, address-mapped NumPy array whose accesses are traced.

    Instances are created through :meth:`AddressSpace.alloc`. The raw
    array is reachable as :attr:`data` for *untracked* scratch access
    (e.g. test assertions); application code should use :meth:`load`,
    :meth:`store` and :meth:`store_full` so that the communication
    profile stays faithful.
    """

    __slots__ = ("name", "base", "data", "_space")

    def __init__(self, name: str, base: int, data: np.ndarray, space: "AddressSpace"):
        self.name = name
        self.base = base
        self.data = data
        self._space = space

    # -- geometry ----------------------------------------------------------
    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return self.data.itemsize

    @property
    def nbytes(self) -> int:
        """Total payload size in bytes."""
        return self.data.nbytes

    def __len__(self) -> int:
        return self.data.size

    def address_range(self, start: int = 0, count: Optional[int] = None) -> Tuple[int, int]:
        """Byte address interval ``[lo, hi)`` of an element slice."""
        if count is None:
            count = self.data.size - start
        if start < 0 or count < 0 or start + count > self.data.size:
            raise AddressSpaceError(
                f"slice [{start}, {start + count}) out of range for buffer "
                f"{self.name!r} of {self.data.size} elements"
            )
        lo = self.base + start * self.itemsize
        return lo, lo + count * self.itemsize

    # -- traced access -----------------------------------------------------
    def load(self, start: int = 0, count: Optional[int] = None) -> np.ndarray:
        """Read ``count`` elements starting at ``start`` (traced).

        Returns a read-only view; mutating it would bypass tracing, so the
        view is marked non-writeable.
        """
        lo, hi = self.address_range(start, count)
        self._space.tracer.record_load(lo, hi)
        n = (hi - lo) // self.itemsize
        view = self.data.reshape(-1)[start : start + n]
        view = view.view()
        view.flags.writeable = False
        return view

    def store(self, values: np.ndarray, start: int = 0) -> None:
        """Write ``values`` at element offset ``start`` (traced)."""
        values = np.asarray(values, dtype=self.data.dtype).reshape(-1)
        lo, hi = self.address_range(start, values.size)
        self.data.reshape(-1)[start : start + values.size] = values
        self._space.tracer.record_store(lo, hi)

    def store_full(self, values: np.ndarray) -> None:
        """Replace the whole payload (traced); shape must match."""
        values = np.asarray(values, dtype=self.data.dtype)
        if values.size != self.data.size:
            raise AddressSpaceError(
                f"store_full size mismatch on {self.name!r}: "
                f"{values.size} != {self.data.size}"
            )
        self.data.reshape(-1)[:] = values.reshape(-1)
        lo, hi = self.address_range(0, self.data.size)
        self._space.tracer.record_store(lo, hi)

    def load_full(self) -> np.ndarray:
        """Read the whole payload (traced), shaped like the buffer."""
        flat = self.load(0, self.data.size)
        return flat.reshape(self.data.shape)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TrackedBuffer({self.name!r}, base=0x{self.base:x}, "
            f"shape={self.data.shape}, dtype={self.data.dtype})"
        )


class AddressSpace:
    """Flat byte-addressed allocator for :class:`TrackedBuffer` objects.

    Buffers are laid out sequentially with an alignment pad, mimicking the
    single virtual address space QUAD observes. The space owns the tracer
    used by all buffers it allocates.
    """

    DEFAULT_ALIGN = 64

    def __init__(self, tracer: "Tracer", align: int = DEFAULT_ALIGN) -> None:
        if align <= 0 or (align & (align - 1)) != 0:
            raise AddressSpaceError(f"alignment must be a power of two, got {align}")
        self.tracer = tracer
        self.align = align
        self._next = 0
        self._buffers: dict[str, TrackedBuffer] = {}

    def alloc(self, name: str, shape, dtype=np.float64) -> TrackedBuffer:
        """Allocate a zero-initialised tracked buffer.

        Names must be unique within the space; they appear in profile
        reports so collisions would make reports ambiguous.
        """
        if name in self._buffers:
            raise AddressSpaceError(f"buffer name {name!r} already allocated")
        data = np.zeros(shape, dtype=dtype)
        base = self._next
        buf = TrackedBuffer(name, base, data, self)
        pad = (-data.nbytes) % self.align
        self._next = base + data.nbytes + pad
        self._buffers[name] = buf
        return buf

    def alloc_like(self, name: str, array: np.ndarray) -> TrackedBuffer:
        """Allocate a buffer with the shape/dtype of ``array`` and copy it
        in *untraced* (used to stage initial inputs before tracing starts)."""
        buf = self.alloc(name, array.shape, array.dtype)
        buf.data[...] = array
        return buf

    def get(self, name: str) -> TrackedBuffer:
        """Look up a previously allocated buffer by name."""
        try:
            return self._buffers[name]
        except KeyError:
            raise AddressSpaceError(f"no buffer named {name!r}") from None

    @property
    def buffers(self) -> Tuple[TrackedBuffer, ...]:
        """All allocated buffers, in allocation order."""
        return tuple(self._buffers.values())

    @property
    def bytes_allocated(self) -> int:
        """High-water mark of the allocator in bytes (including padding)."""
        return self._next

    def owner_of(self, addr: int) -> Optional[TrackedBuffer]:
        """Buffer containing byte address ``addr``, or ``None``."""
        for buf in self._buffers.values():
            if buf.base <= addr < buf.base + buf.nbytes:
                return buf
        return None
