"""Hotspot ranking — selecting ``L_hw`` (Algorithm 1, line 1).

The paper selects "the most computationally intensive functions suitable
to implement on HW". QUAD's companion profiling gives per-function
execution weight; our tracer records an abstract *work* counter instead
(operation counts charged by the application code). The ranker orders
functions by work and filters by a HW-suitability predicate supplied by
the application (some functions — I/O, control glue — are not
synthesizable, mirroring DWARV's restrictions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from ..errors import ProfilingError
from .quad import CommunicationProfile


@dataclass(frozen=True, slots=True)
class HotspotReport:
    """Ranked compute-intensity view of a profile."""

    #: (function, work, share-of-total-work) heaviest first.
    ranking: Tuple[Tuple[str, float, float], ...]
    total_work: float

    def top(self, k: int) -> Tuple[str, ...]:
        """Names of the ``k`` heaviest functions."""
        return tuple(name for name, _, _ in self.ranking[:k])

    def share(self, name: str) -> float:
        """Fraction of total work spent in ``name`` (0 when absent)."""
        for fn, _, s in self.ranking:
            if fn == name:
                return s
        return 0.0


def rank_functions(
    profile: CommunicationProfile,
    exclude: Sequence[str] = (),
) -> HotspotReport:
    """Rank profiled functions by recorded compute work.

    ``exclude`` removes pseudo-functions (the entry context, host glue)
    from the ranking.
    """
    banned = set(exclude) | {profile.entry_name}
    rows = [
        (f.name, f.work)
        for f in profile.functions
        if f.name not in banned and f.work > 0
    ]
    rows.sort(key=lambda r: (-r[1], r[0]))
    total = sum(w for _, w in rows)
    if total <= 0:
        return HotspotReport(ranking=(), total_work=0.0)
    ranking = tuple((name, work, work / total) for name, work in rows)
    return HotspotReport(ranking=ranking, total_work=total)


def select_hw_candidates(
    profile: CommunicationProfile,
    suitable: Optional[Callable[[str], bool]] = None,
    max_kernels: Optional[int] = None,
    min_work_share: float = 0.0,
    exclude: Sequence[str] = (),
) -> Tuple[str, ...]:
    """Select the ``L_hw`` list: hottest HW-suitable functions.

    Parameters
    ----------
    suitable:
        Predicate deciding HW implementability (default: everything).
    max_kernels:
        Cap on kernel count (FPGA area is finite); ``None`` = no cap.
    min_work_share:
        Drop functions below this fraction of total work — accelerating
        a 0.1 % function is never worth a kernel.
    """
    if min_work_share < 0 or min_work_share > 1:
        raise ProfilingError(f"min_work_share must be in [0, 1], got {min_work_share}")
    report = rank_functions(profile, exclude=exclude)
    out = []
    for name, _work, share in report.ranking:
        if share < min_work_share:
            break  # ranking is sorted, the rest are lighter
        if suitable is not None and not suitable(name):
            continue
        out.append(name)
        if max_kernels is not None and len(out) >= max_kernels:
            break
    return tuple(out)
