"""The memory-access tracer at the heart of the QUAD substitute.

The tracer maintains, exactly:

* ``last_writer``: an :class:`~repro.profiling.intervals.IntervalMap` from
  byte address to the function that most recently stored there;
* per ``(producer, consumer)`` pair, the number of bytes the consumer
  loaded that the producer had stored (QUAD's "data transfer" count);
* per pair, an :class:`~repro.profiling.intervals.IntervalSet` of the
  distinct addresses involved (QUAD's UMA count);
* per function, total load/store bytes and an abstract *work* counter the
  hotspot ranker uses in place of wall-clock samples.

Function attribution uses an explicit context stack: application task
functions run inside ``with tracer.context("name"):`` (or the
:func:`trace_context` decorator). Loads issued before any producer wrote
an address are attributed to the distinguished :data:`Tracer.ENTRY`
producer — in a C program under QUAD those bytes come from ``main``/input
staging, and the flow layer maps :data:`Tracer.ENTRY` to the host.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple, TypeVar

from ..errors import TracerStateError
from .intervals import IntervalMap, IntervalSet

F = TypeVar("F", bound=Callable)


@dataclass
class _FunctionCounters:
    """Mutable per-function aggregates."""

    calls: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0
    work: float = 0.0


@dataclass
class _EdgeCounters:
    """Mutable per-(producer, consumer) aggregates."""

    bytes: int = 0
    umas: IntervalSet = field(default_factory=IntervalSet)


class Tracer:
    """Records memory accesses and attributes them to function contexts."""

    #: Producer name for data that existed before any traced store
    #: (program inputs); the flow layer treats it as host-produced.
    ENTRY = "__entry__"

    def __init__(self) -> None:
        self._stack: List[str] = []
        self._last_writer = IntervalMap()
        self._edges: Dict[Tuple[str, str], _EdgeCounters] = {}
        self._functions: Dict[str, _FunctionCounters] = {}
        self.enabled = True

    # -- context management --------------------------------------------
    @property
    def current(self) -> str:
        """Innermost active function context (``ENTRY`` outside any)."""
        return self._stack[-1] if self._stack else self.ENTRY

    @contextlib.contextmanager
    def context(self, name: str) -> Iterator[None]:
        """Attribute accesses inside the block to function ``name``."""
        if not name or name == self.ENTRY:
            raise TracerStateError(f"invalid context name {name!r}")
        self._stack.append(name)
        self._functions.setdefault(name, _FunctionCounters()).calls += 1
        try:
            yield
        finally:
            popped = self._stack.pop()
            if popped != name:  # pragma: no cover - defensive
                raise TracerStateError(
                    f"unbalanced tracer contexts: popped {popped!r}, "
                    f"expected {name!r}"
                )

    @contextlib.contextmanager
    def paused(self) -> Iterator[None]:
        """Temporarily stop recording (for setup/verification code)."""
        prev, self.enabled = self.enabled, False
        try:
            yield
        finally:
            self.enabled = prev

    # -- recording -------------------------------------------------------
    def record_load(self, lo: int, hi: int) -> None:
        """A load of byte interval ``[lo, hi)`` by the current context."""
        if not self.enabled or lo >= hi:
            return
        consumer = self.current
        counters = self._functions.setdefault(consumer, _FunctionCounters())
        counters.bytes_loaded += hi - lo

        cursor = lo
        for seg_lo, seg_hi, producer in self._last_writer.query(lo, hi):
            if cursor < seg_lo:  # gap: never-written bytes -> ENTRY
                self._credit(self.ENTRY, consumer, cursor, seg_lo)
            self._credit(str(producer), consumer, seg_lo, seg_hi)
            cursor = seg_hi
        if cursor < hi:
            self._credit(self.ENTRY, consumer, cursor, hi)

    def record_store(self, lo: int, hi: int) -> None:
        """A store of byte interval ``[lo, hi)`` by the current context."""
        if not self.enabled or lo >= hi:
            return
        producer = self.current
        counters = self._functions.setdefault(producer, _FunctionCounters())
        counters.bytes_stored += hi - lo
        self._last_writer.assign(lo, hi, producer)

    def add_work(self, amount: float) -> None:
        """Charge abstract compute work to the current context.

        Applications call this with an operation count (e.g. multiply-
        accumulates performed); the hotspot ranker uses it the way QUAD's
        companion profiler uses execution-time samples.
        """
        if not self.enabled or amount <= 0:
            return
        self._functions.setdefault(self.current, _FunctionCounters()).work += amount

    def _credit(self, producer: str, consumer: str, lo: int, hi: int) -> None:
        if lo >= hi or producer == consumer:
            # QUAD reports *inter*-function communication; self-loops
            # (a function re-reading its own output) are local traffic.
            return
        edge = self._edges.setdefault((producer, consumer), _EdgeCounters())
        edge.bytes += hi - lo
        edge.umas.add(lo, hi)

    # -- inspection --------------------------------------------------------
    def edge_bytes(self, producer: str, consumer: str) -> int:
        """Bytes transferred from ``producer`` to ``consumer`` so far."""
        edge = self._edges.get((producer, consumer))
        return edge.bytes if edge else 0

    def edge_umas(self, producer: str, consumer: str) -> int:
        """Unique memory addresses used in the transfer so far."""
        edge = self._edges.get((producer, consumer))
        return edge.umas.measure() if edge else 0

    def edges(self) -> Dict[Tuple[str, str], Tuple[int, int]]:
        """All edges as ``{(producer, consumer): (bytes, umas)}``."""
        return {k: (e.bytes, e.umas.measure()) for k, e in self._edges.items()}

    def function_names(self) -> Tuple[str, ...]:
        """Names of every function observed, in first-seen order."""
        return tuple(self._functions)

    def function_counters(self, name: str) -> Tuple[int, int, int, float]:
        """``(calls, bytes_loaded, bytes_stored, work)`` for a function."""
        c = self._functions.get(name, _FunctionCounters())
        return (c.calls, c.bytes_loaded, c.bytes_stored, c.work)

    def last_writer_of(self, addr: int) -> Optional[str]:
        """Function that last wrote byte ``addr`` (``None`` if never)."""
        value = self._last_writer.value_at(addr)
        return None if value is None else str(value)


def trace_context(tracer: Tracer, name: Optional[str] = None) -> Callable[[F], F]:
    """Decorator running the wrapped function inside a tracer context.

    >>> tracer = Tracer()
    >>> @trace_context(tracer)
    ... def smooth(buf_in, buf_out): ...
    """

    def decorate(func: F) -> F:
        ctx_name = name or func.__name__

        def wrapper(*args, **kwargs):
            with tracer.context(ctx_name):
                return func(*args, **kwargs)

        wrapper.__name__ = func.__name__
        wrapper.__doc__ = func.__doc__
        return wrapper  # type: ignore[return-value]

    return decorate
