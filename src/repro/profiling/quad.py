"""QUAD-style analysis: turn a tracer's raw state into a communication
profile.

The profile is the immutable artifact the rest of the library consumes:
a set of :class:`ProfileEdge` records (producer, consumer, bytes, UMAs)
plus per-function statistics, mirroring the quantitative data-usage graph
QUAD emits (the paper's Fig. 5 is such a graph for the JPEG decoder).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..errors import ProfilingError
from .tracer import Tracer


@dataclass(frozen=True, slots=True)
class ProfileEdge:
    """One producer→consumer communication record.

    ``bytes`` is the total amount of data transferred (a byte read twice
    counts twice, exactly as QUAD counts); ``umas`` is the number of
    unique memory addresses involved.
    """

    producer: str
    consumer: str
    bytes: int
    umas: int

    def __post_init__(self) -> None:
        if self.bytes < 0 or self.umas < 0:
            raise ProfilingError(f"negative counts on edge {self}")
        if self.umas > self.bytes:
            raise ProfilingError(
                f"UMAs ({self.umas}) cannot exceed transferred bytes "
                f"({self.bytes}) on {self.producer}->{self.consumer}"
            )

    @property
    def reuse_factor(self) -> float:
        """How often each produced byte is re-read: ``bytes / UMAs``.

        1.0 means pure streaming (every address read once); higher
        values mean the consumer revisits the producer's data — a
        signal that a shared local memory (zero-copy access) is extra
        valuable for this edge, beyond the transfer-time saving.
        """
        if self.umas == 0:
            return 0.0
        return self.bytes / self.umas


@dataclass(frozen=True, slots=True)
class FunctionStats:
    """Per-function aggregates from the trace."""

    name: str
    calls: int
    bytes_loaded: int
    bytes_stored: int
    work: float


class CommunicationProfile:
    """Immutable quantitative data-communication profile of one run."""

    def __init__(
        self,
        edges: Iterable[ProfileEdge],
        functions: Iterable[FunctionStats],
        entry_name: str = Tracer.ENTRY,
    ) -> None:
        self._edges: Dict[Tuple[str, str], ProfileEdge] = {}
        for e in edges:
            key = (e.producer, e.consumer)
            if key in self._edges:
                raise ProfilingError(f"duplicate edge {key} in profile")
            self._edges[key] = e
        self._functions: Dict[str, FunctionStats] = {f.name: f for f in functions}
        self.entry_name = entry_name

    # -- basic access ------------------------------------------------------
    @property
    def edges(self) -> Tuple[ProfileEdge, ...]:
        """All edges, heaviest first (stable order for reports)."""
        return tuple(
            sorted(
                self._edges.values(),
                key=lambda e: (-e.bytes, e.producer, e.consumer),
            )
        )

    @property
    def functions(self) -> Tuple[FunctionStats, ...]:
        """Per-function statistics in first-seen order."""
        return tuple(self._functions.values())

    def function(self, name: str) -> FunctionStats:
        """Stats of one function."""
        try:
            return self._functions[name]
        except KeyError:
            raise ProfilingError(f"no function {name!r} in profile") from None

    def edge(self, producer: str, consumer: str) -> Optional[ProfileEdge]:
        """The edge between two functions, or ``None``."""
        return self._edges.get((producer, consumer))

    def bytes_between(self, producer: str, consumer: str) -> int:
        """Bytes transferred producer→consumer (0 when no edge)."""
        e = self._edges.get((producer, consumer))
        return e.bytes if e else 0

    def producers_of(self, consumer: str) -> Tuple[str, ...]:
        """Functions that feed ``consumer``, heaviest first."""
        return tuple(e.producer for e in self.edges if e.consumer == consumer)

    def consumers_of(self, producer: str) -> Tuple[str, ...]:
        """Functions that consume ``producer``'s output, heaviest first."""
        return tuple(e.consumer for e in self.edges if e.producer == producer)

    def total_bytes(self) -> int:
        """Total inter-function traffic observed."""
        return sum(e.bytes for e in self._edges.values())

    # -- aggregation ---------------------------------------------------------
    def collapse(self, groups: Mapping[str, str]) -> "CommunicationProfile":
        """Merge functions into named groups and re-aggregate edges.

        ``groups`` maps original function name → group name; unmapped
        functions keep their own name. Self-edges created by grouping are
        dropped (intra-group traffic is local, matching the tracer's
        convention). UMA counts are summed, which upper-bounds the true
        union; exact group UMAs would require re-tracing, and no consumer
        of this method relies on UMA exactness after collapsing.
        """
        agg_bytes: Dict[Tuple[str, str], int] = {}
        agg_umas: Dict[Tuple[str, str], int] = {}
        for e in self._edges.values():
            p = groups.get(e.producer, e.producer)
            c = groups.get(e.consumer, e.consumer)
            if p == c:
                continue
            agg_bytes[(p, c)] = agg_bytes.get((p, c), 0) + e.bytes
            agg_umas[(p, c)] = agg_umas.get((p, c), 0) + e.umas

        fn_agg: Dict[str, list] = {}
        for f in self._functions.values():
            g = groups.get(f.name, f.name)
            slot = fn_agg.setdefault(g, [0, 0, 0, 0.0])
            slot[0] += f.calls
            slot[1] += f.bytes_loaded
            slot[2] += f.bytes_stored
            slot[3] += f.work

        entry_group = groups.get(self.entry_name, self.entry_name)
        return CommunicationProfile(
            (
                ProfileEdge(p, c, b, min(agg_umas[(p, c)], b))
                for (p, c), b in agg_bytes.items()
            ),
            (
                FunctionStats(name, *map(int, vals[:3]), vals[3])
                for name, vals in fn_agg.items()
            ),
            entry_name=entry_group,
        )

    def restricted_to(self, names: Sequence[str], other: str) -> "CommunicationProfile":
        """Collapse everything outside ``names`` into the pseudo-function
        ``other`` — e.g. fold all non-kernel functions into "host"."""
        keep = set(names)
        groups = {
            f.name: other for f in self._functions.values() if f.name not in keep
        }
        if self.entry_name not in keep:
            groups[self.entry_name] = other
        return self.collapse(groups)


class QuadAnalyzer:
    """Builds :class:`CommunicationProfile` objects from a tracer."""

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer

    def profile(self) -> CommunicationProfile:
        """Snapshot the tracer state into an immutable profile."""
        edges = [
            ProfileEdge(p, c, b, u)
            for (p, c), (b, u) in self.tracer.edges().items()
        ]
        functions = []
        for name in self.tracer.function_names():
            calls, loaded, stored, work = self.tracer.function_counters(name)
            functions.append(FunctionStats(name, calls, loaded, stored, work))
        return CommunicationProfile(edges, functions, entry_name=Tracer.ENTRY)
