"""Runtime reconfigurability — the paper's stated future work.

The conclusion of the paper: "Runtime reconfigurability is the next
step in our work such that each application can dispose of its best
interconnect infrastructure leading to faster execution and less
overall energy consumption."

This package implements that step on top of the designer:

* :mod:`~repro.reconfig.bitstream` — partial-bitstream size and ICAP
  reconfiguration-time models (Virtex-5 class);
* :mod:`~repro.reconfig.region` — reconfigurable-region sizing against
  the device;
* :mod:`~repro.reconfig.scheduler` — given several applications (each
  with its own designed interconnect) and a workload mix, decide
  between hosting all systems **statically side by side** versus
  **time-multiplexing one reconfigurable region** (paying ICAP time per
  application switch), or a hybrid that keeps the hottest applications
  resident.
"""

from .bitstream import BitstreamModel, IcapModel
from .region import ReconfigurableRegion, region_for
from .scheduler import (
    AppDeployment,
    DeploymentPlan,
    ReconfigurationScheduler,
    Strategy,
    WorkloadMix,
)

__all__ = [
    "BitstreamModel",
    "IcapModel",
    "ReconfigurableRegion",
    "region_for",
    "AppDeployment",
    "WorkloadMix",
    "Strategy",
    "DeploymentPlan",
    "ReconfigurationScheduler",
]
