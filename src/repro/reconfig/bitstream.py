"""Partial bitstream and ICAP reconfiguration models.

Virtex-5 partial reconfiguration loads frames through the ICAP: 32 bits
per cycle at 100 MHz, i.e. 400 MB/s of raw configuration bandwidth.
Partial bitstream size scales with the reconfigurable region's area; on
Virtex-5, one CLB column frame-set is ~41 frames × 41 words, and a CLB
holds 8 LUT/FF pairs, which works out to roughly 90–110 configuration
bytes per LUT of region area. We model::

    bitstream_bytes = overhead + bytes_per_lut · region_luts
    reconfig_time   = bitstream_bytes / icap_bytes_per_second

The constants are calibration knobs, not silicon ground truth — what
the scheduler experiments need is the correct *scaling*: reconfiguration
time proportional to region size, in the millisecond range for
kernel-scale regions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..hw.resources import ResourceCost


@dataclass(frozen=True, slots=True)
class BitstreamModel:
    """Partial-bitstream size as a function of region area."""

    bytes_per_lut: float = 100.0
    overhead_bytes: int = 4096  # headers, pad frames, CRC

    def __post_init__(self) -> None:
        if self.bytes_per_lut <= 0 or self.overhead_bytes < 0:
            raise ConfigurationError("invalid bitstream model constants")

    def size_bytes(self, region: ResourceCost) -> int:
        """Partial bitstream size for a region of the given area."""
        return self.overhead_bytes + int(self.bytes_per_lut * region.luts)


@dataclass(frozen=True, slots=True)
class IcapModel:
    """ICAP throughput (32-bit @ 100 MHz on Virtex-5 → 400 MB/s)."""

    bytes_per_second: float = 400e6
    #: Fixed software/driver overhead per reconfiguration.
    setup_seconds: float = 200e-6

    def __post_init__(self) -> None:
        if self.bytes_per_second <= 0 or self.setup_seconds < 0:
            raise ConfigurationError("invalid ICAP model constants")

    def reconfig_seconds(self, bitstream_bytes: int) -> float:
        """Wall-clock time of one partial reconfiguration."""
        if bitstream_bytes < 0:
            raise ConfigurationError("negative bitstream size")
        return self.setup_seconds + bitstream_bytes / self.bytes_per_second
