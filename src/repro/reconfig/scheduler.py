"""Deployment strategies for multiple applications on one FPGA.

Given several applications, each with its designed interconnect and
per-invocation execution time, and a workload mix (the order in which
the host invokes them), the scheduler evaluates three strategies:

* ``STATIC_ALL`` — instantiate every application's kernels+interconnect
  side by side. Zero switching cost, maximum area; infeasible when the
  device is too small.
* ``RECONFIG_SINGLE`` — one reconfigurable region sized for the largest
  application; every switch to a *different* application pays an ICAP
  partial reconfiguration of the region.
* ``HYBRID_PINNED`` — greedily pin the applications that cause the most
  reconfiguration time (switch frequency × region cost) into dedicated
  static slots while the device has room; the rest share one region.

The figure of merit is total makespan over the mix; resources and
feasibility are reported alongside so callers can walk the trade-off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import ConfigurationError
from ..hw.device import Device, XC5VFX130T
from ..hw.resources import ResourceCost
from .bitstream import BitstreamModel, IcapModel
from .region import ReconfigurableRegion, region_for


@dataclass(frozen=True, slots=True)
class AppDeployment:
    """One application as the scheduler sees it."""

    name: str
    #: Reconfigurable module cost: kernels + custom interconnect
    #: (the static platform base and bus are shared and excluded).
    module: ResourceCost
    #: Execution time of one invocation on its designed system.
    exec_seconds: float

    def __post_init__(self) -> None:
        if self.exec_seconds <= 0:
            raise ConfigurationError(
                f"{self.name}: execution time must be positive"
            )


@dataclass(frozen=True)
class WorkloadMix:
    """A sequence of application invocations."""

    sequence: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.sequence:
            raise ConfigurationError("empty workload mix")

    @classmethod
    def round_robin(cls, names: Sequence[str], rounds: int) -> "WorkloadMix":
        """``rounds`` passes over ``names`` in order."""
        if rounds < 1:
            raise ConfigurationError("rounds must be >= 1")
        return cls(tuple(names) * rounds)

    @classmethod
    def bursty(cls, bursts: Sequence[Tuple[str, int]]) -> "WorkloadMix":
        """Runs of repeated invocations: ``[("jpeg", 10), ("canny", 3)]``."""
        seq: List[str] = []
        for name, count in bursts:
            if count < 1:
                raise ConfigurationError(f"burst of {count} for {name!r}")
            seq.extend([name] * count)
        return cls(tuple(seq))

    def switches(self) -> Tuple[Tuple[str, str], ...]:
        """Consecutive pairs that change application."""
        return tuple(
            (a, b)
            for a, b in zip(self.sequence, self.sequence[1:])
            if a != b
        )

    def counts(self) -> Dict[str, int]:
        """Invocations per application."""
        out: Dict[str, int] = {}
        for name in self.sequence:
            out[name] = out.get(name, 0) + 1
        return out


class Strategy(enum.Enum):
    """Deployment strategies the scheduler evaluates."""

    STATIC_ALL = "static_all"
    RECONFIG_SINGLE = "reconfig_single"
    HYBRID_PINNED = "hybrid_pinned"


@dataclass(frozen=True)
class DeploymentPlan:
    """Evaluation of one strategy on one workload mix."""

    strategy: Strategy
    feasible: bool
    resources: ResourceCost
    compute_seconds: float
    reconfig_seconds: float
    reconfig_count: int
    pinned: Tuple[str, ...] = ()
    notes: str = ""

    @property
    def total_seconds(self) -> float:
        """Makespan: computation plus reconfiguration overhead."""
        return self.compute_seconds + self.reconfig_seconds


class ReconfigurationScheduler:
    """Evaluates deployment strategies for a set of applications."""

    def __init__(
        self,
        apps: Sequence[AppDeployment],
        static_cost: ResourceCost,
        device: Device = XC5VFX130T,
        bitstream: BitstreamModel = BitstreamModel(),
        icap: IcapModel = IcapModel(),
        utilization_cap: float = 0.85,
        region_slack: float = 1.2,
    ) -> None:
        if not apps:
            raise ConfigurationError("no applications to schedule")
        names = [a.name for a in apps]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate application names")
        self.apps: Mapping[str, AppDeployment] = {a.name: a for a in apps}
        self.static_cost = static_cost
        self.device = device
        self.bitstream = bitstream
        self.icap = icap
        self.utilization_cap = utilization_cap
        self.region_slack = region_slack

    # -- helpers ---------------------------------------------------------
    def _compute_seconds(self, mix: WorkloadMix) -> float:
        total = 0.0
        for name in mix.sequence:
            if name not in self.apps:
                raise ConfigurationError(f"mix references unknown app {name!r}")
            total += self.apps[name].exec_seconds
        return total

    def _region_reconfig_seconds(self, region: ReconfigurableRegion) -> float:
        return self.icap.reconfig_seconds(self.bitstream.size_bytes(region.area))

    def _feasible(self, resources: ResourceCost) -> bool:
        return self.device.fits(resources, self.utilization_cap)

    # -- strategies ------------------------------------------------------
    def evaluate_static(self, mix: WorkloadMix) -> DeploymentPlan:
        """All applications resident simultaneously."""
        total = self.static_cost
        for app in self.apps.values():
            total = total + app.module
        return DeploymentPlan(
            strategy=Strategy.STATIC_ALL,
            feasible=self._feasible(total),
            resources=total,
            compute_seconds=self._compute_seconds(mix),
            reconfig_seconds=0.0,
            reconfig_count=0,
            notes="all systems side by side; zero switching cost",
        )

    def evaluate_reconfig(self, mix: WorkloadMix) -> DeploymentPlan:
        """One shared region, reconfigured on every application change.

        The first invocation also loads the region (one reconfiguration).
        """
        region = region_for(
            (a.module for a in self.apps.values()), slack=self.region_slack
        )
        per_switch = self._region_reconfig_seconds(region)
        count = len(mix.switches()) + 1  # + initial load
        total = self.static_cost + region.area
        return DeploymentPlan(
            strategy=Strategy.RECONFIG_SINGLE,
            feasible=self._feasible(total),
            resources=total,
            compute_seconds=self._compute_seconds(mix),
            reconfig_seconds=per_switch * count,
            reconfig_count=count,
            notes=f"region {region.area.luts} LUTs, "
            f"{per_switch * 1e3:.2f} ms per reconfiguration",
        )

    def evaluate_hybrid(self, mix: WorkloadMix) -> DeploymentPlan:
        """Pin the most reconfiguration-hungry apps, multiplex the rest."""
        switches = mix.switches()
        # Reconfiguration pressure: how many region loads an app causes.
        loads: Dict[str, int] = {name: 0 for name in self.apps}
        loads[mix.sequence[0]] += 1
        for _, to in switches:
            loads[to] += 1

        # Greedy pinning: biggest (loads × module size) first, while the
        # static budget holds and at least two apps stay unpinned (a
        # region shared by one app needs no reconfiguration anyway).
        order = sorted(
            self.apps.values(),
            key=lambda a: (-loads[a.name] * max(a.module.luts, 1), a.name),
        )
        pinned: List[str] = []
        static = self.static_cost
        remaining = set(self.apps)
        for app in order:
            if len(remaining) <= 1:
                break
            candidate_static = static + app.module
            rest = [self.apps[n].module for n in remaining if n != app.name]
            region = region_for(rest, slack=self.region_slack)
            if self._feasible(candidate_static + region.area):
                pinned.append(app.name)
                static = candidate_static
                remaining.discard(app.name)

        if remaining:
            region = region_for(
                [self.apps[n].module for n in remaining],
                slack=self.region_slack,
            )
            region_area = region.area
            per_switch = self._region_reconfig_seconds(region)
        else:  # pragma: no cover - remaining kept non-empty above
            region_area = ResourceCost.zero()
            per_switch = 0.0

        # Count region loads: only transitions *into* an unpinned app
        # that differs from the region's current occupant.
        count = 0
        occupant = None
        for name in mix.sequence:
            if name in remaining and name != occupant:
                count += 1
                occupant = name

        total = static + region_area
        return DeploymentPlan(
            strategy=Strategy.HYBRID_PINNED,
            feasible=self._feasible(total),
            resources=total,
            compute_seconds=self._compute_seconds(mix),
            reconfig_seconds=per_switch * count,
            reconfig_count=count,
            pinned=tuple(pinned),
            notes=f"pinned {pinned or 'none'}; region {region_area.luts} LUTs",
        )

    # -- entry points ----------------------------------------------------
    def evaluate(self, mix: WorkloadMix) -> Dict[Strategy, DeploymentPlan]:
        """All three strategies on one mix."""
        return {
            Strategy.STATIC_ALL: self.evaluate_static(mix),
            Strategy.RECONFIG_SINGLE: self.evaluate_reconfig(mix),
            Strategy.HYBRID_PINNED: self.evaluate_hybrid(mix),
        }

    def best(self, mix: WorkloadMix) -> DeploymentPlan:
        """Fastest *feasible* strategy (ties: fewer resources)."""
        plans = [p for p in self.evaluate(mix).values() if p.feasible]
        if not plans:
            raise ConfigurationError(
                "no feasible deployment strategy on this device"
            )
        return min(plans, key=lambda p: (p.total_seconds, p.resources.luts))
