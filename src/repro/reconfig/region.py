"""Reconfigurable region sizing.

A reconfigurable region must be rectangular-ish and over-provisioned
relative to the largest module it will host (placement/routing inside a
constrained region is less efficient than in free fabric); the
``slack`` factor models that. The *static* part of every deployment
(host interface, bus, platform I/O) never reconfigures and is excluded
from the region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import ConfigurationError, ResourceBudgetError
from ..hw.device import Device
from ..hw.resources import ResourceCost


@dataclass(frozen=True, slots=True)
class ReconfigurableRegion:
    """A region of fabric that can be partially reconfigured."""

    name: str
    area: ResourceCost

    def fits_module(self, module: ResourceCost) -> bool:
        """Whether a module can be placed into this region."""
        return module.luts <= self.area.luts and module.regs <= self.area.regs


def region_for(
    modules: Iterable[ResourceCost],
    slack: float = 1.2,
    name: str = "pr0",
) -> ReconfigurableRegion:
    """Size one region to host each of ``modules`` (one at a time).

    The region must cover the *largest* module in each dimension, padded
    by ``slack`` for the constrained-placement overhead.
    """
    if slack < 1.0:
        raise ConfigurationError(f"slack must be >= 1.0, got {slack}")
    modules = list(modules)
    if not modules:
        raise ConfigurationError("no modules to size a region for")
    luts = max(m.luts for m in modules)
    regs = max(m.regs for m in modules)
    return ReconfigurableRegion(
        name=name,
        area=ResourceCost(int(luts * slack), int(regs * slack)),
    )


def check_region_fits_device(
    region: ReconfigurableRegion,
    static_cost: ResourceCost,
    device: Device,
    utilization_cap: float = 0.85,
) -> None:
    """Raise when static logic + the region overflow the device."""
    total = static_cost + region.area
    if not device.fits(total, utilization_cap):
        raise ResourceBudgetError(
            f"region {region.name!r} ({region.area.luts} LUTs) plus static "
            f"logic ({static_cost.luts} LUTs) exceeds "
            f"{utilization_cap:.0%} of {device.name}"
        )
