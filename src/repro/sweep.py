"""Parameter sweeps over the experiment flow, with CSV export.

Research usage of this reproduction is rarely one run — it is "how does
the result change with bus width / θ / workload scale?". This module
runs :func:`repro.flow.run_experiment` over a parameter grid and
collects flat records ready for CSV/pandas, so studies do not each
reinvent the loop.

A sweep point varies any of: the application, the workload ``scale``,
and the :class:`~repro.sim.systems.SystemParams` fields (bus width,
burst size, NoC link width, transport, QoS). Analytic results are
always collected; simulation can be switched off for cheap wide grids.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import itertools
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from .errors import ConfigurationError
from .flow import ExperimentResult, run_experiment
from .sim.systems import SystemParams

#: Fields a grid may vary (everything else is rejected loudly).
_SWEEPABLE_PARAMS = {f.name for f in dataclasses.fields(SystemParams)}


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated grid point."""

    app: str
    scale: int
    params: SystemParams
    result: ExperimentResult

    def record(self) -> Dict[str, Any]:
        """Flatten into one CSV-ready row."""
        r = self.result
        row: Dict[str, Any] = {
            "app": self.app,
            "scale": self.scale,
            "bus_width_bytes": self.params.bus_width_bytes,
            "bus_burst_bytes": self.params.bus_burst_bytes,
            "noc_link_width_bytes": self.params.noc_link_width_bytes,
            "noc_transport": self.params.noc_transport,
            "solution": r.plan.solution_label(),
            "baseline_kernels_ms": r.analytic_baseline.kernels_s * 1e3,
            "proposed_kernels_ms": r.analytic_proposed.kernels_s * 1e3,
            "speedup_app": r.proposed_vs_baseline.application,
            "speedup_kernels": r.proposed_vs_baseline.kernels,
            "comm_comp_ratio": r.analytic_baseline.comm_comp_ratio,
            "proposed_luts": r.synth_proposed.total.luts,
            "noc_only_luts": r.synth_noc_only.total.luts,
            "energy_saving_pct": r.energy.saving_percent,
        }
        if r.sim_proposed is not None and r.sim_baseline is not None:
            app_s, kern_s = r.sim_proposed.speedup_over(r.sim_baseline)
            row["sim_speedup_app"] = app_s
            row["sim_speedup_kernels"] = kern_s
        return row


@dataclass
class SweepGrid:
    """Cartesian grid of sweep inputs."""

    apps: Sequence[str]
    scales: Sequence[int] = (1,)
    param_grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    simulate: bool = False
    seed: int = 2014

    def __post_init__(self) -> None:
        if not self.apps:
            raise ConfigurationError("sweep needs at least one application")
        unknown = set(self.param_grid) - _SWEEPABLE_PARAMS
        if unknown:
            raise ConfigurationError(
                f"unknown SystemParams fields in grid: {sorted(unknown)}"
            )

    def points(self) -> Iterable[Dict[str, Any]]:
        """Yield raw grid coordinates (before evaluation)."""
        keys = list(self.param_grid)
        values = [self.param_grid[k] for k in keys]
        for app in self.apps:
            for scale in self.scales:
                for combo in itertools.product(*values) if keys else [()]:
                    yield {
                        "app": app,
                        "scale": scale,
                        "params": dict(zip(keys, combo)),
                    }

    def size(self) -> int:
        """Number of grid points."""
        n = len(self.apps) * len(self.scales)
        for v in self.param_grid.values():
            n *= len(v)
        return n


def run_sweep(grid: SweepGrid) -> List[SweepPoint]:
    """Evaluate every grid point, deterministic order."""
    out: List[SweepPoint] = []
    for coord in grid.points():
        params = SystemParams(**coord["params"])
        result = run_experiment(
            coord["app"],
            scale=coord["scale"],
            seed=grid.seed,
            params=params,
            simulate=grid.simulate,
        )
        out.append(
            SweepPoint(
                app=coord["app"],
                scale=coord["scale"],
                params=params,
                result=result,
            )
        )
    return out


def to_csv(
    points: Sequence[SweepPoint],
    path: Optional[Union[str, pathlib.Path]] = None,
) -> str:
    """Render sweep records as CSV; optionally also write to ``path``."""
    if not points:
        raise ConfigurationError("no sweep points to export")
    records = [p.record() for p in points]
    fieldnames = list(records[0])
    for r in records[1:]:
        for k in r:
            if k not in fieldnames:
                fieldnames.append(k)
    buf = io.StringIO()
    writer = csv.DictWriter(
        buf, fieldnames=fieldnames, restval="", lineterminator="\n"
    )
    writer.writeheader()
    for r in records:
        writer.writerow(r)
    text = buf.getvalue()
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text
