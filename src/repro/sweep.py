"""Parameter sweeps over the experiment flow, with CSV export.

Research usage of this reproduction is rarely one run — it is "how does
the result change with bus width / θ / workload scale?". This module
runs :func:`repro.flow.run_experiment` over a parameter grid and
collects flat records ready for CSV/pandas, so studies do not each
reinvent the loop.

A sweep point varies any of: the application, the workload ``scale``,
and the :class:`~repro.sim.systems.SystemParams` fields (bus width,
burst size, NoC link width, transport, QoS). Analytic results are
always collected; simulation can be switched off for cheap wide grids.

Evaluation is delegated to :class:`repro.service.DesignService`, so
sweeps get parallel execution (``jobs=N``), cross-run result caching
(``cache_dir=...``), and duplicate-point coalescing for free; the CSV
output is byte-identical regardless of worker count or cache state.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import itertools
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from .errors import ConfigurationError
from .flow import SUMMARY_FIELDS, ExperimentResult, result_summary

from .sim.systems import SystemParams

#: Fields a grid may vary (everything else is rejected loudly).
_SWEEPABLE_PARAMS = {f.name for f in dataclasses.fields(SystemParams)}

#: Declaration-order SystemParams field names — every one is emitted in
#: each CSV row so rows are self-describing for any grid.
_PARAM_FIELDS = tuple(f.name for f in dataclasses.fields(SystemParams))


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated grid point."""

    app: str
    scale: int
    params: SystemParams
    #: Full result; ``None`` when the point was served from the service
    #: cache or computed in a worker process (summary-only transports).
    result: Optional[ExperimentResult] = None
    seed: int = 2014
    #: Flat result summary (:func:`repro.flow.result_summary` shape).
    summary: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.result is None and self.summary is None:
            raise ConfigurationError(
                "a SweepPoint needs a result or a summary"
            )

    def record(self) -> Dict[str, Any]:
        """Flatten into one CSV-ready row (coordinates + summary)."""
        row: Dict[str, Any] = {
            "app": self.app,
            "scale": self.scale,
            "seed": self.seed,
        }
        for name in _PARAM_FIELDS:
            row[name] = getattr(self.params, name)
        summary = (
            self.summary
            if self.summary is not None
            else result_summary(self.result)
        )
        # Re-impose the canonical column order: a summary that has been
        # through a JSON round-trip (cache, worker process) comes back
        # alphabetized, and CSV headers must not depend on that.
        for name in SUMMARY_FIELDS:
            if name in summary:
                row[name] = summary[name]
        for name, value in summary.items():
            if name not in row:
                row[name] = value
        return row


@dataclass
class SweepGrid:
    """Cartesian grid of sweep inputs."""

    apps: Sequence[str]
    scales: Sequence[int] = (1,)
    param_grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    simulate: bool = False
    seed: int = 2014

    def __post_init__(self) -> None:
        if not self.apps:
            raise ConfigurationError("sweep needs at least one application")
        unknown = set(self.param_grid) - _SWEEPABLE_PARAMS
        if unknown:
            raise ConfigurationError(
                f"unknown SystemParams fields in grid: {sorted(unknown)}"
            )

    def points(self) -> Iterable[Dict[str, Any]]:
        """Yield raw grid coordinates (before evaluation)."""
        keys = list(self.param_grid)
        values = [self.param_grid[k] for k in keys]
        for app in self.apps:
            for scale in self.scales:
                for combo in itertools.product(*values) if keys else [()]:
                    yield {
                        "app": app,
                        "scale": scale,
                        "params": dict(zip(keys, combo)),
                    }

    def size(self) -> int:
        """Number of grid points."""
        n = len(self.apps) * len(self.scales)
        for v in self.param_grid.values():
            n *= len(v)
        return n


def run_sweep(
    grid: SweepGrid,
    *,
    jobs: int = 1,
    cache_dir: Optional[Union[str, pathlib.Path]] = None,
    service: Optional["DesignService"] = None,
    sim_backend: Optional[str] = None,
) -> List[SweepPoint]:
    """Evaluate every grid point, deterministic order.

    Execution goes through the design service: ``jobs > 1`` fans points
    out over worker processes, ``cache_dir`` persists results across
    runs, and overlapping grids deduplicate automatically. With the
    defaults (one in-process worker, no disk cache) behaviour matches
    the historical serial path — including full
    :attr:`SweepPoint.result` objects on every point.

    ``sim_backend`` picks the simulation engine for freshly computed
    points (see :mod:`repro.sim.backend`); unknown names raise
    :class:`~repro.errors.ConfigurationError` before any point runs.
    CSV output is byte-identical across backends — that equivalence is
    what the conformance suite proves. Configure an injected ``service``
    with its own ``sim_backend`` instead of passing both.
    """
    from .service import DesignService, job_for_point

    if service is None:
        service = DesignService(
            jobs=jobs, cache_dir=cache_dir, sim_backend=sim_backend
        )
    elif sim_backend is not None:
        raise ConfigurationError(
            "pass sim_backend on the injected DesignService, not to "
            "run_sweep (the service owns execution)"
        )
    coords = list(grid.points())
    specs = [
        job_for_point(
            app=coord["app"],
            scale=coord["scale"],
            seed=grid.seed,
            params=coord["params"],
            simulate=grid.simulate,
        )
        for coord in coords
    ]
    return [
        SweepPoint(
            app=coord["app"],
            scale=coord["scale"],
            params=jr.job.params,
            result=jr.result,
            seed=grid.seed,
            summary=jr.summary,
        )
        for coord, jr in zip(coords, service.submit_many(specs))
    ]


def to_csv(
    points: Sequence[SweepPoint],
    path: Optional[Union[str, pathlib.Path]] = None,
) -> str:
    """Render sweep records as CSV; optionally also write to ``path``."""
    if not points:
        raise ConfigurationError("no sweep points to export")
    records = [p.record() for p in points]
    fieldnames = list(records[0])
    for r in records[1:]:
        for k in r:
            if k not in fieldnames:
                fieldnames.append(k)
    buf = io.StringIO()
    writer = csv.DictWriter(
        buf, fieldnames=fieldnames, restval="", lineterminator="\n"
    )
    writer.writeheader()
    for r in records:
        writer.writerow(r)
    text = buf.getvalue()
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text
