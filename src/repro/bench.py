"""Continuous benchmark harness for the repo's hot paths.

``repro bench`` times the three CPU-bound cores — Algorithm 1
(:func:`repro.core.designer.design_interconnect`), the discrete-event
simulations, and the design-service batch path — and writes one
versioned ``bench-report`` JSON (the committed ``BENCH_repro.json``; CI
regenerates it on every push so timing drift is visible in review).

Methodology: every number is the **minimum** wall-clock over ``repeat``
runs. The minimum, not the mean, is the right estimator for a
deterministic CPU-bound workload — all variance is scheduler/cache
noise that only ever adds time. The profiler-overhead ratio divides two
such minima, so the ``--max-overhead`` CI gate fails only on real
slowdowns of the instrumented simulation path, not on a noisy run.

Every field of the report is described in its embedded ``schema`` map,
so the artifact is self-documenting.
"""

from __future__ import annotations

import math
import platform
import threading
import time
from typing import Any, Callable, Dict, Optional, Sequence, Union

from .analyze import analyze_plan
from .apps import fit_application, get_application
from .apps.registry import APP_NAMES
from .core.designer import DesignConfig, design_interconnect
from .errors import ConfigurationError
from .io import FORMAT_VERSION, save_json
from .obs.flight import StackSampler
from .obs.profile.recorder import TimeseriesRecorder
from .obs.profile.report import build_profile
from .obs.trace import Tracer
from .sim.systems import SystemParams, simulate_baseline, simulate_proposed
from .static.fit import fit_static

#: Stack-sampling interval used by ``--profile-self`` measurements.
SELF_PROFILE_INTERVAL_S = 0.005

#: Document kind of the benchmark report artifact.
BENCH_KIND = "bench-report"

#: Field-by-field documentation embedded in every report.
BENCH_SCHEMA: Dict[str, str] = {
    "apps.<name>.design_s": (
        "best-of-repeat wall seconds for Algorithm 1 "
        "(design_interconnect) on the fitted communication graph"
    ),
    "apps.<name>.sim_baseline_s": (
        "best-of-repeat wall seconds for the baseline (shared-bus) "
        "discrete-event simulation on the reference engine, profiling "
        "disabled"
    ),
    "apps.<name>.sim_proposed_s": (
        "best-of-repeat wall seconds for the proposed-system "
        "discrete-event simulation on the reference engine, profiling "
        "disabled"
    ),
    "apps.<name>.sim_fastcore_s": (
        "best-of-repeat wall seconds for the baseline simulation on the "
        "fast engine (repro.sim.fastcore: calendar queue + event "
        "fusion); byte-identical results to sim_baseline_s"
    ),
    "apps.<name>.sim_fastcore_proposed_s": (
        "best-of-repeat wall seconds for the proposed-system simulation "
        "on the fast engine; byte-identical results to sim_proposed_s"
    ),
    "apps.<name>.fastcore_speedup": (
        "sim_baseline_s / sim_fastcore_s — how much faster the fast "
        "engine runs the baseline system; the CI gate bounds its "
        "inverse (--max-fastcore-ratio)"
    ),
    "apps.<name>.sim_proposed_profiled_s": (
        "best-of-repeat wall seconds for the proposed-system simulation "
        "with a TimeseriesRecorder attached"
    ),
    "apps.<name>.profile_build_s": (
        "best-of-repeat wall seconds to fuse the recorder's samples into "
        "a SimulationProfile (timeseries + matrix + critical path)"
    ),
    "apps.<name>.profiler_overhead": (
        "sim_proposed_profiled_s / sim_proposed_s — the multiplicative "
        "cost of recording; the CI gate bounds this ratio"
    ),
    "apps.<name>.lint_s": (
        "best-of-repeat wall seconds for the full static-analysis rule "
        "pass (repro.analyze.analyze_plan) over the designed plan"
    ),
    "apps.<name>.trace_fit_s": (
        "best-of-repeat wall seconds for the traced calibration path: "
        "instantiate the app, execute it under the QUAD tracer, and fit "
        "(repro.apps.fit_application)"
    ),
    "apps.<name>.static_s": (
        "best-of-repeat wall seconds for the trace-free path: analyze "
        "the declarative task-graph description and fit "
        "(repro.static.fit_static) — no kernel executes"
    ),
    "apps.<name>.static_speedup": (
        "trace_fit_s / static_s — how much faster the static analyzer "
        "derives a design-ready graph than tracing an execution; a "
        "ratio, so the trend gate never times it"
    ),
    "service.batch_cold_s": (
        "wall seconds for DesignService.submit_many over all benched "
        "apps with an empty cache (serial, in-process)"
    ),
    "service.batch_warm_s": (
        "wall seconds for the identical batch served entirely from the "
        "in-memory result cache"
    ),
    "service.cache_speedup": "batch_cold_s / batch_warm_s",
    "apps.<name>.sim_sampled_s": (
        "per-pass wall seconds for the proposed-system simulation on "
        "the reference engine with the wall-clock stack sampler "
        "(repro.obs.flight.StackSampler) attached, amortized over a "
        "batch of passes sized to a >=50ms timing window; present only "
        "with --profile-self"
    ),
    "apps.<name>.sampler_overhead": (
        "min over interleaved rounds of sampled/plain wall time for "
        "the same calibrated batch of proposed-system simulation "
        "passes — the multiplicative cost of stack sampling; the CI "
        "gate bounds this ratio (--max-sampler-overhead)"
    ),
    "self_profile.interval_s": (
        "stack-sampling interval used for the phase-attribution pass"
    ),
    "self_profile.samples": (
        "total stack samples captured across the phase-attribution pass"
    ),
    "self_profile.phases.<phase>": (
        "fraction of samples attributed to each simulator phase "
        "(calendar_queue, numpy_lane, fusion, dispatch, "
        "reference_engine, other) by innermost-frame match"
    ),
    "self_profile.spans.<label>": (
        "samples attributed to each bench span (one sim:<app> span per "
        "benched application) by wall-clock overlap"
    ),
    "repeat": "timing repetitions; every *_s field is the minimum",
    "buckets": "utilization-timeseries bucket count used when profiling",
    "python": "interpreter version the numbers were measured on",
    "sim_backend": (
        "resolved engine used by the service batch measurement; per-app "
        "sim metrics pin their own engine regardless"
    ),
}


def _best_of(fn: Callable[[], Any], repeat: int) -> float:
    """Minimum wall-clock seconds of ``repeat`` calls to ``fn``."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _sampler_overhead(
    fn: Callable[[], Any],
    repeat: int,
    interval_s: float,
    min_window_s: float = 0.05,
) -> tuple[float, float]:
    """Paired (overhead ratio, sampled per-pass seconds) for ``fn``.

    A single pass of the simulators runs in well under a millisecond,
    where scheduler jitter dwarfs the sampler's true cost — the ratio
    of two independent sub-ms timings is noise. So both sides of the
    ratio time the *same* batch of passes, with the batch size
    calibrated so each timed window is at least ``min_window_s``. A
    fresh sampler per repeat keeps each run's aggregation cost
    identical; the minimum over repeats then measures steady-state
    sampling overhead, not a one-off warm-up.
    """
    start = time.perf_counter()
    fn()
    once = time.perf_counter() - start
    passes = max(1, math.ceil(min_window_s / max(once, 1e-9)))

    def window() -> float:
        t0 = time.perf_counter()
        for _ in range(passes):
            fn()
        return time.perf_counter() - t0

    # Each round pairs a plain window with an adjacent sampled window
    # and the gate takes the min of the per-round ratios: a load burst
    # on a shared runner pollutes one round, not the measurement, while
    # the true sampler cost floors *every* round's ratio and so cannot
    # be selected away.
    ratio = sampled = float("inf")
    for _ in range(max(repeat, 5)):
        plain = window()
        sampler = StackSampler(
            interval_s=interval_s, threads=[threading.get_ident()]
        )
        with sampler:
            with_sampler = window()
        sampled = min(sampled, with_sampler)
        if plain > 0:
            ratio = min(ratio, with_sampler / plain)
    if not math.isfinite(ratio):
        ratio = 1.0
    return ratio, sampled / passes


def bench_app(
    name: str,
    repeat: int = 3,
    buckets: int = 64,
    params: SystemParams = SystemParams(),
    profile_self: bool = False,
) -> Dict[str, float]:
    """Time one application's designer and simulator hot paths."""
    theta = params.theta_s_per_byte()
    fitted = fit_application(get_application(name), theta)
    config = DesignConfig(
        theta_s_per_byte=theta,
        stream_overhead_s=fitted.stream_overhead_s,
    )
    plan = design_interconnect(name, fitted.graph, config)

    design_s = _best_of(
        lambda: design_interconnect(name, fitted.graph, config), repeat
    )
    # Both engines are timed with an explicitly pinned backend so the
    # numbers stay comparable across CI matrix legs that set
    # REPRO_SIM_BACKEND — the env var must shift test coverage, not
    # silently relabel what a bench metric measured.
    sim_baseline_s = _best_of(
        lambda: simulate_baseline(
            fitted.graph, fitted.host_other_s, params, backend="reference"
        ),
        repeat,
    )
    sim_proposed_s = _best_of(
        lambda: simulate_proposed(
            plan, fitted.host_other_s, params, backend="reference"
        ),
        repeat,
    )
    sim_fastcore_s = _best_of(
        lambda: simulate_baseline(
            fitted.graph, fitted.host_other_s, params, backend="fast"
        ),
        repeat,
    )
    sim_fastcore_proposed_s = _best_of(
        lambda: simulate_proposed(
            plan, fitted.host_other_s, params, backend="fast"
        ),
        repeat,
    )

    # The profiled run rebuilds a fresh recorder each repeat so no run
    # pays for a predecessor's grown sample lists.
    profiled_best = float("inf")
    last_recorder = TimeseriesRecorder()
    last_times = simulate_proposed(
        plan, fitted.host_other_s, params, recorder=last_recorder,
        backend="reference",
    )
    for _ in range(repeat):
        recorder = TimeseriesRecorder()
        start = time.perf_counter()
        times = simulate_proposed(
            plan, fitted.host_other_s, params, recorder=recorder,
            backend="reference",
        )
        profiled_best = min(profiled_best, time.perf_counter() - start)
        last_recorder, last_times = recorder, times

    profile_build_s = _best_of(
        lambda: build_profile(
            name, last_times, last_recorder, plan.graph, buckets=buckets
        ),
        repeat,
    )
    lint_s = _best_of(lambda: analyze_plan(plan, params), repeat)
    # Both graph-derivation paths build a fresh Application each repeat:
    # the traced side re-executes the instrumented app every time anyway,
    # and giving the static side the same constructor cost keeps the
    # speedup an apples-to-apples end-to-end ratio.
    trace_fit_s = _best_of(
        lambda: fit_application(get_application(name), theta), repeat
    )
    static_s = _best_of(
        lambda: fit_static(get_application(name), theta), repeat
    )
    row: Dict[str, float] = {}
    if profile_self:
        overhead, sim_sampled_s = _sampler_overhead(
            lambda: simulate_proposed(
                plan, fitted.host_other_s, params, backend="reference"
            ),
            repeat,
            SELF_PROFILE_INTERVAL_S,
        )
        row["sim_sampled_s"] = sim_sampled_s
        row["sampler_overhead"] = overhead
    return {
        "design_s": design_s,
        "sim_baseline_s": sim_baseline_s,
        "sim_proposed_s": sim_proposed_s,
        "sim_fastcore_s": sim_fastcore_s,
        "sim_fastcore_proposed_s": sim_fastcore_proposed_s,
        "fastcore_speedup": (
            sim_baseline_s / sim_fastcore_s if sim_fastcore_s > 0 else 1.0
        ),
        "sim_proposed_profiled_s": profiled_best,
        "profile_build_s": profile_build_s,
        "profiler_overhead": (
            profiled_best / sim_proposed_s if sim_proposed_s > 0 else 1.0
        ),
        "lint_s": lint_s,
        "trace_fit_s": trace_fit_s,
        "static_s": static_s,
        "static_speedup": (
            trace_fit_s / static_s if static_s > 0 else 1.0
        ),
        **row,
    }


def bench_self_profile(
    apps: Sequence[str],
    repeat: int = 3,
    params: SystemParams = SystemParams(),
    interval_s: float = 0.0005,
) -> "tuple[Dict[str, Any], StackSampler]":
    """Attribute fast-engine simulation time to simulator phases.

    The attribution pass samples finer (0.5ms) than the overhead
    measurement (5ms) and loops each sim many times: here resolution
    matters and the cost is not being timed. One sampler observes the
    fast-backend runs of every app, each
    wrapped in a ``sim:<app>`` span so samples can be folded both by
    code phase (calendar queue, numpy lane, fusion, dispatch) and by
    application. Returns the section for the report plus the stopped
    sampler, so callers can export the full speedscope document.
    """
    # Fit and design outside the sampled window: the question this
    # section answers is "where does *simulation* time go", and the
    # designer would otherwise dominate every profile.
    prepared = []
    theta = params.theta_s_per_byte()
    for name in apps:
        fitted = fit_application(get_application(name), theta)
        config = DesignConfig(
            theta_s_per_byte=theta,
            stream_overhead_s=fitted.stream_overhead_s,
        )
        plan = design_interconnect(name, fitted.graph, config)
        prepared.append((name, fitted, plan))

    sampler = StackSampler(
        interval_s=interval_s, threads=[threading.get_ident()]
    )
    tracer = Tracer()
    with sampler:
        for name, fitted, plan in prepared:
            with tracer.span(f"sim:{name}"):
                # The sims are sub-millisecond; loop well past `repeat`
                # so each span accumulates enough samples to attribute.
                for _ in range(max(repeat, 1) * 10):
                    simulate_proposed(
                        plan, fitted.host_other_s, params, backend="fast"
                    )
                    simulate_baseline(
                        fitted.graph, fitted.host_other_s, params,
                        backend="fast",
                    )
    section: Dict[str, Any] = {
        "interval_s": interval_s,
        "samples": sampler.samples,
        "phases": sampler.phase_fractions(),
        "spans": sampler.fold_spans(tracer),
    }
    return section, sampler


def bench_service(
    apps: Sequence[str], sim_backend: Optional[str] = None
) -> Dict[str, float]:
    """Time a cold vs warm service batch over ``apps`` (serial mode)."""
    from .service import DesignService
    from .service.jobs import DesignJob

    service = DesignService(jobs=1, sim_backend=sim_backend)
    jobs = [DesignJob(app=name) for name in apps]

    start = time.perf_counter()
    service.submit_many(jobs)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    service.submit_many(jobs)
    warm = time.perf_counter() - start
    return {
        "batch_cold_s": cold,
        "batch_warm_s": warm,
        "cache_speedup": cold / warm if warm > 0 else 1.0,
    }


def run_bench(
    apps: Sequence[str] = APP_NAMES,
    repeat: int = 3,
    buckets: int = 64,
    out: Optional[Union[str, "Any"]] = None,
    sim_backend: Optional[str] = None,
    profile_self: bool = False,
    profile_out: Optional[str] = None,
) -> Dict[str, Any]:
    """Benchmark every hot path; optionally write the JSON artifact.

    Per-app simulation metrics pin their engine explicitly (reference
    for ``sim_*_s``, fast for ``sim_fastcore*_s``); ``sim_backend``
    only steers the end-to-end service batch measurement. Unknown names
    raise :class:`~repro.errors.ConfigurationError` before any timing.
    """
    if repeat < 1:
        raise ConfigurationError(f"repeat must be >= 1, got {repeat}")
    unknown = set(apps) - set(APP_NAMES)
    if unknown:
        raise ConfigurationError(
            f"unknown applications: {sorted(unknown)} (have: {list(APP_NAMES)})"
        )
    from .sim.backend import make_engine, resolve_backend

    resolved_backend = resolve_backend(sim_backend)
    # Warm both engines before any timing: the fast backend's modules
    # import lazily on first use, and at --repeat 1 that one-time cost
    # would otherwise land inside sim_fastcore_s and read as a ~2x
    # slowdown that best-of-N runs never see.
    make_engine("reference")
    make_engine("fast")
    report: Dict[str, Any] = {
        "kind": BENCH_KIND,
        "version": FORMAT_VERSION,
        "repeat": repeat,
        "buckets": buckets,
        "python": platform.python_version(),
        "sim_backend": resolved_backend,
        "apps": {
            name: bench_app(name, repeat, buckets, profile_self=profile_self)
            for name in apps
        },
        "service": bench_service(apps, sim_backend=sim_backend),
        "schema": BENCH_SCHEMA,
    }
    if profile_self:
        section, sampler = bench_self_profile(apps, repeat=repeat)
        report["self_profile"] = section
        if profile_out is not None:
            save_json(sampler.to_speedscope(name="repro-bench"), profile_out)
    if out is not None:
        save_json(report, out)
    return report


def render_bench(report: Dict[str, Any]) -> str:
    """Terminal table of one :func:`run_bench` report."""
    lines = [
        f"benchmark report (best of {report['repeat']}, "
        f"python {report['python']})",
        f"  {'app':<8}{'design':>10}{'sim base':>10}{'sim prop':>10}"
        f"{'fastcore':>10}{'profiled':>10}{'build':>10}{'lint':>10}"
        f"{'static':>10}{'overhead':>10}{'fast x':>8}{'static x':>9}",
    ]
    for name, row in report["apps"].items():
        lines.append(
            f"  {name:<8}"
            f"{row['design_s'] * 1e3:>8.2f}ms"
            f"{row['sim_baseline_s'] * 1e3:>8.2f}ms"
            f"{row['sim_proposed_s'] * 1e3:>8.2f}ms"
            f"{row.get('sim_fastcore_s', 0.0) * 1e3:>8.2f}ms"
            f"{row['sim_proposed_profiled_s'] * 1e3:>8.2f}ms"
            f"{row['profile_build_s'] * 1e3:>8.2f}ms"
            f"{row.get('lint_s', 0.0) * 1e3:>8.2f}ms"
            f"{row.get('static_s', 0.0) * 1e3:>8.2f}ms"
            f"{row['profiler_overhead']:>9.2f}x"
            f"{row.get('fastcore_speedup', 1.0):>7.2f}x"
            f"{row.get('static_speedup', 1.0):>8.2f}x"
        )
    profile = report.get("self_profile")
    if profile:
        phases = ", ".join(
            f"{phase} {fraction:.0%}"
            for phase, fraction in sorted(
                profile["phases"].items(), key=lambda kv: -kv[1]
            )
            if fraction > 0
        )
        overheads = [
            row["sampler_overhead"]
            for row in report["apps"].values()
            if "sampler_overhead" in row
        ]
        worst = max(overheads) if overheads else 1.0
        lines.append(
            f"  self-profile: {profile['samples']} samples "
            f"@ {profile['interval_s'] * 1e3:.0f}ms, sampler overhead "
            f"<= {worst:.2f}x; {phases or 'no simulator samples'}"
        )
    svc = report["service"]
    lines.append(
        f"  service: cold batch {svc['batch_cold_s'] * 1e3:.2f}ms, "
        f"warm {svc['batch_warm_s'] * 1e3:.2f}ms "
        f"({svc['cache_speedup']:.0f}x cached)"
    )
    return "\n".join(lines)
