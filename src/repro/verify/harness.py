"""The fuzz campaign driver, wired through the service layer.

One fuzz *case* is a :class:`~repro.verify.generate.FuzzJob` — a
picklable ``(spec, seed, index)`` triple the
:class:`~repro.service.api.DesignService` treats exactly like a design
job: it has an ``app`` label and a content :meth:`~FuzzJob.fingerprint`,
so campaigns enjoy the same result caching, batch coalescing and
process-pool parallelism as experiment sweeps. The worker entry point
:func:`run_fuzz_job` generates the case, designs it, and runs the full
check stack (invariants → differential oracle → metamorphic), returning
a JSON-safe verdict; it never raises, so deterministic failures are
reported once instead of burning the executor's retry budget.

:func:`run_fuzz` drives a whole campaign and (optionally) minimizes each
failing case in-process with :func:`~repro.verify.shrink.shrink_case`,
producing a :class:`FuzzReport` whose serialized form is the CLI's and
CI's JSON artifact. Reports are deterministic: same spec + seed + case
count → byte-identical report.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set

from ..analyze import Severity, analyze_plan
from ..core.designer import design_interconnect
from ..core.plan import InterconnectPlan
from ..errors import ReproError
from ..sim.systems import SystemParams
from ..io import FORMAT_VERSION, canonical_json
from ..obs.trace import Tracer, active
from ..service.api import DesignService
from .generate import FuzzSpec, GeneratedCase, generate_case
from .invariants import Violation, check_plan
from .oracle import differential_check, metamorphic_checks
from .shrink import DEFAULT_BUDGET, shrink_case

#: Document kind of the serialized campaign report.
REPORT_KIND = "fuzz-report"
#: Check name reported when the designer itself raises.
DESIGNER_ERROR = "designer_error"
#: Check name reported when a checker (not the design) crashes.
ORACLE_ERROR = "oracle_error"
#: Check name for error diagnostics from the static analyzer.
STATIC_ANALYSIS = "static_analysis"


@dataclass(frozen=True)
class FuzzJob:
    """One service-schedulable fuzz case (picklable, content-addressed)."""

    spec: FuzzSpec
    seed: int
    index: int

    @property
    def app(self) -> str:
        """Label used by service metrics/traces, like a design job's app."""
        return f"fuzz[{self.seed}:{self.index}]"

    def fingerprint(self) -> str:
        """Content hash — the service's cache/coalescing key."""
        payload = {
            "kind": "fuzz-job",
            "version": FORMAT_VERSION,
            "spec": self.spec.to_dict(),
            "seed": self.seed,
            "index": self.index,
        }
        return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def analyzer_check(
    plan: InterconnectPlan, params: Optional[SystemParams] = None
) -> List[Violation]:
    """Static-analyzer oracle: error diagnostics are plan violations.

    The analyzer's error severity is reserved for structural
    obligations of Algorithm 1, so any error on a designer-produced
    plan is a bug — in the designer or in the rule — and the shrinker
    can minimize it like any other failing check.
    """
    report = analyze_plan(plan, params=params)
    return [
        Violation(
            STATIC_ANALYSIS,
            d.path or plan.app,
            f"{d.rule}: {d.message}",
        )
        for d in report.diagnostics
        if d.severity is Severity.ERROR
    ]


def evaluate_case(case: GeneratedCase) -> List[Violation]:
    """The full check stack over one case.

    Designer failures become a single ``designer_error`` violation;
    checker crashes become ``oracle_error`` — both named distinctly so
    the shrinker stays locked onto the original failure mode.
    """
    try:
        plan = design_interconnect(case.label(), case.graph, case.config())
    except ReproError as exc:
        return [Violation(DESIGNER_ERROR, case.label(), str(exc))]
    violations = check_plan(case.graph, case.config(), plan)
    try:
        violations += analyzer_check(plan, case.params)
    except ReproError as exc:
        violations.append(Violation(ORACLE_ERROR, case.label(), str(exc)))
    try:
        violations += differential_check(case, plan)
    except ReproError as exc:
        violations.append(Violation(ORACLE_ERROR, case.label(), str(exc)))
    try:
        violations += metamorphic_checks(case)
    except ReproError as exc:
        violations.append(Violation(ORACLE_ERROR, case.label(), str(exc)))
    return violations


def failing_checks(case: GeneratedCase) -> Set[str]:
    """Names of the checks ``case`` fails (the shrinker's evaluator)."""
    return {v.check for v in evaluate_case(case)}


def run_fuzz_job(job: FuzzJob) -> Dict[str, Any]:
    """Pool-safe worker entry: one case, full verdict, never raises."""
    try:
        case = generate_case(job.spec, job.seed, job.index)
        violations = evaluate_case(case)
    except Exception as exc:  # noqa: BLE001 — verdicts must come home
        violations = [
            Violation(
                ORACLE_ERROR,
                job.app,
                f"harness crashed: {type(exc).__name__}: {exc}",
            )
        ]
    return {
        "seed": job.seed,
        "index": job.index,
        "failed": bool(violations),
        "checks": sorted({v.check for v in violations}),
        "violations": [v.as_dict() for v in violations],
    }


@dataclass(frozen=True)
class FuzzFailure:
    """One failing case, with its minimized witness when shrinking ran."""

    seed: int
    index: int
    checks: Sequence[str]
    violations: Sequence[Mapping[str, Any]]
    case: Mapping[str, Any]
    shrunk: Optional[Mapping[str, Any]] = None
    shrink_steps: Sequence[str] = ()
    shrink_evaluations: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "index": self.index,
            "checks": list(self.checks),
            "violations": [dict(v) for v in self.violations],
            "case": dict(self.case),
            "shrunk": None if self.shrunk is None else dict(self.shrunk),
            "shrink_steps": list(self.shrink_steps),
            "shrink_evaluations": self.shrink_evaluations,
        }


@dataclass
class FuzzReport:
    """Outcome of one campaign; ``to_dict()`` is the JSON artifact."""

    spec: FuzzSpec
    seed: int
    cases: int
    failures: List[FuzzFailure] = field(default_factory=list)
    cached: int = 0
    mode: str = "serial"

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def passed(self) -> int:
        return self.cases - len(self.failures)

    def check_counts(self) -> Dict[str, int]:
        """Failing-check histogram across all failures."""
        counts: Dict[str, int] = {}
        for failure in self.failures:
            for check in failure.checks:
                counts[check] = counts.get(check, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": REPORT_KIND,
            "version": FORMAT_VERSION,
            "spec": self.spec.to_dict(),
            "seed": self.seed,
            "cases": self.cases,
            "passed": self.passed,
            "failed": len(self.failures),
            "cached": self.cached,
            "mode": self.mode,
            "check_counts": self.check_counts(),
            "failures": [f.to_dict() for f in self.failures],
        }

    def render(self) -> str:
        """Terminal summary of the campaign."""
        lines = [
            f"fuzz campaign: seed={self.seed} cases={self.cases} "
            f"passed={self.passed} failed={len(self.failures)} "
            f"(mode={self.mode}, cached={self.cached})"
        ]
        for name, count in self.check_counts().items():
            lines.append(f"  {name:<26} {count} failing case(s)")
        for failure in self.failures:
            lines.append(
                f"  fuzz[{failure.seed}:{failure.index}] fails "
                f"{', '.join(failure.checks)}"
            )
            target = failure.shrunk if failure.shrunk is not None else failure.case
            graph = target.get("graph", {})
            lines.append(
                f"    minimal witness: {len(graph.get('kernels', []))} kernel(s), "
                f"{len(graph.get('kk_edges', []))} edge(s), "
                f"{len(failure.shrink_steps)} shrink step(s)"
            )
            for violation in failure.violations[:3]:
                lines.append(
                    f"    {violation['check']}: {violation['message']}"
                )
        if self.ok:
            lines.append("  all invariant, differential and metamorphic checks held")
        return "\n".join(lines)


def run_fuzz(
    spec: Optional[FuzzSpec] = None,
    seed: int = 0,
    cases: int = 100,
    jobs: int = 1,
    shrink: bool = True,
    shrink_budget: int = DEFAULT_BUDGET,
    service: Optional[DesignService] = None,
    tracer: Optional[Tracer] = None,
) -> FuzzReport:
    """Run a whole campaign through the (cached, parallel) service layer.

    Failures found by the parallel sweep are re-evaluated and minimized
    serially in-process, so the shrinker sees live exceptions and the
    monkeypatchable production code under test.
    """
    spec = spec if spec is not None else FuzzSpec()
    tracer = active(tracer)
    if service is None:
        service = DesignService(jobs=jobs, runner=run_fuzz_job, tracer=tracer)
    fuzz_jobs = [FuzzJob(spec, seed, i) for i in range(cases)]

    with tracer.span("fuzz_campaign", category="verify", seed=seed, cases=cases):
        results = service.submit_many(fuzz_jobs)
    service.metrics.incr("fuzz_cases", cases)

    report = FuzzReport(
        spec=spec,
        seed=seed,
        cases=cases,
        cached=sum(1 for r in results if r.cached),
        mode=service.stats().get("last_mode", "serial"),
    )
    for result in results:
        summary = result.summary
        if not summary.get("failed"):
            continue
        service.metrics.incr("fuzz_failures")
        index = summary["index"]
        case = generate_case(spec, seed, index)
        failure = FuzzFailure(
            seed=seed,
            index=index,
            checks=tuple(summary["checks"]),
            violations=tuple(summary["violations"]),
            case=case.to_dict(),
        )
        if shrink:
            with tracer.span(
                "fuzz_shrink", category="verify", seed=seed, index=index
            ):
                shrunk = shrink_case(case, failing_checks, budget=shrink_budget)
            service.metrics.incr("fuzz_shrink_evaluations", shrunk.evaluations)
            failure = FuzzFailure(
                seed=seed,
                index=index,
                checks=tuple(summary["checks"]),
                violations=tuple(summary["violations"]),
                case=case.to_dict(),
                shrunk=shrunk.case.to_dict(),
                shrink_steps=shrunk.steps,
                shrink_evaluations=shrunk.evaluations,
            )
        report.failures.append(failure)
    return report
