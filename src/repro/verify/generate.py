"""Seeded random generation of valid designer inputs.

The fuzz harness needs arbitrary-but-valid :class:`~repro.core.commgraph.
CommGraph` / :class:`~repro.sim.systems.SystemParams` instances, far
outside the four paper applications. :func:`generate_case` draws one
:class:`GeneratedCase` from a :class:`FuzzSpec` deterministically: the
same ``(spec, seed, index)`` triple always produces byte-identical
inputs, on any platform, so a failing case is reproducible from the
three numbers printed in the fuzz report.

Two generation rules keep downstream metamorphic checks sound:

* **distinct edge weights** — ``edges_by_weight`` and the sharing scan
  break ties by name, so equal-weight edges would make kernel-relabeling
  permutation invariance genuinely false; the generator nudges duplicate
  draws until every kernel-to-kernel byte count is unique;
* **distinct computation times** — the duplication loop visits kernels
  by descending ``τ`` with name tie-breaks, so ``τ`` values are made
  unique for the same reason.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from ..core.commgraph import CommGraph
from ..core.designer import DesignConfig
from ..core.kernel import KernelSpec
from ..errors import ConfigurationError
from ..hw.resources import ResourceCost
from ..io import FORMAT_VERSION, graph_from_dict, graph_to_dict, validate_document
from ..sim.systems import SystemParams

#: Document kind stamped into serialized fuzz cases.
CASE_KIND = "fuzz-case"

#: Byte-volume distribution names accepted by :class:`FuzzSpec`.
VOLUME_DISTRIBUTIONS = ("uniform", "log_uniform", "heavy_tail")


@dataclass(frozen=True)
class FuzzSpec:
    """Parameters of the random input space.

    The defaults cover the regime the paper operates in (2–8 kernels,
    mixed host/kernel traffic, occasional streaming/parallel kernels)
    while still reaching degenerate corners: edge-free graphs, host-free
    kernels, single-kernel apps, torus NoCs.
    """

    min_kernels: int = 2
    max_kernels: int = 8
    #: Probability of each ordered kernel pair carrying traffic.
    edge_density: float = 0.3
    #: Probability of a kernel having host input (and, independently,
    #: host output).
    host_traffic_probability: float = 0.65
    #: Shape of the byte-volume draw (kernel edges and host flows):
    #: ``uniform``, ``log_uniform`` (the QUAD profiles' regime), or
    #: ``heavy_tail`` (a few dominant flows).
    volume_distribution: str = "log_uniform"
    max_edge_bytes: int = 262_144
    max_host_bytes: int = 131_072
    #: Probability of each streaming capability flag per kernel.
    streaming_probability: float = 0.4
    #: Probability of a kernel being parallelizable (duplication-eligible).
    parallel_probability: float = 0.4
    #: Also randomize the hardware :class:`SystemParams` per case.
    fuzz_system_params: bool = True
    #: Probability of designing for a torus instead of a mesh NoC.
    torus_probability: float = 0.25

    def __post_init__(self) -> None:
        if not 1 <= self.min_kernels <= self.max_kernels:
            raise ConfigurationError(
                f"kernel range [{self.min_kernels}, {self.max_kernels}] invalid"
            )
        for name in ("edge_density", "host_traffic_probability",
                     "streaming_probability", "parallel_probability",
                     "torus_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.volume_distribution not in VOLUME_DISTRIBUTIONS:
            raise ConfigurationError(
                f"unknown volume distribution {self.volume_distribution!r} "
                f"(have: {VOLUME_DISTRIBUTIONS})"
            )
        if self.max_edge_bytes < 1 or self.max_host_bytes < 1:
            raise ConfigurationError("byte-volume maxima must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FuzzSpec":
        return cls(**dict(data))


@dataclass(frozen=True)
class GeneratedCase:
    """One complete, valid designer + simulator input."""

    seed: int
    index: int
    graph: CommGraph
    params: SystemParams
    stream_overhead_s: float
    noc_topology: str = "mesh"
    max_duplications: int = 1

    def config(self) -> DesignConfig:
        """The design configuration this case is evaluated under."""
        return DesignConfig(
            theta_s_per_byte=self.params.theta_s_per_byte(),
            stream_overhead_s=self.stream_overhead_s,
            noc_topology=self.noc_topology,
            max_duplications=self.max_duplications,
        )

    def label(self) -> str:
        """Short human identity (report rows, metrics labels)."""
        return f"fuzz[{self.seed}:{self.index}]"

    # -- serialization (reports, reproduction) -----------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": CASE_KIND,
            "version": FORMAT_VERSION,
            "seed": self.seed,
            "index": self.index,
            "graph": graph_to_dict(self.graph),
            "params": dataclasses.asdict(self.params),
            "stream_overhead_s": self.stream_overhead_s,
            "noc_topology": self.noc_topology,
            "max_duplications": self.max_duplications,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GeneratedCase":
        validate_document(dict(data), CASE_KIND)
        return cls(
            seed=data["seed"],
            index=data["index"],
            graph=graph_from_dict(data["graph"]),
            params=SystemParams(**data["params"]),
            stream_overhead_s=data["stream_overhead_s"],
            noc_topology=data["noc_topology"],
            max_duplications=data["max_duplications"],
        )


def case_rng(seed: int, index: int) -> random.Random:
    """The deterministic RNG of one case.

    Seeding from a string routes through ``random.seed(version=2)``,
    which hashes the bytes with SHA-512 — stable across processes,
    platforms, and ``PYTHONHASHSEED``.
    """
    return random.Random(f"repro-fuzz:{seed}:{index}")


def _draw_bytes(rng: random.Random, spec: FuzzSpec, upper: int) -> int:
    """One byte volume under the spec's distribution, in ``[1, upper]``."""
    if spec.volume_distribution == "uniform":
        return rng.randint(1, upper)
    if spec.volume_distribution == "log_uniform":
        exp = rng.uniform(0.0, 1.0)
        return max(1, min(upper, int(upper ** exp)))
    # heavy_tail: most flows tiny, a few near the cap.
    u = rng.uniform(0.0, 1.0)
    value = int(16 * (1.0 / max(1e-9, 1.0 - u)) ** 1.2)
    return max(1, min(upper, value))


def _unique(value: int, taken: set, upper: int) -> int:
    """Nudge ``value`` until unused (ties would break tie-break-by-name
    determinism arguments; see module docstring)."""
    while value in taken:
        value = value + 1 if value < upper else 1
    taken.add(value)
    return value


def _draw_params(rng: random.Random) -> SystemParams:
    """A random, valid hardware parameter set."""
    return SystemParams(
        bus_width_bytes=rng.choice((4, 8, 16)),
        bus_arbitration_cycles=rng.randint(1, 8),
        bus_address_cycles=rng.randint(1, 4),
        bus_burst_bytes=rng.choice((256, 512, 1024, 2048, 4096)),
        dma_setup_cycles=rng.randint(10, 120),
        noc_link_width_bytes=rng.choice((2, 4, 8)),
        noc_hop_latency_cycles=rng.randint(1, 6),
        noc_max_packet_bytes=rng.choice((1024, 4096, 8192)),
    )


def generate_case(spec: FuzzSpec, seed: int, index: int) -> GeneratedCase:
    """Draw case number ``index`` of campaign ``seed`` under ``spec``."""
    rng = case_rng(seed, index)
    n = rng.randint(spec.min_kernels, spec.max_kernels)
    names = [f"k{i}" for i in range(n)]

    taus: set = set()
    kernels: Dict[str, KernelSpec] = {}
    for name in names:
        tau = _unique(rng.randint(2_000, 400_000), taus, 10**9)
        kernels[name] = KernelSpec(
            name=name,
            tau_cycles=tau,
            sw_cycles=rng.randint(20_000, 4_000_000),
            parallelizable=rng.random() < spec.parallel_probability,
            streams_host_io=rng.random() < spec.streaming_probability,
            streams_kernel_input=rng.random() < spec.streaming_probability,
            resources=ResourceCost(rng.randint(200, 4000), rng.randint(200, 4000)),
            local_memory_bytes=rng.choice((0, 1024, 4096, 16384)),
        )

    volumes: set = set()
    kk: Dict[Tuple[str, str], int] = {}
    for p in names:
        for c in names:
            if p != c and rng.random() < spec.edge_density:
                raw = _draw_bytes(rng, spec, spec.max_edge_bytes)
                kk[(p, c)] = _unique(raw, volumes, spec.max_edge_bytes + n * n)

    host_in: Dict[str, int] = {}
    host_out: Dict[str, int] = {}
    for name in names:
        if rng.random() < spec.host_traffic_probability:
            host_in[name] = _draw_bytes(rng, spec, spec.max_host_bytes)
        if rng.random() < spec.host_traffic_probability:
            host_out[name] = _draw_bytes(rng, spec, spec.max_host_bytes)

    # A completely traffic-free application is not a design problem at
    # all (and Eq. 2 degenerates); give the first kernel one host input.
    if not kk and not host_in and not host_out:
        host_in[names[0]] = _draw_bytes(rng, spec, spec.max_host_bytes)

    graph = CommGraph(
        kernels=kernels, kk_edges=kk, host_in=host_in, host_out=host_out
    )
    params = _draw_params(rng) if spec.fuzz_system_params else SystemParams()
    return GeneratedCase(
        seed=seed,
        index=index,
        graph=graph,
        params=params,
        stream_overhead_s=rng.uniform(5e-7, 2e-5),
        noc_topology="torus" if rng.random() < spec.torus_probability else "mesh",
        max_duplications=rng.choice((0, 1, 1, 2)),
    )
