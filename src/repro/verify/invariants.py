"""Algorithm 1 postcondition checker.

:func:`check_plan` re-derives every structural obligation of the design
algorithm *independently* — directly from the graph arithmetic and the
paper's formulas, never by calling the production helper that made the
decision (e.g. the sharing precondition is recomputed from ``D^K`` sums
rather than through :func:`repro.core.sharing.is_exclusive_pair`). A bug
planted in a production predicate therefore cannot hide itself from the
checker; the mutation sanity test in ``tests/test_verify.py`` relies on
exactly this separation.

Checks, by name (see DESIGN.md §9):

``sharing_precondition``
    every applied pairing satisfies ``D^K_i(out) = D^K_j(in) = D_ij``,
    uses the crossbar iff the consumer has host traffic, and no kernel
    appears in two pairs;
``duplication_postcondition``
    duplication only when ``Δ_dp = τ/2 − O > 0`` on a parallelizable
    kernel, within the budget, copies present / original absent, traffic
    and ``Σ τ`` conserved, committed resources within the device cap;
``classification``
    Table I consistency — ``{R,S}`` classes recomputed on the residual
    graph match the plan, ``{K,M}`` matches ``adaptive_map``, and the
    infeasible ``{K1,M2}`` cell never appears;
``edge_coverage``
    shared-memory and NoC edges partition the post-duplication kernel
    edges exactly (none dropped, none carried twice);
``placement``
    NoC nodes are the ``K2``/``M2|M3`` entities, mesh dimensions are the
    smallest near-square, topology matches the config, and every NoC
    edge's hop distance respects the topology's diameter;
``provenance``
    the decision log tells the same story as the plan — applied
    sharing/duplication/pipeline/classify/placement events match the
    plan's structures one-for-one, with strictly increasing ``seq``;
``pipeline_postcondition``
    applied pipelining has positive ``Δ``, the advertised streaming
    capability, and (case 2) rides only on kept edges;
``analytic_sanity``
    the model's proposed times never exceed the baseline, communication
    is non-negative, computation at least half the baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

from ..core.analytic import AnalyticModel
from ..core.commgraph import CommGraph
from ..core.designer import DesignConfig
from ..core.duplication import DUP_SUFFIXES, delta_dp_seconds
from ..core.mapping import INFEASIBLE, adaptive_map
from ..core.parallel import PipelineCase, delta_p1_seconds, delta_p2_seconds
from ..core.placement import mesh_dimensions
from ..core.plan import InterconnectPlan, memory_node
from ..core.sharing import residual_graph
from ..core.topology import classify_receive, classify_send
from ..hw.resources import ComponentKind, component_cost
from ..hw.synthesis import PLATFORM_BASE
from ..obs import provenance as prov

#: Relative tolerance for comparing recomputed Δ values to recorded ones.
REL_TOL = 1e-9


@dataclass(frozen=True)
class Violation:
    """One failed postcondition."""

    check: str
    subject: str
    message: str

    def as_dict(self) -> Dict[str, Any]:
        return {"check": self.check, "subject": self.subject,
                "message": self.message}

    def __str__(self) -> str:
        return f"[{self.check}] {self.subject}: {self.message}"


class _Collector:
    def __init__(self) -> None:
        self.violations: List[Violation] = []

    def fail(self, check: str, subject: str, message: str) -> None:
        self.violations.append(Violation(check, subject, message))

    def ensure(self, ok: bool, check: str, subject: str, message: str) -> None:
        if not ok:
            self.fail(check, subject, message)


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=1e-15)


# -- individual check groups -------------------------------------------------

def _check_sharing(c: _Collector, plan: InterconnectPlan) -> None:
    graph = plan.graph
    seen: Set[str] = set()
    for link in plan.sharing:
        subject = f"{link.producer}->{link.consumer}"
        d_ij = graph.edge_bytes(link.producer, link.consumer)
        c.ensure(
            d_ij > 0, "sharing_precondition", subject,
            "shared edge does not exist in the designed graph",
        )
        c.ensure(
            link.bytes == d_ij, "sharing_precondition", subject,
            f"link records {link.bytes}B but the graph carries {d_ij}B",
        )
        # The paper's condition, recomputed from first principles:
        # D^K_i(out) = D^K_j(in) = D_ij.
        d_out = graph.d_k_out(link.producer)
        d_in = graph.d_k_in(link.consumer)
        c.ensure(
            d_out == d_ij and d_in == d_ij,
            "sharing_precondition", subject,
            f"pair is not exclusive: D^K_out({link.producer})={d_out}B, "
            f"D^K_in({link.consumer})={d_in}B, D_ij={d_ij}B",
        )
        host = graph.d_h_in(link.consumer) + graph.d_h_out(link.consumer)
        c.ensure(
            link.crossbar == (host > 0), "sharing_precondition", subject,
            f"crossbar={link.crossbar} but consumer host traffic is {host}B",
        )
        for k in (link.producer, link.consumer):
            c.ensure(
                k not in seen, "sharing_precondition", subject,
                f"kernel {k!r} participates in more than one sharing pair",
            )
            seen.add(k)


def _check_duplication(
    c: _Collector,
    original: CommGraph,
    config: DesignConfig,
    plan: InterconnectPlan,
) -> None:
    applied = [d for d in plan.duplications if d.applied]
    c.ensure(
        len(applied) <= config.max_duplications,
        "duplication_postcondition", plan.app,
        f"{len(applied)} duplications applied, budget {config.max_duplications}",
    )
    if plan.duplications and not config.enable_duplication:
        c.fail(
            "duplication_postcondition", plan.app,
            "duplication decisions recorded while the stage was disabled",
        )
    cost = PLATFORM_BASE + component_cost(ComponentKind.BUS)
    for name in original.kernel_names():
        cost = cost + original.kernel(name).resources
    for d in plan.duplications:
        spec = original.kernel(d.kernel)
        expected = delta_dp_seconds(spec.tau_cycles, config.stream_overhead_s)
        c.ensure(
            _close(d.delta_dp_seconds, expected),
            "duplication_postcondition", d.kernel,
            f"recorded Δ_dp={d.delta_dp_seconds!r} but τ/2−O gives {expected!r}",
        )
        if not d.applied:
            continue
        c.ensure(
            spec.parallelizable, "duplication_postcondition", d.kernel,
            "duplicated a kernel that is not parallelizable",
        )
        c.ensure(
            expected > 0, "duplication_postcondition", d.kernel,
            f"duplicated with non-positive Δ_dp={expected!r}",
        )
        names = set(plan.graph.kernel_names())
        copies = [f"{d.kernel}{sfx}" for sfx in DUP_SUFFIXES]
        c.ensure(
            d.kernel not in names and all(cp in names for cp in copies),
            "duplication_postcondition", d.kernel,
            f"expected copies {copies} to replace {d.kernel!r} in the plan graph",
        )
        cost = cost + spec.resources
    c.ensure(
        config.device.fits(cost, config.utilization_cap),
        "duplication_postcondition", plan.app,
        f"committed cost {cost.luts} LUTs / {cost.regs} regs exceeds "
        f"{config.utilization_cap:.0%} of {config.device.name}",
    )
    # Duplication must conserve both computation and traffic exactly.
    tau_orig = sum(original.kernel(k).tau_cycles for k in original.kernel_names())
    tau_plan = sum(
        plan.graph.kernel(k).tau_cycles for k in plan.graph.kernel_names()
    )
    c.ensure(
        _close(tau_orig, tau_plan), "duplication_postcondition", plan.app,
        f"Σ τ changed: {tau_orig} -> {tau_plan} cycles",
    )
    c.ensure(
        original.total_kernel_traffic() == plan.graph.total_kernel_traffic(),
        "duplication_postcondition", plan.app,
        f"traffic changed: {original.total_kernel_traffic()}B -> "
        f"{plan.graph.total_kernel_traffic()}B",
    )


def _check_classification(
    c: _Collector, config: DesignConfig, plan: InterconnectPlan,
    residual: CommGraph,
) -> None:
    names = set(plan.graph.kernel_names())
    c.ensure(
        set(plan.mappings) == names, "classification", plan.app,
        "mappings do not cover exactly the plan's kernels",
    )
    for name, m in plan.mappings.items():
        receive = classify_receive(residual, name)
        send = classify_send(residual, name)
        c.ensure(
            m.receive is receive and m.send is send,
            "classification", name,
            f"classes {{{m.receive.name},{m.send.name}}} but the residual "
            f"graph gives {{{receive.name},{send.name}}}",
        )
        attach = (m.attach_kernel, m.attach_memory)
        c.ensure(
            attach != INFEASIBLE, "classification", name,
            "infeasible {K1,M2} attachment",
        )
        if config.enable_noc and config.enable_adaptive_mapping:
            expected = adaptive_map(receive, send)
            c.ensure(
                attach == expected, "classification", name,
                f"Table I gives {{{expected[0].name},{expected[1].name}}}, "
                f"plan has {{{attach[0].name},{attach[1].name}}}",
            )


def _check_edges_and_placement(
    c: _Collector, config: DesignConfig, plan: InterconnectPlan,
) -> None:
    sm = {(l.producer, l.consumer) for l in plan.sharing}
    noc = {(p, co) for p, co, _ in plan.noc.edges} if plan.noc else set()
    overlap = sm & noc
    c.ensure(
        not overlap, "edge_coverage", plan.app,
        f"edges carried by both SM and NoC: {sorted(overlap)}",
    )
    if config.enable_noc:
        missing = set(plan.graph.kk_edges) - sm - noc
        c.ensure(
            not missing, "edge_coverage", plan.app,
            f"kernel edges on neither SM nor NoC: {sorted(missing)}",
        )
    phantom = (sm | noc) - set(plan.graph.kk_edges)
    c.ensure(
        not phantom, "edge_coverage", plan.app,
        f"interconnect carries edges absent from the graph: {sorted(phantom)}",
    )
    if plan.noc is None:
        return
    for p, co, b in plan.noc.edges:
        c.ensure(
            plan.graph.edge_bytes(p, co) == b, "edge_coverage", f"{p}->{co}",
            f"NoC records {b}B, graph carries {plan.graph.edge_bytes(p, co)}B",
        )
    expected_kernels = tuple(
        m.kernel for m in plan.mappings.values() if m.on_noc
    )
    expected_memories = tuple(
        m.kernel for m in plan.mappings.values() if m.memory_on_noc
    )
    c.ensure(
        set(plan.noc.kernel_nodes) == set(expected_kernels)
        and set(plan.noc.memory_nodes) == set(expected_memories),
        "placement", plan.app,
        "NoC attachment lists disagree with the kernel mappings",
    )
    placement = plan.noc.placement
    nodes = set(plan.noc.kernel_nodes) | {
        memory_node(k) for k in plan.noc.memory_nodes
    }
    c.ensure(
        set(placement.positions) == nodes, "placement", plan.app,
        "placed nodes differ from the NoC's attached entities",
    )
    width, height = mesh_dimensions(len(nodes)) if nodes else (0, 0)
    c.ensure(
        (placement.width, placement.height) == (width, height),
        "placement", plan.app,
        f"mesh is {placement.width}x{placement.height}, smallest "
        f"near-square is {width}x{height}",
    )
    c.ensure(
        placement.torus == (config.noc_topology == "torus"),
        "placement", plan.app,
        f"placement torus={placement.torus}, config topology "
        f"{config.noc_topology!r}",
    )
    if placement.torus:
        diameter = placement.width // 2 + placement.height // 2
    else:
        diameter = (placement.width - 1) + (placement.height - 1)
    for p, co, _b in plan.noc.edges:
        hops = placement.distance(p, memory_node(co))
        c.ensure(
            hops <= diameter, "placement", f"{p}->{co}",
            f"route is {hops} hops, topology diameter is {diameter}",
        )


def _check_pipeline(
    c: _Collector, config: DesignConfig, plan: InterconnectPlan,
) -> None:
    kept = set(plan.kept_edges())
    if plan.pipeline and not config.enable_pipelining:
        c.fail(
            "pipeline_postcondition", plan.app,
            "pipeline decisions recorded while the stage was disabled",
        )
    for d in plan.pipeline:
        subject = f"{d.kernel}->{d.consumer}" if d.consumer else d.kernel
        if d.case is PipelineCase.HOST_STREAM:
            spec = plan.graph.kernel(d.kernel)
            expected = delta_p1_seconds(
                plan.graph.d_h_in(d.kernel),
                plan.graph.d_h_out(d.kernel),
                spec.tau_cycles,
                config.theta_s_per_byte,
                config.stream_overhead_s,
            )
            c.ensure(
                _close(d.delta_seconds, expected),
                "pipeline_postcondition", subject,
                f"recorded Δ_p1={d.delta_seconds!r}, formula gives {expected!r}",
            )
            if d.applied:
                c.ensure(
                    spec.streams_host_io and expected > 0,
                    "pipeline_postcondition", subject,
                    "applied case 1 without streaming capability or with "
                    f"Δ_p1={expected!r} <= 0",
                )
        else:
            assert d.consumer is not None
            expected = delta_p2_seconds(
                plan.graph.kernel(d.kernel).tau_cycles,
                plan.graph.kernel(d.consumer).tau_cycles,
                config.stream_overhead_s,
            )
            c.ensure(
                _close(d.delta_seconds, expected),
                "pipeline_postcondition", subject,
                f"recorded Δ_p2={d.delta_seconds!r}, formula gives {expected!r}",
            )
            c.ensure(
                (d.kernel, d.consumer) in kept,
                "pipeline_postcondition", subject,
                "case 2 evaluated on an edge the interconnect does not keep",
            )
            if d.applied:
                c.ensure(
                    plan.graph.kernel(d.consumer).streams_kernel_input
                    and expected > 0,
                    "pipeline_postcondition", subject,
                    "applied case 2 without consumer streaming or with "
                    f"Δ_p2={expected!r} <= 0",
                )


def _check_provenance(c: _Collector, plan: InterconnectPlan) -> None:
    events = plan.provenance
    if not events:
        c.fail("provenance", plan.app, "plan carries no provenance events")
        return
    for i, e in enumerate(events):
        c.ensure(
            e.seq == i, "provenance", f"seq:{e.seq}",
            f"event sequence numbers not contiguous at position {i}",
        )
    c.ensure(
        events[0].stage == prov.STAGE_CONFIG, "provenance", plan.app,
        f"first event is {events[0].stage!r}, expected config",
    )

    def applied(stage: str) -> List[Any]:
        return [e for e in events if e.stage == stage and e.outcome == "applied"]

    # Sharing events mirror the applied links one-for-one, in order.
    sharing_events = applied(prov.STAGE_SHARING)
    expected_sharing = [f"{l.producer}->{l.consumer}" for l in plan.sharing]
    c.ensure(
        [e.subject for e in sharing_events] == expected_sharing,
        "provenance", plan.app,
        f"applied sharing events {[e.subject for e in sharing_events]} != "
        f"plan links {expected_sharing}",
    )
    for e, link in zip(sharing_events, plan.sharing):
        d = e.detail_map
        c.ensure(
            d.get("bytes") == link.bytes and d.get("crossbar") == link.crossbar,
            "provenance", e.subject,
            "sharing event detail disagrees with the applied link",
        )

    dup_events = applied(prov.STAGE_DUPLICATION)
    expected_dups = [d.kernel for d in plan.duplications if d.applied]
    c.ensure(
        [e.subject for e in dup_events] == expected_dups,
        "provenance", plan.app,
        f"applied duplication events {[e.subject for e in dup_events]} != "
        f"plan decisions {expected_dups}",
    )

    classify = {
        e.subject: e for e in events if e.stage == prov.STAGE_CLASSIFY
    }
    c.ensure(
        set(classify) == set(plan.mappings), "provenance", plan.app,
        "classify events do not cover exactly the mapped kernels",
    )
    for name, m in plan.mappings.items():
        e = classify.get(name)
        if e is None:
            continue
        want = f"{m.attach_kernel.name},{m.attach_memory.name}"
        c.ensure(
            e.outcome == want, "provenance", name,
            f"classify event says {e.outcome!r}, plan maps to {want!r}",
        )

    placed = {
        e.subject: e.detail_map
        for e in events
        if e.stage == prov.STAGE_PLACEMENT and e.outcome == "placed"
    }
    if plan.noc is not None:
        positions = dict(plan.noc.placement.positions)
        c.ensure(
            set(placed) == set(positions), "provenance", plan.app,
            "placement events do not cover exactly the placed nodes",
        )
        for node, (x, y) in positions.items():
            d = placed.get(node)
            if d is not None:
                c.ensure(
                    (d.get("x"), d.get("y")) == (x, y), "provenance", node,
                    f"placement event says ({d.get('x')},{d.get('y')}), "
                    f"plan places at ({x},{y})",
                )
    else:
        c.ensure(
            not placed, "provenance", plan.app,
            "placement events recorded without a NoC in the plan",
        )

    pipe_events = applied(prov.STAGE_PIPELINE)
    expected_pipe = [
        f"{p.kernel}->{p.consumer}" if p.consumer else p.kernel
        for p in plan.pipeline
        if p.applied
    ]
    c.ensure(
        [e.subject for e in pipe_events] == expected_pipe,
        "provenance", plan.app,
        f"applied pipeline events {[e.subject for e in pipe_events]} != "
        f"plan decisions {expected_pipe}",
    )


def _check_analytic(
    c: _Collector, original: CommGraph, config: DesignConfig,
    plan: InterconnectPlan,
) -> None:
    model = AnalyticModel(original, config.theta_s_per_byte, host_other_s=0.0)
    base = model.baseline()
    prop = model.proposed(plan)
    eps = 1e-12 + REL_TOL * base.kernels_s
    c.ensure(
        prop.kernels_s <= base.kernels_s + eps, "analytic_sanity", plan.app,
        f"proposed {prop.kernels_s!r}s slower than baseline {base.kernels_s!r}s",
    )
    c.ensure(
        prop.communication_s >= 0.0, "analytic_sanity", plan.app,
        f"negative proposed communication {prop.communication_s!r}s",
    )
    c.ensure(
        prop.computation_s >= base.computation_s / 2.0 - eps,
        "analytic_sanity", plan.app,
        f"proposed computation {prop.computation_s!r}s below the "
        f"half-baseline clamp",
    )


# -- entry point -------------------------------------------------------------

def check_plan(
    original: CommGraph,
    config: DesignConfig,
    plan: InterconnectPlan,
) -> List[Violation]:
    """Verify every Algorithm 1 postcondition on a designed plan.

    ``original`` is the *pre-duplication* communication graph the
    designer was invoked with. Returns the (possibly empty) violation
    list rather than raising, so the fuzz harness can aggregate and the
    shrinker can compare failure sets.
    """
    c = _Collector()
    residual = residual_graph(plan.graph, plan.sharing)
    _check_sharing(c, plan)
    _check_duplication(c, original, config, plan)
    _check_classification(c, config, plan, residual)
    _check_edges_and_placement(c, config, plan)
    _check_pipeline(c, config, plan)
    _check_provenance(c, plan)
    _check_analytic(c, original, config, plan)
    return c.violations
