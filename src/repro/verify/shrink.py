"""Greedy minimization of failing fuzz cases.

A raw counterexample from the generator typically has eight kernels,
a dozen edges and randomized hardware parameters — far more than the
bug needs. :func:`shrink_case` repeatedly applies structure-reducing
transformations (drop a kernel, drop an edge, drop host traffic, shrink
byte counts, clear capability flags, reset hardware parameters) and
keeps a candidate only when it is *strictly smaller* and **still fails
at least one of the original checks** — so the minimization never
wanders onto an unrelated failure.

The caller supplies the evaluation function (``case -> set of failing
check names``); the shrinker is oracle-agnostic and deterministic:
transformations are tried in a fixed order, so the same failing case
always minimizes to the same witness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, List, Set, Tuple

from ..core.commgraph import CommGraph
from ..errors import ReproError
from ..hw.resources import ResourceCost
from ..sim.systems import SystemParams
from .generate import GeneratedCase

#: Default cap on candidate evaluations per shrink run.
DEFAULT_BUDGET = 300

Evaluator = Callable[[GeneratedCase], Set[str]]


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one minimization run."""

    case: GeneratedCase
    #: Failing check names of the final (minimal) case.
    failing: Tuple[str, ...]
    #: Human-readable accepted transformation steps, in order.
    steps: Tuple[str, ...]
    #: Candidate evaluations spent (accepted + rejected + invalid).
    evaluations: int


def case_size(case: GeneratedCase) -> Tuple[int, ...]:
    """Lexicographic size of a case — what the shrinker minimizes.

    Structure dominates magnitude: fewer kernels beats fewer edges beats
    less host traffic beats smaller byte counts beats smaller compute
    times beats fewer capability flags beats default hardware.
    """
    g = case.graph
    flags = sum(
        int(s.parallelizable)
        + int(s.streams_host_io)
        + int(s.streams_kernel_input)
        + int(s.local_memory_bytes > 0)
        for s in g.kernels.values()
    )
    nondefault = int(case.params != SystemParams()) + int(
        case.noc_topology != "mesh"
    )
    return (
        len(g.kernels),
        len(g.kk_edges),
        len(g.host_in) + len(g.host_out),
        sum(g.kk_edges.values()) + sum(g.host_in.values()) + sum(g.host_out.values()),
        sum(s.tau_cycles + s.sw_cycles for s in g.kernels.values()),
        flags,
        case.max_duplications,
        nondefault,
    )


def _with_graph(case: GeneratedCase, graph: CommGraph) -> GeneratedCase:
    return replace(case, graph=graph)


def _graph(case, kernels=None, kk=None, host_in=None, host_out=None) -> CommGraph:
    g = case.graph
    return CommGraph(
        kernels=g.kernels if kernels is None else kernels,
        kk_edges=g.kk_edges if kk is None else kk,
        host_in=g.host_in if host_in is None else host_in,
        host_out=g.host_out if host_out is None else host_out,
    )


def _candidates(case: GeneratedCase) -> Iterator[Tuple[str, GeneratedCase]]:
    """All one-step reductions of ``case``, biggest cuts first."""
    g = case.graph
    names = sorted(g.kernel_names())

    if len(names) > 1:
        for name in names:
            keep = [n for n in names if n != name]
            yield (
                f"drop kernel {name}",
                _with_graph(case, g.restricted(keep)),
            )

    for p, c in sorted(g.kk_edges):
        yield f"drop edge {p}->{c}", _with_graph(case, g.without_edge(p, c))

    for name in sorted(g.host_in):
        host_in = {n: b for n, b in g.host_in.items() if n != name}
        yield (
            f"drop host input of {name}",
            _with_graph(case, _graph(case, host_in=host_in)),
        )
    for name in sorted(g.host_out):
        host_out = {n: b for n, b in g.host_out.items() if n != name}
        yield (
            f"drop host output of {name}",
            _with_graph(case, _graph(case, host_out=host_out)),
        )

    for (p, c), b in sorted(g.kk_edges.items()):
        for new, what in ((1, "to 1 byte"), (b // 2, "halved")):
            if 0 < new < b:
                kk = dict(g.kk_edges)
                kk[(p, c)] = new
                yield (
                    f"edge {p}->{c} bytes {what}",
                    _with_graph(case, _graph(case, kk=kk)),
                )
    for attr in ("host_in", "host_out"):
        for name, b in sorted(getattr(g, attr).items()):
            for new, what in ((1, "to 1 byte"), (b // 2, "halved")):
                if 0 < new < b:
                    flows = dict(getattr(g, attr))
                    flows[name] = new
                    yield (
                        f"{attr} of {name} {what}",
                        _with_graph(case, _graph(case, **{attr: flows})),
                    )

    for name in names:
        spec = g.kernel(name)
        if spec.parallelizable or spec.streams_host_io or spec.streams_kernel_input:
            plain = replace(
                spec,
                parallelizable=False,
                streams_host_io=False,
                streams_kernel_input=False,
            )
            kernels = dict(g.kernels)
            kernels[name] = plain
            yield (
                f"clear capability flags of {name}",
                _with_graph(case, _graph(case, kernels=kernels)),
            )
        if spec.local_memory_bytes > 0:
            kernels = dict(g.kernels)
            kernels[name] = replace(spec, local_memory_bytes=0)
            yield (
                f"drop local memory of {name}",
                _with_graph(case, _graph(case, kernels=kernels)),
            )
        if spec.tau_cycles > 1 or spec.sw_cycles > 1:
            kernels = dict(g.kernels)
            kernels[name] = replace(
                spec,
                tau_cycles=max(1, spec.tau_cycles // 2),
                sw_cycles=max(1, spec.sw_cycles // 2),
                resources=ResourceCost(
                    max(1, spec.resources.luts // 2),
                    max(1, spec.resources.regs // 2),
                ),
            )
            yield (
                f"halve compute time of {name}",
                _with_graph(case, _graph(case, kernels=kernels)),
            )

    if case.params != SystemParams():
        yield "reset hardware parameters", replace(case, params=SystemParams())
    if case.noc_topology != "mesh":
        yield "use mesh topology", replace(case, noc_topology="mesh")
    if case.max_duplications > 0:
        yield (
            "disable duplication",
            replace(case, max_duplications=0),
        )


def shrink_case(
    case: GeneratedCase,
    evaluate: Evaluator,
    budget: int = DEFAULT_BUDGET,
) -> ShrinkResult:
    """Minimize ``case`` while it keeps failing one of its checks.

    ``evaluate`` returns the failing check names of a candidate (empty
    set = passes). Candidates whose construction or evaluation raises a
    :class:`~repro.errors.ReproError` are skipped — the shrinker never
    converts a checker failure into a crash.
    """
    target = set(evaluate(case))
    if not target:
        return ShrinkResult(case, (), (), 1)

    current = case
    failing = target
    steps: List[str] = []
    spent = 1
    improved = True
    while improved and spent < budget:
        improved = False
        for what, candidate in _candidates(current):
            if spent >= budget:
                break
            if case_size(candidate) >= case_size(current):
                continue
            try:
                result = set(evaluate(candidate))
            except ReproError:
                spent += 1
                continue
            spent += 1
            if result & target:
                current = candidate
                failing = result & target
                steps.append(what)
                improved = True
                break
    return ShrinkResult(current, tuple(sorted(failing)), tuple(steps), spent)
