"""Differential backend conformance: reference vs fast engine.

The fast event kernel (:mod:`repro.sim.fastcore`) is only admissible
because it is *provably indistinguishable* from the reference engine.
This module is the proof machinery: it runs the same simulation on both
backends and diffs everything observable **byte-exactly** — no
tolerances, no ``isclose``. Field-level float comparisons are by
``repr`` equality (every bit shown), so a one-ULP drift in any
timestamp, makespan, counter, recorded sample, or rendered timeline is
a reported :class:`~repro.verify.invariants.Violation`.

What is compared:

* the full :class:`~repro.sim.systems.SimulatedTimes` (``asdict`` —
  makespans, extras counters, per-kernel spans);
* every :class:`~repro.obs.profile.recorder.TimeseriesRecorder` sample
  stream (activities, occupancy edges, deliveries), in order;
* the :func:`~repro.sim.timeline.timeline_digest` of each run.

Engine-implementation observability (``events_processed`` /
``fused_events`` on the engine object itself) is deliberately *outside*
the contract: the two engines execute different numbers of discrete
events by design — that difference is the optimization, not a bug. It
never leaks into any compared artifact.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Callable, List, Optional, Tuple

from ..core.designer import design_interconnect
from ..core.plan import InterconnectPlan
from ..obs.profile.recorder import TimeseriesRecorder
from ..sim.backend import BACKEND_NAMES, ReproSimBackend
from ..sim.systems import (
    SimulatedTimes,
    simulate_baseline,
    simulate_pipelined_baseline,
    simulate_proposed,
)
from ..sim.timeline import timeline_digest
from .generate import GeneratedCase
from .invariants import Violation

__all__ = [
    "BACKEND_NAMES",
    "ReproSimBackend",
    "backend_conformance_check",
    "conformance_sweep",
    "diff_recordings",
    "diff_simulated_times",
]

#: The systems a conformance pass exercises per case.
_SYSTEMS: Tuple[str, ...] = ("baseline", "pipelined", "proposed")


def diff_simulated_times(
    label: str, ref: SimulatedTimes, fast: SimulatedTimes
) -> List[Violation]:
    """Field-precise byte-exact diff of two simulation results.

    Returns one violation per differing field, naming the exact values
    (``repr``, full precision) so a conformance failure is diagnosable
    from the report alone.
    """
    violations: List[Violation] = []
    ref_d, fast_d = asdict(ref), asdict(fast)
    for key in sorted(set(ref_d) | set(fast_d)):
        a, b = ref_d.get(key), fast_d.get(key)
        # repr-compare: dicts of floats must match bit for bit, and
        # repr makes 0.1+0.2 vs 0.30000000000000004 visible in the
        # message instead of rounding away in str().
        if repr(a) != repr(b):
            violations.append(
                Violation(
                    "backend_results",
                    f"{label}.{key}",
                    f"reference {a!r} != fast {b!r}",
                )
            )
    return violations


def diff_recordings(
    label: str, ref: TimeseriesRecorder, fast: TimeseriesRecorder
) -> List[Violation]:
    """Byte-exact diff of two recorders' sample streams, in order.

    Sample *order* is part of the contract: the recorder is an
    append-only log, so identical streams prove the two engines made
    the same instrumentation calls in the same sequence.
    """
    violations: List[Violation] = []
    streams = (
        ("activities", ref.activities, fast.activities),
        ("occupancy", ref.occupancy_samples, fast.occupancy_samples),
        ("deliveries", ref.deliveries, fast.deliveries),
    )
    for name, a, b in streams:
        if len(a) != len(b):
            violations.append(
                Violation(
                    "backend_profile",
                    f"{label}.{name}",
                    f"reference recorded {len(a)} samples, fast {len(b)}",
                )
            )
            continue
        for i, (sa, sb) in enumerate(zip(a, b)):
            if repr(sa) != repr(sb):
                violations.append(
                    Violation(
                        "backend_profile",
                        f"{label}.{name}[{i}]",
                        f"reference {sa!r} != fast {sb!r}",
                    )
                )
                break  # first divergence per stream is enough to act on
    return violations


def _simulate(
    system: str,
    case: GeneratedCase,
    plan: InterconnectPlan,
    backend: str,
    recorder: Optional[TimeseriesRecorder],
) -> SimulatedTimes:
    if system == "baseline":
        return simulate_baseline(
            case.graph, 0.0, case.params, recorder=recorder, backend=backend
        )
    if system == "pipelined":
        return simulate_pipelined_baseline(
            case.graph, 0.0, case.params, recorder=recorder, backend=backend
        )
    return simulate_proposed(
        plan, 0.0, case.params, recorder=recorder, backend=backend
    )


def backend_conformance_check(
    case: GeneratedCase,
    plan: Optional[InterconnectPlan] = None,
    profile: bool = True,
) -> List[Violation]:
    """Prove one case byte-identical across simulator backends.

    Designs the case (unless a ``plan`` is passed in), then runs the
    baseline, pipelined-baseline, and proposed systems on both the
    reference and fast engines and diffs results, recorder streams
    (when ``profile``), and timeline digests. An empty list is the
    conformance proof for this case; any entry is a counterexample.
    """
    if plan is None:
        plan = design_interconnect(case.label(), case.graph, case.config())
    violations: List[Violation] = []
    for system in _SYSTEMS:
        label = f"{case.label()}.{system}"
        rec_ref = TimeseriesRecorder() if profile else None
        rec_fast = TimeseriesRecorder() if profile else None
        ref = _simulate(
            system, case, plan, ReproSimBackend.REFERENCE.value, rec_ref
        )
        fast = _simulate(
            system, case, plan, ReproSimBackend.FAST.value, rec_fast
        )
        violations.extend(diff_simulated_times(label, ref, fast))
        if rec_ref is not None and rec_fast is not None:
            violations.extend(diff_recordings(label, rec_ref, rec_fast))
        ref_digest = timeline_digest(ref)
        fast_digest = timeline_digest(fast)
        if ref_digest != fast_digest:
            violations.append(
                Violation(
                    "backend_timeline",
                    label,
                    f"timeline digests differ: reference {ref_digest[:16]} "
                    f"!= fast {fast_digest[:16]}",
                )
            )
    return violations


def conformance_sweep(
    cases: List[GeneratedCase],
    profile: bool = True,
    on_case: Optional[Callable[[GeneratedCase, List[Violation]], Any]] = None,
) -> List[Violation]:
    """Run :func:`backend_conformance_check` over a case corpus.

    ``on_case`` (optional) observes each case's violations as they are
    produced — the test suite uses it to attach case labels to failures
    without re-running anything.
    """
    all_violations: List[Violation] = []
    for case in cases:
        found = backend_conformance_check(case, profile=profile)
        if on_case is not None:
            on_case(case, found)
        all_violations.extend(found)
    return all_violations
