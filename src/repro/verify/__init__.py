"""repro.verify — property-based fuzzing and differential verification.

The generative trust layer over Algorithm 1 and the simulator:

* :mod:`~repro.verify.generate` — seeded random, reproducible designer
  inputs (:class:`FuzzSpec`, :func:`generate_case`);
* :mod:`~repro.verify.invariants` — Algorithm 1 postcondition checks on
  any :class:`~repro.core.plan.InterconnectPlan` (:func:`check_plan`);
* :mod:`~repro.verify.oracle` — analytic-vs-simulated differential
  bounds and metamorphic properties;
* :mod:`~repro.verify.conformance` — byte-exact differential proof
  that the fast simulator backend (:mod:`repro.sim.fastcore`) is
  indistinguishable from the reference engine;
* :mod:`~repro.verify.shrink` — greedy counterexample minimization;
* :mod:`~repro.verify.harness` — campaign driver through the service
  layer (:func:`run_fuzz`), behind the ``repro fuzz`` CLI.

See DESIGN.md §9 for the invariants, tolerance derivations, and the
seed-reproduction recipe.
"""

from .conformance import (
    backend_conformance_check,
    conformance_sweep,
    diff_recordings,
    diff_simulated_times,
)
from .generate import FuzzSpec, GeneratedCase, case_rng, generate_case
from .harness import (
    STATIC_ANALYSIS,
    FuzzFailure,
    FuzzJob,
    FuzzReport,
    analyzer_check,
    evaluate_case,
    failing_checks,
    run_fuzz,
    run_fuzz_job,
)
from .invariants import Violation, check_plan
from .oracle import (
    check_host_only_degeneration,
    check_permutation_invariance,
    check_scale_invariance,
    differential_check,
    metamorphic_checks,
)
from .shrink import ShrinkResult, case_size, shrink_case

__all__ = [
    "FuzzFailure",
    "FuzzJob",
    "FuzzReport",
    "FuzzSpec",
    "GeneratedCase",
    "STATIC_ANALYSIS",
    "ShrinkResult",
    "Violation",
    "analyzer_check",
    "backend_conformance_check",
    "case_rng",
    "case_size",
    "check_host_only_degeneration",
    "conformance_sweep",
    "diff_recordings",
    "diff_simulated_times",
    "check_permutation_invariance",
    "check_plan",
    "check_scale_invariance",
    "differential_check",
    "evaluate_case",
    "failing_checks",
    "generate_case",
    "metamorphic_checks",
    "run_fuzz",
    "run_fuzz_job",
    "shrink_case",
]
