"""Differential oracle: analytic model vs the discrete-event simulator.

For every generated case the oracle runs the designed system through
both performance models and checks their agreement against *derived*
tolerances — each bound is computed from the case's own hardware
parameters and the timing model's structure, never a magic constant
(DESIGN.md §9 states each bound's derivation):

``baseline_sim_exact``
    the baseline simulator is strictly sequential, so its makespan must
    equal the closed-form replica ``Σ_k [dma(D_in) + τ + dma(D_out)]``
    to floating-point precision;
``baseline_differential``
    analytic Eq. 2 charges ``θ`` per byte with per-transaction overhead
    amortized over a *typical* burst; the simulator charges real bursts
    and DMA setup. Per transfer the divergence is bounded by one bus
    cycle below (remainder-burst amortization) and by
    ``setup + (arb + addr + 2)·bus_cycle`` above;
``conservation``
    exact byte accounting — the baseline bus moves exactly
    ``Σ (D_in + D_out)``; the proposed bus moves exactly the host
    traffic plus two trips per relay edge; the NoC delivers exactly its
    residual edges' bytes;
``proposed_activity_bound``
    a DES makespan cannot exceed the sum of all activity durations
    (every wait in the process network is a wait *for* another listed
    activity), so the proposed makespan is bounded by
    ``Σ τ + Σ host DMA + Σ relay DMA + Σ NoC sends`` with streamed
    transfers counted at their split-overhead worst case;
``proposed_bounds``
    the proposed makespan is at least the longest single computation
    and at least the bus busy time (one bus, one timeline);
``proposed_vs_baseline``
    the designed system does not regress the baseline beyond the
    explainable slack: 10 % scheduling margin plus, per NoC edge, the
    amount by which an under-provisioned NoC is genuinely slower than
    the two bus trips the baseline used.

Metamorphic checks (:func:`metamorphic_checks`) re-design transformed
inputs and compare structures: byte-count scale invariance (duplication
disabled — integer halving of odd byte counts breaks exact scaling),
kernel-relabeling permutation invariance, and host-only degeneration to
the pure bus baseline.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple

from ..core.analytic import AnalyticModel
from ..core.commgraph import CommGraph
from ..core.designer import design_interconnect
from ..core.plan import InterconnectPlan, memory_node
from ..sim.bus import DEFAULT_BUS_CLOCK
from ..sim.noc.adapter import AdapterParams
from ..sim.noc.mesh import DEFAULT_NOC_CLOCK
from ..sim.systems import (
    SimulatedTimes,
    SystemParams,
    simulate_baseline,
    simulate_proposed,
)
from ..units import HOST_CLOCK
from .generate import GeneratedCase
from .invariants import Violation

#: Relative slack on every derived bound (floating-point headroom).
REL_EPS = 1e-9
#: Scheduling margin for the proposed-vs-baseline comparison.
BASELINE_MARGIN = 0.10
#: Byte multiplier used by the scale-invariance metamorphic check.
SCALE_FACTOR = 3


class _Collector:
    def __init__(self) -> None:
        self.violations: List[Violation] = []

    def ensure(self, ok: bool, check: str, subject: str, message: str) -> None:
        if not ok:
            self.violations.append(Violation(check, subject, message))


# -- closed-form replicas of the simulator's timing ---------------------------

def bus_transfer_s(nbytes: int, params: SystemParams) -> float:
    """Uncontended bus occupancy of one transfer, burst-exact."""
    total_cycles = 0
    remaining = int(nbytes)
    while remaining > 0:
        burst = min(remaining, params.bus_burst_bytes)
        total_cycles += (
            params.bus_arbitration_cycles
            + params.bus_address_cycles
            + math.ceil(burst / params.bus_width_bytes)
        )
        remaining -= burst
    return DEFAULT_BUS_CLOCK.cycles_to_seconds(total_cycles)


def dma_transfer_s(nbytes: int, params: SystemParams) -> float:
    """DMA setup + bus time of one transfer (0 for empty transfers)."""
    if nbytes <= 0:
        return 0.0
    return (
        HOST_CLOCK.cycles_to_seconds(params.dma_setup_cycles)
        + bus_transfer_s(nbytes, params)
    )


def _dma_split_upper_s(nbytes: int, params: SystemParams) -> float:
    """Upper bound on a possibly-streamed host transfer (two halves)."""
    if nbytes <= 0:
        return 0.0
    h1, h2 = nbytes // 2, nbytes - nbytes // 2
    return dma_transfer_s(h1, params) + dma_transfer_s(h2, params)


def noc_send_upper_s(nbytes: int, hops: int, params: SystemParams) -> float:
    """Upper bound on one store-and-forward NoC send of ``nbytes``.

    Every packet pays each hop's latency plus its serialization time;
    injection/ejection adapter latency once per send.
    """
    if nbytes <= 0:
        return 0.0
    adapters = AdapterParams()
    cycles = adapters.kernel_inject_cycles + adapters.memory_eject_cycles
    remaining = int(nbytes)
    while remaining > 0:
        chunk = min(remaining, params.noc_max_packet_bytes)
        cycles += hops * (
            params.noc_hop_latency_cycles
            + math.ceil(chunk / params.noc_link_width_bytes)
        )
        remaining -= chunk
    return DEFAULT_NOC_CLOCK.cycles_to_seconds(cycles)


def _noc_split_upper_s(nbytes: int, hops: int, params: SystemParams) -> float:
    """NoC send bound covering the case-2 streamed (two-send) variant."""
    h1, h2 = nbytes // 2, nbytes - nbytes // 2
    return (
        noc_send_upper_s(h1, hops, params)
        + noc_send_upper_s(h2, hops, params)
    )


def _edge_kinds(
    plan: InterconnectPlan,
) -> Tuple[Set[Tuple[str, str]], Set[Tuple[str, str]], Set[Tuple[str, str]]]:
    """The proposed system's (sm, noc, relay) edge partition."""
    sm = {(l.producer, l.consumer) for l in plan.sharing}
    noc = (
        {(p, c) for p, c, _ in plan.noc.edges}
        if plan.noc is not None
        else set()
    )
    relay = {e for e in plan.graph.kk_edges if e not in sm and e not in noc}
    return sm, noc, relay


def _noc_hops(plan: InterconnectPlan, p: str, c: str) -> int:
    assert plan.noc is not None
    return plan.noc.placement.distance(p, memory_node(c))


# -- the differential oracle --------------------------------------------------

def differential_check(
    case: GeneratedCase,
    plan: InterconnectPlan,
    sim_base: Optional[SimulatedTimes] = None,
    sim_prop: Optional[SimulatedTimes] = None,
) -> List[Violation]:
    """Run both models over one designed case and flag disagreement.

    ``sim_base``/``sim_prop`` can be passed in when the caller already
    simulated (the harness reuses its runs); otherwise they are produced
    here.
    """
    c = _Collector()
    graph, params = case.graph, case.params
    if sim_base is None:
        sim_base = simulate_baseline(graph, 0.0, params)
    if sim_prop is None:
        sim_prop = simulate_proposed(plan, 0.0, params)
    model = AnalyticModel(graph, params.theta_s_per_byte(), host_other_s=0.0)
    an_base = model.baseline()

    # 1. The sequential baseline equals its closed form exactly.
    exact = sum(
        dma_transfer_s(graph.d_in(k), params)
        + graph.kernel(k).tau_seconds
        + dma_transfer_s(graph.d_out(k), params)
        for k in graph.kernel_names()
    )
    c.ensure(
        math.isclose(sim_base.kernels_s, exact, rel_tol=REL_EPS, abs_tol=1e-12),
        "baseline_sim_exact", case.label(),
        f"simulated baseline {sim_base.kernels_s!r}s != closed form {exact!r}s",
    )

    # 2. Analytic Eq. 2 vs the simulator, within the derived envelope.
    transfers = [graph.d_in(k) for k in graph.kernel_names()] + [
        graph.d_out(k) for k in graph.kernel_names()
    ]
    transfers = [t for t in transfers if t > 0]
    bus_cycle = DEFAULT_BUS_CLOCK.period_s
    setup_s = HOST_CLOCK.cycles_to_seconds(params.dma_setup_cycles)
    per_txn = (
        params.bus_arbitration_cycles + params.bus_address_cycles + 2
    ) * bus_cycle
    upper = len(transfers) * (setup_s + per_txn)
    lower = -len(transfers) * bus_cycle
    diff = sim_base.kernels_s - an_base.kernels_s
    eps = 1e-12 + REL_EPS * an_base.kernels_s
    c.ensure(
        lower - eps <= diff <= upper + eps,
        "baseline_differential", case.label(),
        f"sim - analytic = {diff!r}s outside [{lower!r}, {upper!r}]s "
        f"({len(transfers)} transfers)",
    )

    # 3. Exact byte conservation on every interconnect.
    c.ensure(
        int(sim_base.extras["bus_bytes"]) == graph.total_kernel_traffic(),
        "conservation", case.label(),
        f"baseline bus moved {int(sim_base.extras['bus_bytes'])}B, graph "
        f"total is {graph.total_kernel_traffic()}B",
    )
    pg = plan.graph
    _sm, noc_edges, relay = _edge_kinds(plan)
    host_bytes = sum(pg.host_in.values()) + sum(pg.host_out.values())
    relay_bytes = sum(pg.kk_edges[e] for e in relay)
    expect_bus = host_bytes + 2 * relay_bytes
    c.ensure(
        int(sim_prop.extras["bus_bytes"]) == expect_bus,
        "conservation", case.label(),
        f"proposed bus moved {int(sim_prop.extras['bus_bytes'])}B, expected "
        f"{expect_bus}B (host {host_bytes}B + 2x relay {relay_bytes}B)",
    )
    noc_total = sum(pg.kk_edges[e] for e in noc_edges)
    c.ensure(
        sim_prop.noc_bytes == noc_total,
        "conservation", case.label(),
        f"NoC delivered {sim_prop.noc_bytes}B, residual edges total "
        f"{noc_total}B",
    )

    # 4. Proposed makespan below the sum of all activity durations.
    activity = sum(pg.kernel(k).tau_seconds for k in pg.kernel_names())
    for k in pg.kernel_names():
        activity += _dma_split_upper_s(pg.d_h_in(k), params)
        activity += _dma_split_upper_s(pg.d_h_out(k), params)
    for e in relay:
        activity += 2.0 * dma_transfer_s(pg.kk_edges[e], params)
    for p, co in noc_edges:
        activity += _noc_split_upper_s(
            pg.kk_edges[(p, co)], _noc_hops(plan, p, co), params
        )
    c.ensure(
        sim_prop.kernels_s <= activity * (1.0 + REL_EPS) + 1e-12,
        "proposed_activity_bound", case.label(),
        f"proposed makespan {sim_prop.kernels_s!r}s exceeds the total "
        f"activity bound {activity!r}s",
    )

    # 5. Proposed makespan above its trivial floors.
    max_tau = max(pg.kernel(k).tau_seconds for k in pg.kernel_names())
    floor = max(max_tau, sim_prop.bus_busy_s)
    c.ensure(
        sim_prop.kernels_s >= floor * (1.0 - REL_EPS) - 1e-12,
        "proposed_bounds", case.label(),
        f"proposed makespan {sim_prop.kernels_s!r}s below floor {floor!r}s "
        f"(max tau / bus busy)",
    )

    # 6. No unexplained regression over the simulated baseline.
    noc_excess = 0.0
    for p, co in noc_edges:
        b = pg.kk_edges[(p, co)]
        baseline_trips = 2.0 * dma_transfer_s(b, params)
        noc_excess += max(
            0.0,
            _noc_split_upper_s(b, _noc_hops(plan, p, co), params)
            - baseline_trips,
        )
    split_overhead = sum(
        setup_s + per_txn
        for k in pg.kernel_names()
        for b in (pg.d_h_in(k), pg.d_h_out(k))
        if b > 0
    )
    allowed = (
        sim_base.kernels_s * (1.0 + BASELINE_MARGIN)
        + noc_excess
        + split_overhead
    )
    c.ensure(
        sim_prop.kernels_s <= allowed + eps,
        "proposed_vs_baseline", case.label(),
        f"proposed {sim_prop.kernels_s!r}s exceeds baseline "
        f"{sim_base.kernels_s!r}s plus explainable slack {allowed!r}s",
    )
    return c.violations


# -- metamorphic transforms ---------------------------------------------------

def _scaled_graph(graph: CommGraph, k: int) -> CommGraph:
    return CommGraph(
        kernels=graph.kernels,
        kk_edges={e: b * k for e, b in graph.kk_edges.items()},
        host_in={n: b * k for n, b in graph.host_in.items()},
        host_out={n: b * k for n, b in graph.host_out.items()},
    )


def _structure(plan: InterconnectPlan, scale: int = 1):
    """The scale-covariant design structure used by the scale check."""
    return (
        tuple(
            (l.producer, l.consumer, l.bytes * scale, l.crossbar)
            for l in plan.sharing
        ),
        {
            name: (m.receive, m.send, m.attach_kernel, m.attach_memory)
            for name, m in plan.mappings.items()
        },
        None
        if plan.noc is None
        else (
            frozenset((p, c, b * scale) for p, c, b in plan.noc.edges),
            dict(plan.noc.placement.positions),
            (plan.noc.placement.width, plan.noc.placement.height),
            plan.noc.placement.torus,
        ),
    )


def check_scale_invariance(
    case: GeneratedCase, factor: int = SCALE_FACTOR
) -> List[Violation]:
    """Scaling every byte count by ``factor`` scales the design, not its
    shape.

    Duplication is disabled on both sides: ``split_bytes`` halves odd
    byte counts with integer floor/ceil, so a 1-byte edge loses one copy
    entirely while its scaled counterpart keeps both — a genuine (and
    documented) discreteness of the algorithm, not a bug.
    """
    c = _Collector()
    config = replace(case.config(), enable_duplication=False)
    plan = design_interconnect(case.label(), case.graph, config)
    scaled = design_interconnect(
        case.label(), _scaled_graph(case.graph, factor), config
    )
    c.ensure(
        _structure(plan, scale=factor) == _structure(scaled),
        "metamorphic_scale", case.label(),
        f"design structure changed under x{factor} byte scaling",
    )
    return c.violations


def _renamed(name: str, mapping: Dict[str, str]) -> str:
    if "#" in name:
        stem, _, sfx = name.rpartition("#")
        return f"{mapping[stem]}#{sfx}"
    return mapping[name]


def _rename_graph(graph: CommGraph, mapping: Dict[str, str]) -> CommGraph:
    kernels = {
        mapping[n]: replace(s, name=mapping[n]) for n, s in graph.kernels.items()
    }
    return CommGraph(
        kernels=kernels,
        kk_edges={
            (mapping[p], mapping[c]): b for (p, c), b in graph.kk_edges.items()
        },
        host_in={mapping[n]: b for n, b in graph.host_in.items()},
        host_out={mapping[n]: b for n, b in graph.host_out.items()},
    )


def check_permutation_invariance(case: GeneratedCase) -> List[Violation]:
    """Relabeling the kernels must not change any design decision.

    The generator draws distinct ``τ`` values and distinct edge byte
    counts precisely so that every ordering the algorithm uses is
    determined by the numbers, never by the name tie-breaks — making
    this property exact. The renaming reverses the lexicographic order
    of all kernel names, the harshest permutation for tie-break bugs.
    Router placement *positions* are excluded: symmetric duplicate
    copies may legitimately swap seats; count, dimensions and edges must
    still match.
    """
    c = _Collector()
    names = sorted(case.graph.kernel_names())
    mapping = {n: f"q{len(names) - 1 - i}" for i, n in enumerate(names)}
    inverse = {v: k for k, v in mapping.items()}
    config = case.config()
    plan = design_interconnect(case.label(), case.graph, config)
    renamed = design_interconnect(
        case.label(), _rename_graph(case.graph, mapping), config
    )

    def back(n: str) -> str:
        return _renamed(n, inverse)

    dup = {d.kernel for d in plan.duplications if d.applied}
    dup_r = {back(d.kernel) for d in renamed.duplications if d.applied}
    c.ensure(
        dup == dup_r, "metamorphic_permutation", case.label(),
        f"duplicated kernels changed under relabeling: {sorted(dup)} vs "
        f"{sorted(dup_r)}",
    )
    sm = {(l.producer, l.consumer, l.bytes, l.crossbar) for l in plan.sharing}
    sm_r = {
        (back(l.producer), back(l.consumer), l.bytes, l.crossbar)
        for l in renamed.sharing
    }
    c.ensure(
        sm == sm_r, "metamorphic_permutation", case.label(),
        "shared-memory pairings changed under relabeling",
    )
    maps = {
        n: (m.receive, m.send, m.attach_kernel, m.attach_memory)
        for n, m in plan.mappings.items()
    }
    maps_r = {
        back(n): (m.receive, m.send, m.attach_kernel, m.attach_memory)
        for n, m in renamed.mappings.items()
    }
    c.ensure(
        maps == maps_r, "metamorphic_permutation", case.label(),
        "Table I classifications changed under relabeling",
    )
    noc = (
        frozenset((p, co, b) for p, co, b in plan.noc.edges)
        if plan.noc
        else None
    )
    noc_r = (
        frozenset((back(p), back(co), b) for p, co, b in renamed.noc.edges)
        if renamed.noc
        else None
    )
    c.ensure(
        noc == noc_r, "metamorphic_permutation", case.label(),
        "NoC edge set changed under relabeling",
    )
    routers = plan.noc.router_count if plan.noc else 0
    routers_r = renamed.noc.router_count if renamed.noc else 0
    c.ensure(
        routers == routers_r, "metamorphic_permutation", case.label(),
        f"router count changed under relabeling: {routers} vs {routers_r}",
    )
    pipe = {(d.case, d.kernel, d.consumer) for d in plan.pipeline if d.applied}
    pipe_r = {
        (d.case, back(d.kernel), d.consumer and back(d.consumer))
        for d in renamed.pipeline
        if d.applied
    }
    c.ensure(
        pipe == pipe_r, "metamorphic_permutation", case.label(),
        "applied pipelining changed under relabeling",
    )
    theta = case.params.theta_s_per_byte()
    model = AnalyticModel(case.graph, theta, 0.0)
    model_r = AnalyticModel(_rename_graph(case.graph, mapping), theta, 0.0)
    t, t_r = model.proposed(plan), model_r.proposed(renamed)
    c.ensure(
        math.isclose(t.kernels_s, t_r.kernels_s, rel_tol=REL_EPS, abs_tol=1e-15),
        "metamorphic_permutation", case.label(),
        f"analytic proposed time changed under relabeling: "
        f"{t.kernels_s!r}s vs {t_r.kernels_s!r}s",
    )
    return c.violations


def check_host_only_degeneration(case: GeneratedCase) -> List[Violation]:
    """Stripping all kernel-to-kernel edges must yield the bus baseline.

    With no inter-kernel traffic there is nothing to share, nothing to
    route, every kernel classifies ``{R2,S2} → {K1,M1}``, and (with the
    compute-side techniques disabled) the analytic proposed system is
    *exactly* the baseline.
    """
    c = _Collector()
    host_in = dict(case.graph.host_in)
    if not host_in and not case.graph.host_out:
        host_in[case.graph.kernel_names()[0]] = 64
    graph = CommGraph(
        kernels=case.graph.kernels,
        kk_edges={},
        host_in=host_in,
        host_out=case.graph.host_out,
    )
    config = replace(
        case.config(), enable_duplication=False, enable_pipelining=False
    )
    plan = design_interconnect(case.label(), graph, config)
    c.ensure(
        not plan.sharing, "metamorphic_host_only", case.label(),
        "sharing applied on a host-only graph",
    )
    c.ensure(
        plan.noc is None, "metamorphic_host_only", case.label(),
        "NoC built for a host-only graph",
    )
    bad = [
        n for n, m in plan.mappings.items()
        if m.on_noc or m.memory_on_noc
    ]
    c.ensure(
        not bad, "metamorphic_host_only", case.label(),
        f"kernels attached to a NoC on a host-only graph: {bad}",
    )
    c.ensure(
        plan.solution_label() == "Bus", "metamorphic_host_only", case.label(),
        f"solution is {plan.solution_label()!r}, expected 'Bus'",
    )
    model = AnalyticModel(graph, config.theta_s_per_byte, 0.0)
    base, prop = model.baseline(), model.proposed(plan)
    c.ensure(
        prop.computation_s == base.computation_s
        and prop.communication_s == base.communication_s,
        "metamorphic_host_only", case.label(),
        "analytic proposed != baseline on a host-only graph",
    )
    return c.violations


def metamorphic_checks(case: GeneratedCase) -> List[Violation]:
    """All three metamorphic properties for one case."""
    return (
        check_scale_invariance(case)
        + check_permutation_invariance(case)
        + check_host_only_degeneration(case)
    )
