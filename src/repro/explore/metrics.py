"""Structural metrics of communication graphs.

The designer's decisions are driven by local structure (exclusive
pairs, fan-in/fan-out); these metrics summarize that structure globally
so users can triage a portfolio of applications — e.g. "this graph is a
chain, expect shared memories" vs "this is all-to-all, expect a full
NoC" — without running Algorithm 1. The predictor is validated against
the actual designer in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..core.commgraph import CommGraph
from ..core.sharing import find_sharing_pairs


def to_networkx(graph: CommGraph) -> nx.DiGraph:
    """Export the kernel-to-kernel graph as a weighted ``nx.DiGraph``.

    Node attributes carry the Eq. 1 host volumes; edge weights are
    ``D_ij`` in bytes.
    """
    g = nx.DiGraph()
    for name in graph.kernel_names():
        g.add_node(
            name,
            d_h_in=graph.d_h_in(name),
            d_h_out=graph.d_h_out(name),
            tau_cycles=graph.kernel(name).tau_cycles,
        )
    for (p, c), b in graph.kk_edges.items():
        g.add_edge(p, c, bytes=b)
    return g


@dataclass(frozen=True, slots=True)
class GraphMetrics:
    """Summary statistics of one communication graph."""

    n_kernels: int
    n_edges: int
    density: float
    #: Exclusive producer→consumer pairs (shared-memory candidates).
    exclusive_pairs: int
    #: Weakly connected components of the kernel-to-kernel graph.
    components: int
    #: Whether the kernel graph contains a directed cycle (iterative
    #: applications like the fluid solver).
    cyclic: bool
    #: Fraction of total traffic that is kernel-to-kernel (vs host).
    kk_traffic_share: float


def graph_metrics(graph: CommGraph) -> GraphMetrics:
    """Compute :class:`GraphMetrics` for a communication graph."""
    g = to_networkx(graph)
    n = g.number_of_nodes()
    m = g.number_of_edges()
    density = nx.density(g) if n > 1 else 0.0
    kk = 2 * sum(b for b in graph.kk_edges.values())
    host = sum(graph.d_h_in(k) + graph.d_h_out(k) for k in graph.kernel_names())
    total = kk + host
    return GraphMetrics(
        n_kernels=n,
        n_edges=m,
        density=density,
        exclusive_pairs=len(find_sharing_pairs(graph)),
        components=nx.number_weakly_connected_components(g),
        cyclic=not nx.is_directed_acyclic_graph(g),
        kk_traffic_share=kk / total if total else 0.0,
    )


def predict_solution(graph: CommGraph) -> str:
    """Cheap prediction of the Table IV "Solution" column.

    Mirrors the designer's structure without running placement or
    pipelining: exclusive pairs become SM; any residual edge forces a
    NoC. (The "P" component depends on capability flags and Δ terms, so
    it is not predicted here.)
    """
    metrics = graph_metrics(graph)
    pairs = find_sharing_pairs(graph)
    residual = len(graph.kk_edges) - len(pairs)
    parts = []
    if residual > 0:
        parts.append("NoC")
    if pairs:
        parts.append("SM")
    if not parts:
        return "Bus"
    return ", ".join(parts) if metrics.n_edges else "Bus"
