"""Design-space exploration on top of the interconnect designer.

* :mod:`~repro.explore.metrics` — structural metrics of a communication
  graph (via networkx) and a cheap solution predictor, useful for
  triaging applications before running the full designer;
* :mod:`~repro.explore.pareto` — enumerate designer configurations,
  evaluate each as a (execution-time, resource) point, and extract the
  Pareto-optimal set.
"""

from .metrics import GraphMetrics, graph_metrics, predict_solution, to_networkx
from .pareto import DesignPoint, enumerate_design_points, pareto_front
from .portfolio import PortfolioEntry, assess, portfolio_summary, render_portfolio

__all__ = [
    "GraphMetrics",
    "graph_metrics",
    "predict_solution",
    "to_networkx",
    "DesignPoint",
    "enumerate_design_points",
    "pareto_front",
    "PortfolioEntry",
    "assess",
    "portfolio_summary",
    "render_portfolio",
]
