"""Pareto exploration over designer configurations.

The designer's feature toggles (sharing, NoC, duplication, pipelining,
adaptive mapping) span a small configuration lattice; each point costs
differently in execution time (analytic model) and area (synthesis
estimate). :func:`enumerate_design_points` evaluates the meaningful
subset of that lattice and :func:`pareto_front` extracts the points a
rational designer would ever pick.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

from ..core.analytic import AnalyticModel
from ..core.commgraph import CommGraph
from ..core.designer import DesignConfig, design_interconnect
from ..core.plan import InterconnectPlan
from ..hw.synthesis import estimate_system


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated designer configuration."""

    label: str
    kernels_seconds: float
    application_seconds: float
    luts: int
    regs: int
    plan: InterconnectPlan

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance on (time, LUTs): at least as good on both,
        strictly better on one."""
        at_least = (
            self.kernels_seconds <= other.kernels_seconds
            and self.luts <= other.luts
        )
        strictly = (
            self.kernels_seconds < other.kernels_seconds
            or self.luts < other.luts
        )
        return at_least and strictly


#: (label, config-overrides) — the meaningful corner cases of the lattice.
VARIANTS: Tuple[Tuple[str, dict], ...] = (
    ("bus-only", dict(
        enable_sharing=False, enable_noc=False,
        enable_duplication=False, enable_pipelining=False,
    )),
    ("sm-only", dict(
        enable_noc=False, enable_duplication=False, enable_pipelining=False,
    )),
    ("noc-only", dict(
        enable_sharing=False, enable_adaptive_mapping=False,
    )),
    ("noc-adaptive", dict(enable_sharing=False)),
    ("hybrid-no-parallel", dict(
        enable_duplication=False, enable_pipelining=False,
    )),
    ("hybrid-full", dict()),
)


def enumerate_design_points(
    app: str,
    graph: CommGraph,
    base_config: DesignConfig,
    host_other_s: float,
    variants: Sequence[Tuple[str, dict]] = VARIANTS,
) -> List[DesignPoint]:
    """Design and evaluate every configuration variant."""
    model = AnalyticModel(graph, base_config.theta_s_per_byte, host_other_s)
    points = []
    for label, overrides in variants:
        config = replace(base_config, **overrides)
        plan = design_interconnect(f"{app}:{label}", graph, config)
        times = model.proposed(plan)
        est = estimate_system(
            label,
            [plan.graph.kernel(k).resources for k in plan.graph.kernel_names()],
            plan.component_counts(),
        )
        points.append(
            DesignPoint(
                label=label,
                kernels_seconds=times.kernels_s,
                application_seconds=times.application_s,
                luts=est.total.luts,
                regs=est.total.regs,
                plan=plan,
            )
        )
    return points


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset, sorted fastest-first.

    Duplicate (time, LUTs) coordinates keep only the first point (stable
    in input order), so the front is minimal.
    """
    front: List[DesignPoint] = []
    for p in points:
        if any(q.dominates(p) for q in points):
            continue
        if any(
            (q.kernels_seconds, q.luts) == (p.kernels_seconds, p.luts)
            for q in front
        ):
            continue
        front.append(p)
    return sorted(front, key=lambda p: (p.kernels_seconds, p.luts))
