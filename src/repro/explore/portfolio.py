"""Portfolio analysis: which applications pay for a custom interconnect?

Given a set of calibrated applications, rank them by the speed-up the
hybrid interconnect can deliver *before* running the full designer. The
bound comes straight from the paper's model: the interconnect can hide
at most the kernel-to-kernel share ``s`` of the communication time, so

    speedup ≤ (1 + ρ) / (1 + ρ − ρ·s)

with ``ρ`` the baseline communication/computation ratio. Duplication
and pipelining can push past the bound's comm-only part, which is why
the bound is quoted per application next to the designed outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.analytic import AnalyticModel
from ..core.commgraph import CommGraph
from ..errors import ConfigurationError
from .metrics import graph_metrics, predict_solution


@dataclass(frozen=True)
class PortfolioEntry:
    """Pre-design assessment of one application."""

    app: str
    comm_comp_ratio: float
    kk_traffic_share: float
    predicted_solution: str
    #: Upper bound on kernels speed-up from hiding kernel traffic only.
    comm_speedup_bound: float

    @property
    def worth_designing(self) -> bool:
        """Heuristic gate: is a custom interconnect plausibly worth it?

        At least 15 % of baseline time must be removable by hiding
        kernel-to-kernel traffic.
        """
        return self.comm_speedup_bound >= 1.15


def assess(
    app: str,
    graph: CommGraph,
    theta_s_per_byte: float,
) -> PortfolioEntry:
    """Assess one calibrated application without running the designer."""
    model = AnalyticModel(graph, theta_s_per_byte, host_other_s=0.0)
    base = model.baseline()
    rho = base.comm_comp_ratio
    s = graph_metrics(graph).kk_traffic_share
    denom = 1.0 + rho - rho * s
    if denom <= 0:
        raise ConfigurationError(f"{app}: degenerate bound denominator")
    return PortfolioEntry(
        app=app,
        comm_comp_ratio=rho,
        kk_traffic_share=s,
        predicted_solution=predict_solution(graph),
        comm_speedup_bound=(1.0 + rho) / denom,
    )


def rank_portfolio(
    entries: Sequence[PortfolioEntry],
) -> List[PortfolioEntry]:
    """Sort by the speed-up bound, best candidate first."""
    return sorted(entries, key=lambda e: (-e.comm_speedup_bound, e.app))


def render_portfolio(entries: Sequence[PortfolioEntry]) -> str:
    """Fixed-width portfolio table."""
    rows = rank_portfolio(entries)
    lines = [
        f"{'app':<10}{'comm/comp':>10}{'kk share':>10}"
        f"{'bound':>8}{'worth it':>10}  solution",
        "-" * 62,
    ]
    for e in rows:
        lines.append(
            f"{e.app:<10}{e.comm_comp_ratio:>10.2f}{e.kk_traffic_share:>9.1%}"
            f"{e.comm_speedup_bound:>7.2f}x"
            f"{'yes' if e.worth_designing else 'no':>10}  {e.predicted_solution}"
        )
    return "\n".join(lines)


def portfolio_summary(
    graphs: Dict[str, CommGraph], theta_s_per_byte: float
) -> List[PortfolioEntry]:
    """Assess a whole dictionary of applications."""
    return rank_portfolio(
        [assess(app, g, theta_s_per_byte) for app, g in graphs.items()]
    )
