"""repro — reproduction of "Automated Hybrid Interconnect Design for FPGA
Accelerators Using Data Communication Profiling" (Pham-Quoc, Al-Ars,
Bertels, 2014).

Public API tour
---------------

* Profiling (the QUAD substitute): :class:`~repro.profiling.Tracer`,
  :class:`~repro.profiling.AddressSpace`,
  :class:`~repro.profiling.QuadAnalyzer`.
* Design algorithm: :func:`~repro.core.design_interconnect`,
  :class:`~repro.core.DesignConfig`,
  :class:`~repro.core.InterconnectPlan`.
* Performance models: :class:`~repro.core.AnalyticModel` plus the
  discrete-event simulator in :mod:`repro.sim`.
* Hardware models: :mod:`repro.hw` (resources / synthesis / energy).
* The paper's applications: :func:`~repro.apps.get_application`.
* The end-to-end flow: :func:`~repro.flow.run_experiment`,
  :func:`~repro.flow.run_all`.

Quickstart::

    from repro import run_experiment
    result = run_experiment("jpeg")
    print(result.plan.describe())
    print(result.proposed_vs_baseline)
"""

from .errors import (
    ConfigurationError,
    DesignError,
    ProfilingError,
    ReproError,
    SimulationError,
)
from .core import (
    AnalyticModel,
    CommGraph,
    DesignConfig,
    InterconnectPlan,
    KernelSpec,
    design_interconnect,
)
from .apps import get_application
from .flow import ExperimentResult, run_all, run_experiment

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ProfilingError",
    "DesignError",
    "SimulationError",
    "ConfigurationError",
    "KernelSpec",
    "CommGraph",
    "DesignConfig",
    "InterconnectPlan",
    "design_interconnect",
    "AnalyticModel",
    "get_application",
    "run_experiment",
    "run_all",
    "ExperimentResult",
    "__version__",
]
