"""repro — reproduction of "Automated Hybrid Interconnect Design for FPGA
Accelerators Using Data Communication Profiling" (Pham-Quoc, Al-Ars,
Bertels, 2014).

Public API tour
---------------

* Profiling (the QUAD substitute): :class:`~repro.profiling.Tracer`,
  :class:`~repro.profiling.AddressSpace`,
  :class:`~repro.profiling.QuadAnalyzer`.
* Design algorithm: :func:`~repro.core.design_interconnect`,
  :class:`~repro.core.DesignConfig`,
  :class:`~repro.core.InterconnectPlan`.
* Performance models: :class:`~repro.core.AnalyticModel` plus the
  discrete-event simulator in :mod:`repro.sim`.
* Hardware models: :mod:`repro.hw` (resources / synthesis / energy).
* The paper's applications: :func:`~repro.apps.get_application`.
* The end-to-end flow: :func:`~repro.flow.run_experiment`,
  :func:`~repro.flow.run_all`.
* High-volume execution: :class:`~repro.service.DesignService` and
  :class:`~repro.service.DesignJob` (cached, parallel, coalescing);
  :func:`~repro.sweep.run_sweep` runs parameter grids through it.

Quickstart::

    from repro import run_experiment
    result = run_experiment("jpeg")
    print(result.plan.describe())
    print(result.proposed_vs_baseline)
"""

from .errors import (
    ConfigurationError,
    DesignError,
    ProfilingError,
    ReproError,
    ServiceError,
    SimulationError,
)
from .core import (
    AnalyticModel,
    CommGraph,
    DesignConfig,
    InterconnectPlan,
    KernelSpec,
    design_interconnect,
)
from .apps import get_application
from .flow import ExperimentResult, result_summary, run_all, run_experiment
from .service import DesignJob, DesignService

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ProfilingError",
    "DesignError",
    "SimulationError",
    "ConfigurationError",
    "ServiceError",
    "KernelSpec",
    "CommGraph",
    "DesignConfig",
    "InterconnectPlan",
    "design_interconnect",
    "AnalyticModel",
    "get_application",
    "run_experiment",
    "run_all",
    "ExperimentResult",
    "result_summary",
    "DesignJob",
    "DesignService",
    "__version__",
]
