"""NoC-family rules (``N…``): deadlock, channel load, transport sanity.

``N001`` is the analyzer's showpiece: a channel-dependency-graph proof
(Dally & Seitz) that the plan's routing function cannot deadlock — or a
concrete dependency cycle when it can. The proof runs over *every*
source/destination pair of the placed topology, so it is a property of
the routing discipline itself, independent of which flows this plan
happens to schedule.
"""

from __future__ import annotations

from typing import Callable, Iterator, List

from .cdg import analyze_deadlock
from .diagnostics import Diagnostic, Severity
from .engine import AnalysisContext, Rule, RuleFn


def _cdg_deadlock(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    noc = ctx.plan.noc
    if noc is None:
        return
    placement = noc.placement
    analysis = analyze_deadlock(
        placement.width, placement.height, placement.torus
    )
    topology = "torus" if placement.torus else "mesh"
    dims = f"{placement.width}x{placement.height}"
    if analysis.deadlock_free:
        yield Diagnostic(
            rule="N001", severity=Severity.INFO, path="noc.routing",
            message=(
                f"routing on the {dims} {topology} is deadlock-free: the "
                f"channel dependency graph ({analysis.links} links, "
                f"{analysis.dependencies} dependencies) is acyclic"
            ),
            evidence={
                "width": placement.width, "height": placement.height,
                "topology": topology, "links": analysis.links,
                "dependencies": analysis.dependencies,
            },
        )
        return
    cycle = analysis.cycle_as_strings()
    wormhole = ctx.params.noc_transport == "wormhole"
    yield Diagnostic(
        rule="N001",
        severity=Severity.ERROR if wormhole else Severity.WARNING,
        path="noc.routing",
        message=(
            f"routing on the {dims} {topology} admits a channel "
            f"dependency cycle of length {len(cycle)}"
            + (
                "; with wormhole switching a packet holding part of the "
                "cycle can block forever"
                if wormhole
                else "; store-and-forward switching drains each hop, but "
                "the routing discipline is not provably deadlock-free"
            )
        ),
        evidence={
            "width": placement.width, "height": placement.height,
            "topology": topology, "links": analysis.links,
            "dependencies": analysis.dependencies, "cycle": cycle,
            "transport": ctx.params.noc_transport,
        },
        suggestion=(
            "restrict the torus routing (virtual channels or a dateline) "
            "or fall back to the open mesh"
        ),
    )


def _channel_load(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    report = ctx.bounds.noc_report
    if report is None or not report.link_loads:
        return
    balance = report.load_balance
    evidence = {
        "max_channel_load": report.max_channel_load,
        "total_flow_bytes": report.total_flow_bytes,
        "links_used": len(report.link_loads),
        "load_balance": balance,
    }
    if balance < 0.2 and len(report.link_loads) > 1:
        yield Diagnostic(
            rule="N002", severity=Severity.WARNING, path="noc.links",
            message=(
                f"channel load is badly skewed (balance {balance:.2f}): "
                f"one link carries {report.max_channel_load} B of the "
                f"{report.total_flow_bytes} B total and bounds the whole "
                "NoC's throughput"
            ),
            evidence=evidence,
            suggestion="spread heavy flows with a different placement",
        )
    else:
        yield Diagnostic(
            rule="N002", severity=Severity.INFO, path="noc.links",
            message=(
                f"{len(report.link_loads)} link(s) carry "
                f"{report.total_flow_bytes} B; hottest link "
                f"{report.max_channel_load} B, balance {balance:.2f}"
            ),
            evidence=evidence,
        )


def _transport_sanity(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    noc = ctx.plan.noc
    if noc is None:
        return
    params = ctx.params
    if params.noc_transport == "wormhole" and noc.placement.torus:
        yield Diagnostic(
            rule="N003", severity=Severity.ERROR, path="noc.transport",
            message=(
                "wormhole switching on a torus needs virtual channels to "
                "stay deadlock-free; the simulator refuses this "
                "combination and so does the analyzer"
            ),
            evidence={"transport": params.noc_transport, "topology": "torus"},
            suggestion="use store_forward on the torus, or a mesh",
        )
    if params.noc_link_width_bytes < 1:
        yield Diagnostic(
            rule="N003", severity=Severity.ERROR, path="noc.params",
            message=(
                f"link width {params.noc_link_width_bytes} B is not a "
                "physical channel"
            ),
            evidence={"noc_link_width_bytes": params.noc_link_width_bytes},
        )
    elif params.noc_max_packet_bytes < params.noc_link_width_bytes:
        yield Diagnostic(
            rule="N003", severity=Severity.ERROR, path="noc.params",
            message=(
                f"max packet ({params.noc_max_packet_bytes} B) is smaller "
                f"than one flit ({params.noc_link_width_bytes} B); no "
                "packet could ever be formed"
            ),
            evidence={
                "noc_max_packet_bytes": params.noc_max_packet_bytes,
                "noc_link_width_bytes": params.noc_link_width_bytes,
            },
        )


def _wrap(fn: Callable[[AnalysisContext], Iterator[Diagnostic]]) -> RuleFn:
    def run(ctx: AnalysisContext) -> List[Diagnostic]:
        return list(fn(ctx))
    return run


RULES = (
    Rule(
        id="N001", name="cdg-deadlock", family="noc",
        max_severity=Severity.ERROR,
        description="channel-dependency-graph deadlock proof of the routing",
        fn=_wrap(_cdg_deadlock),
    ),
    Rule(
        id="N002", name="channel-load", family="noc",
        max_severity=Severity.WARNING,
        description="static channel-load balance of the placed flows",
        fn=_wrap(_channel_load),
    ),
    Rule(
        id="N003", name="transport-sanity", family="noc",
        max_severity=Severity.ERROR,
        description="transport/buffer parameters the simulator would reject",
        fn=_wrap(_transport_sanity),
    ),
)
