"""Channel-dependency-graph deadlock analysis of the NoC routing.

Classic result (Dally & Seitz): a routing function is deadlock-free if
and only if its *channel dependency graph* — one node per directed
link, one edge whenever a route can hold link ``a`` while requesting
link ``b`` next — is acyclic. This module builds the CDG of the repo's
deterministic routing functions (:func:`repro.sim.noc.routing.xy_route`
on a mesh, :func:`~repro.sim.noc.routing.torus_xy_route` on a torus)
over *all* source/destination pairs of the topology, so the verdict is
a property of the routing function, not just of one plan's flows.

Mesh XY routing is provably acyclic (dimension order forbids y→x
turns). The torus's shortest-way-around routing is *unrestricted* in
the classic sense — wrap links close each ring, and any ring whose
routes traverse two consecutive links in the same direction produces a
dependency cycle (first seen at ring size 4). The analyzer reports the
concrete cycle as evidence; whether that is an error depends on the
transport (see ``N001`` in :mod:`repro.analyze.rules_noc`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..sim.noc.routing import torus_xy_route, xy_route

Coord = Tuple[int, int]
Link = Tuple[Coord, Coord]


def route_links(
    src: Coord, dst: Coord, width: int, height: int, torus: bool
) -> List[Link]:
    """The directed links one route occupies, in traversal order."""
    if torus:
        return torus_xy_route(src, dst, width, height)
    return xy_route(src, dst)


def channel_dependency_graph(
    width: int, height: int, torus: bool
) -> Dict[Link, Set[Link]]:
    """CDG of the routing function over every node pair.

    Keys are every link any route uses; values are the links that can
    be requested while the key link is held (i.e. the next link of some
    route). Deterministic iteration order is preserved for stable
    cycle witnesses.
    """
    cdg: Dict[Link, Set[Link]] = {}
    nodes = [(x, y) for y in range(height) for x in range(width)]
    for src in nodes:
        for dst in nodes:
            if src == dst:
                continue
            path = route_links(src, dst, width, height, torus)
            for link in path:
                cdg.setdefault(link, set())
            for held, wanted in zip(path, path[1:]):
                cdg[held].add(wanted)
    return cdg


def find_cycle(cdg: Dict[Link, Set[Link]]) -> Optional[List[Link]]:
    """A concrete dependency cycle, or ``None`` when the CDG is acyclic.

    Iterative three-color DFS in sorted order, so the same CDG always
    yields the same witness (tests pin it as a golden value). The
    returned list is the cycle's links in dependency order; the first
    link depends on the second, and the last depends on the first.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[Link, int] = {link: WHITE for link in cdg}
    for start in sorted(cdg):
        if color[start] != WHITE:
            continue
        stack: List[Tuple[Link, List[Link]]] = [(start, sorted(cdg[start]))]
        color[start] = GRAY
        path = [start]
        while stack:
            link, successors = stack[-1]
            if successors:
                nxt = successors.pop(0)
                if color.get(nxt, WHITE) == GRAY:
                    return path[path.index(nxt):]
                if color.get(nxt, WHITE) == WHITE:
                    color[nxt] = GRAY
                    path.append(nxt)
                    stack.append((nxt, sorted(cdg[nxt])))
            else:
                color[link] = BLACK
                path.pop()
                stack.pop()
    return None


@dataclass(frozen=True)
class DeadlockAnalysis:
    """Outcome of the CDG deadlock proof for one topology."""

    width: int
    height: int
    torus: bool
    links: int
    dependencies: int
    #: ``None`` = acyclic = deadlock-free routing.
    cycle: Optional[Tuple[Link, ...]]

    @property
    def deadlock_free(self) -> bool:
        return self.cycle is None

    def cycle_as_strings(self) -> List[str]:
        """The witness in ``(x,y)->(x,y)`` form (JSON-safe evidence)."""
        if self.cycle is None:
            return []
        return [f"{a}->{b}" for a, b in self.cycle]


def analyze_deadlock(width: int, height: int, torus: bool) -> DeadlockAnalysis:
    """Build the CDG and run the cycle search for one topology."""
    cdg = channel_dependency_graph(width, height, torus)
    cycle = find_cycle(cdg)
    return DeadlockAnalysis(
        width=width,
        height=height,
        torus=torus,
        links=len(cdg),
        dependencies=sum(len(v) for v in cdg.values()),
        cycle=None if cycle is None else tuple(cycle),
    )
