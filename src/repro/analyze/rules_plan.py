"""Plan-family rules (``P…``): findings about Algorithm 1's output.

Each rule re-derives its obligation from first principles — graph
arithmetic and the paper's formulas, never the production helper that
made the decision — mirroring the philosophy of
:mod:`repro.verify.invariants`. Error-severity findings are exactly the
structural obligations the fuzz oracle enforces; informational findings
explain what the design costs and where the static bottlenecks are.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Set, Tuple

from ..core.plan import memory_node
from ..core.topology import KernelAttach, MemoryAttach, ReceiveClass, SendClass
from ..hw.device import XC5VFX130T
from ..hw.resources import ComponentKind, component_cost
from ..hw.synthesis import PLATFORM_BASE
from .bounds import link_name, relay_edges
from .diagnostics import Diagnostic, Severity
from .engine import AnalysisContext, Rule, RuleFn


def _lane_bandwidth(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    b = ctx.bounds
    evidence = {
        "bus_bytes": b.bus_bytes,
        "bus_bound_s": b.bus_bound_s,
        "computation_s": b.computation_s,
        "max_link_bound_s": b.max_link_bound_s,
    }
    comm_bound = (
        b.computation_s > 0 and b.bus_bound_s > b.computation_s
    )
    yield Diagnostic(
        rule="P001",
        severity=Severity.WARNING if comm_bound else Severity.INFO,
        path="lanes.bus",
        message=(
            f"bus must move {b.bus_bytes} B; serializing the data cycles "
            f"alone takes {b.bus_bound_s * 1e3:.3f} ms "
            + (
                f"— more than the {b.computation_s * 1e3:.3f} ms of "
                "computation, so the proposed system stays "
                "communication-bound"
                if comm_bound
                else f"(computation: {b.computation_s * 1e3:.3f} ms)"
            )
        ),
        evidence=evidence,
        suggestion=(
            "move more kernel edges off the bus (sharing/NoC) or reduce "
            "host I/O" if comm_bound else None
        ),
    )
    for link in sorted(b.link_loads):
        load = b.link_loads[link]
        bound = b.link_bounds_s[link]
        hot = b.computation_s > 0 and bound > b.computation_s
        yield Diagnostic(
            rule="P001",
            severity=Severity.WARNING if hot else Severity.HINT,
            path=f"lanes.{link_name(link)}",
            message=(
                f"link {link_name(link)} carries {load} B planned load; "
                f"serialization needs at least {bound * 1e6:.1f} us"
                + (" — more than the whole computation phase" if hot else "")
            ),
            evidence={
                "link": link_name(link),
                "load_bytes": load,
                "bound_s": bound,
                "computation_s": b.computation_s,
            },
        )


def _sharing_provisioning(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    seen: Set[str] = set()
    for link in ctx.plan.sharing:
        path = f"sharing.{link.producer}->{link.consumer}"
        d_ij = graph.edge_bytes(link.producer, link.consumer)
        if d_ij <= 0:
            yield Diagnostic(
                rule="P002", severity=Severity.ERROR, path=path,
                message=(
                    f"shared memory on {link.producer}->{link.consumer} "
                    "but the graph carries no such edge"
                ),
                evidence={"bytes": link.bytes, "graph_bytes": d_ij},
            )
            continue
        if link.bytes != d_ij:
            yield Diagnostic(
                rule="P002", severity=Severity.ERROR, path=path,
                message=(
                    f"sharing link records {link.bytes} B but the graph "
                    f"edge carries {d_ij} B"
                ),
                evidence={"bytes": link.bytes, "graph_bytes": d_ij},
            )
        d_out = graph.d_k_out(link.producer)
        d_in = graph.d_k_in(link.consumer)
        if d_out != d_ij or d_in != d_ij:
            yield Diagnostic(
                rule="P002", severity=Severity.ERROR, path=path,
                message=(
                    "pair is not exclusive: the paper requires "
                    f"D^K_out(producer) = D^K_in(consumer) = D_ij, got "
                    f"{d_out} B / {d_in} B / {d_ij} B"
                ),
                evidence={"d_k_out": d_out, "d_k_in": d_in, "d_ij": d_ij},
                suggestion="carry the edge on the NoC instead",
            )
        host = graph.d_h_in(link.consumer) + graph.d_h_out(link.consumer)
        if link.crossbar != (host > 0):
            what = "missing" if host > 0 else "superfluous"
            yield Diagnostic(
                rule="P002", severity=Severity.ERROR, path=path,
                message=(
                    f"{what} crossbar: consumer host traffic is {host} B "
                    f"but crossbar={link.crossbar} — the host must reach a "
                    "shared memory through a crossbar, and only then"
                ),
                evidence={"crossbar": link.crossbar,
                          "consumer_host_bytes": host},
            )
        for k in (link.producer, link.consumer):
            if k in seen:
                yield Diagnostic(
                    rule="P002", severity=Severity.ERROR, path=path,
                    message=(
                        f"kernel {k!r} participates in more than one "
                        "sharing pair; a local memory can be shared with "
                        "at most one partner"
                    ),
                    evidence={"kernel": k},
                )
            seen.add(k)


def _derive_classes(
    ctx: AnalysisContext, name: str
) -> Tuple[ReceiveClass, SendClass]:
    """Re-derive ``{R,S}`` on the residual graph without topology.py."""
    from_kernels = ctx.residual.d_k_in(name) > 0
    from_host = ctx.residual.d_h_in(name) > 0
    if from_kernels and from_host:
        receive = ReceiveClass.R3
    elif from_kernels:
        receive = ReceiveClass.R1
    else:
        receive = ReceiveClass.R2
    to_kernels = ctx.residual.d_k_out(name) > 0
    to_host = ctx.residual.d_h_out(name) > 0
    if to_kernels and to_host:
        send = SendClass.S3
    elif to_kernels:
        send = SendClass.S1
    else:
        send = SendClass.S2
    return receive, send


def _derive_attach(
    receive: ReceiveClass, send: SendClass
) -> Tuple[KernelAttach, MemoryAttach]:
    """Table I from its three stated principles, not from the table."""
    kernel = (
        KernelAttach.K2
        if send in (SendClass.S1, SendClass.S3)
        else KernelAttach.K1
    )
    mem_noc = receive in (ReceiveClass.R1, ReceiveClass.R3)
    mem_bus = receive in (ReceiveClass.R2, ReceiveClass.R3) or send in (
        SendClass.S2, SendClass.S3,
    )
    if mem_noc and mem_bus:
        memory = MemoryAttach.M3
    elif mem_noc:
        memory = MemoryAttach.M2
    else:
        memory = MemoryAttach.M1
    return kernel, memory


def _mapping_consistency(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    plan = ctx.plan
    names = set(ctx.graph.kernel_names())
    if set(plan.mappings) != names:
        missing = sorted(names - set(plan.mappings))
        extra = sorted(set(plan.mappings) - names)
        yield Diagnostic(
            rule="P003", severity=Severity.ERROR, path="mappings",
            message=(
                "mappings do not cover exactly the plan's kernels "
                f"(missing {missing}, extra {extra})"
            ),
            evidence={"missing": missing, "extra": extra},
        )
    strict = (
        bool(ctx.config)
        and ctx.toggle("enable_noc")
        and ctx.toggle("enable_adaptive_mapping")
    )
    for name in sorted(set(plan.mappings) & names):
        m = plan.mappings[name]
        path = f"mappings.{name}"
        receive, send = _derive_classes(ctx, name)
        if m.receive is not receive or m.send is not send:
            yield Diagnostic(
                rule="P003", severity=Severity.ERROR, path=path,
                message=(
                    f"classes {{{m.receive.name},{m.send.name}}} but the "
                    f"residual graph gives {{{receive.name},{send.name}}}"
                ),
                evidence={"plan": [m.receive.name, m.send.name],
                          "derived": [receive.name, send.name]},
            )
            continue
        attach = (m.attach_kernel, m.attach_memory)
        if attach == (KernelAttach.K1, MemoryAttach.M2):
            yield Diagnostic(
                rule="P003", severity=Severity.ERROR, path=path,
                message=(
                    "infeasible {K1,M2} attachment: the kernel's result "
                    "would be unreachable from outside the NoC"
                ),
                evidence={"attach": [a.name for a in attach]},
            )
            continue
        if strict:
            expected = _derive_attach(receive, send)
            if attach != expected:
                yield Diagnostic(
                    rule="P003", severity=Severity.ERROR, path=path,
                    message=(
                        "Table I gives "
                        f"{{{expected[0].name},{expected[1].name}}} for "
                        f"{{{receive.name},{send.name}}}, plan has "
                        f"{{{attach[0].name},{attach[1].name}}}"
                    ),
                    evidence={
                        "classes": [receive.name, send.name],
                        "expected": [a.name for a in expected],
                        "plan": [a.name for a in attach],
                    },
                )
    if plan.noc is not None:
        for p, c, _b in plan.noc.edges:
            for kernel, ok, need in (
                (p, plan.mappings[p].on_noc, "a NoC port (K2)"),
                (c, plan.mappings[c].memory_on_noc,
                 "its memory on the NoC (M2/M3)"),
            ):
                if not ok:
                    yield Diagnostic(
                        rule="P003", severity=Severity.ERROR,
                        path=f"noc.edges.{p}->{c}",
                        message=(
                            f"NoC carries {p}->{c} but {kernel!r} lacks "
                            f"{need}; the flow has no physical path"
                        ),
                        evidence={"producer": p, "consumer": c,
                                  "kernel": kernel},
                    )


def _duplication_gating(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    plan = ctx.plan
    names = set(ctx.graph.kernel_names())
    for d in plan.duplications:
        path = f"duplications.{d.kernel}"
        if not d.applied:
            yield Diagnostic(
                rule="P004", severity=Severity.INFO, path=path,
                message=(
                    f"duplication of {d.kernel!r} declined "
                    f"(Δ_dp={d.slack_us:+.2f} us): {d.reason}"
                ),
                evidence={"kernel": d.kernel,
                          "delta_dp_seconds": d.delta_dp_seconds,
                          "reason": d.reason},
            )
            continue
        if d.delta_dp_seconds <= 0:
            yield Diagnostic(
                rule="P004", severity=Severity.ERROR, path=path,
                message=(
                    f"duplicated {d.kernel!r} with non-positive "
                    f"Δ_dp={d.slack_us:+.2f} us; the paper duplicates "
                    "only when τ/2 − O > 0"
                ),
                evidence={"kernel": d.kernel,
                          "delta_dp_seconds": d.delta_dp_seconds},
            )
        if d.kernel in names:
            yield Diagnostic(
                rule="P004", severity=Severity.ERROR, path=path,
                message=(
                    f"duplication of {d.kernel!r} applied but the "
                    "original kernel is still in the graph"
                ),
                evidence={"kernel": d.kernel},
            )
    cap = float(ctx.config.get("utilization_cap", 0.85))
    cost = PLATFORM_BASE + component_cost(ComponentKind.BUS)
    for name in ctx.graph.kernel_names():
        cost = cost + ctx.graph.kernel(name).resources
    device = XC5VFX130T
    if not device.fits(cost, cap):
        yield Diagnostic(
            rule="P004", severity=Severity.ERROR, path="resources",
            message=(
                f"committed kernel cores need {cost.luts} LUTs / "
                f"{cost.regs} regs — beyond {cap:.0%} of {device.name}"
            ),
            evidence={"luts": cost.luts, "regs": cost.regs,
                      "utilization_cap": cap, "device": device.name},
            suggestion="drop a duplication or raise the utilization cap",
        )
    else:
        yield Diagnostic(
            rule="P004", severity=Severity.HINT, path="resources",
            message=(
                f"kernel cores commit {cost.luts} LUTs / {cost.regs} regs "
                f"({device.utilization(cost):.0%} of {device.name})"
            ),
            evidence={"luts": cost.luts, "regs": cost.regs,
                      "utilization": device.utilization(cost),
                      "device": device.name},
        )


def _placement_quality(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    report = ctx.bounds.noc_report
    if report is None or report.total_flow_bytes == 0:
        return
    placement = ctx.plan.noc.placement if ctx.plan.noc is not None else None
    efficiency = report.total_flow_bytes / report.byte_hops
    evidence = {
        "byte_hops": report.byte_hops,
        "total_flow_bytes": report.total_flow_bytes,
        "average_hops": report.average_hops,
        "efficiency": efficiency,
    }
    if efficiency < 0.5:
        yield Diagnostic(
            rule="P005", severity=Severity.HINT, path="noc.placement",
            message=(
                f"placement averages {report.average_hops:.2f} hops per "
                "byte — more than double the 1-hop lower bound; a better "
                "placement could cut NoC occupancy "
                f"({report.byte_hops} byte-hops for "
                f"{report.total_flow_bytes} flow bytes)"
            ),
            evidence=evidence,
            suggestion="co-locate heavy producer/consumer pairs",
        )
    else:
        dims = (
            f"{placement.width}x{placement.height}"
            if placement is not None else "?"
        )
        yield Diagnostic(
            rule="P005", severity=Severity.INFO, path="noc.placement",
            message=(
                f"placement on the {dims} grid averages "
                f"{report.average_hops:.2f} hops per byte "
                f"({report.byte_hops} byte-hops, lower bound "
                f"{report.total_flow_bytes})"
            ),
            evidence=evidence,
        )


def _edge_coverage(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    plan = ctx.plan
    sm = {(l.producer, l.consumer) for l in plan.sharing}
    noc = (
        {(p, c) for p, c, _ in plan.noc.edges}
        if plan.noc is not None else set()
    )
    for p, c in sorted(sm & noc):
        yield Diagnostic(
            rule="P006", severity=Severity.ERROR, path=f"edges.{p}->{c}",
            message=(
                f"edge {p}->{c} is carried by both a shared memory and "
                "the NoC; the interconnect would move the data twice"
            ),
            evidence={"producer": p, "consumer": c},
        )
    for p, c in sorted((sm | noc) - set(plan.graph.kk_edges)):
        yield Diagnostic(
            rule="P006", severity=Severity.ERROR, path=f"edges.{p}->{c}",
            message=(
                f"interconnect carries {p}->{c} but the graph has no "
                "such edge (phantom flow)"
            ),
            evidence={"producer": p, "consumer": c},
        )
    if plan.noc is not None:
        for p, c, b in plan.noc.edges:
            graph_b = plan.graph.edge_bytes(p, c)
            if graph_b != b and (p, c) in plan.graph.kk_edges:
                yield Diagnostic(
                    rule="P006", severity=Severity.ERROR,
                    path=f"noc.edges.{p}->{c}",
                    message=(
                        f"NoC records {b} B for {p}->{c}, the graph "
                        f"carries {graph_b} B"
                    ),
                    evidence={"noc_bytes": b, "graph_bytes": graph_b},
                )
    relays = relay_edges(plan)
    noc_enabled = ctx.toggle("enable_noc")
    severity = (
        Severity.ERROR
        if relays and bool(ctx.config) and noc_enabled
        else Severity.WARNING
    )
    for p, c, b in relays:
        yield Diagnostic(
            rule="P006", severity=severity, path=f"edges.{p}->{c}",
            message=(
                f"kernel edge {p}->{c} ({b} B) rides on neither a shared "
                "memory nor the NoC; it is relayed through the host over "
                "the bus, twice"
            ),
            evidence={"producer": p, "consumer": c, "bytes": b,
                      "noc_enabled": noc_enabled},
            suggestion=(
                "enable the NoC or sharing stage so the custom "
                "interconnect carries the edge"
            ),
        )


def _wrap(fn: Callable[[AnalysisContext], Iterator[Diagnostic]]) -> RuleFn:
    def run(ctx: AnalysisContext) -> List[Diagnostic]:
        return list(fn(ctx))
    return run


RULES = (
    Rule(
        id="P001", name="lane-bandwidth", family="plan",
        max_severity=Severity.WARNING,
        description="static serialization bounds per bus/NoC lane",
        fn=_wrap(_lane_bandwidth),
    ),
    Rule(
        id="P002", name="sharing-provisioning", family="plan",
        max_severity=Severity.ERROR,
        description="shared memories satisfy the exclusivity/crossbar rules",
        fn=_wrap(_sharing_provisioning),
    ),
    Rule(
        id="P003", name="mapping-consistency", family="plan",
        max_severity=Severity.ERROR,
        description="Table I re-derived from first principles",
        fn=_wrap(_mapping_consistency),
    ),
    Rule(
        id="P004", name="duplication-gating", family="plan",
        max_severity=Severity.ERROR,
        description="duplication Δ_dp gating and device resource budget",
        fn=_wrap(_duplication_gating),
    ),
    Rule(
        id="P005", name="placement-quality", family="plan",
        max_severity=Severity.INFO,
        description="byte-hop cost of the mesh placement vs lower bound",
        fn=_wrap(_placement_quality),
    ),
    Rule(
        id="P006", name="edge-coverage", family="plan",
        max_severity=Severity.ERROR,
        description="SM and NoC edges partition the kernel edges exactly",
        fn=_wrap(_edge_coverage),
    ),
)
