"""Graph-family rules (``G…``): findings about the communication graph.

These rules look only at the (post-duplication) communication graph and
the raw profile — they would fire identically before any interconnect
is designed, and they explain *inputs*: kernels that exchange no data,
structurally impossible edges, host fan-in that bounds any design, UMA
counts that contradict byte counts, and the sharing opportunities
Algorithm 1 examined but declined.
"""

from __future__ import annotations

from typing import Callable, Iterator, List

from ..core.sharing import sharing_decisions
from .bounds import bus_lower_bound_s
from .diagnostics import Diagnostic, Severity
from .engine import AnalysisContext, Rule, RuleFn


def _dead_kernels(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for name in ctx.graph.kernel_names():
        total = ctx.graph.d_in(name) + ctx.graph.d_out(name)
        if total == 0:
            yield Diagnostic(
                rule="G001",
                severity=Severity.WARNING,
                path=f"graph.kernels.{name}",
                message=(
                    f"kernel {name!r} exchanges no data with the host or "
                    "any other kernel; it is unreachable by any data flow"
                ),
                evidence={"kernel": name, "d_in": 0, "d_out": 0},
                suggestion=(
                    "drop the kernel from the accelerator candidate set or "
                    "re-profile with a workload that exercises it"
                ),
            )


def _self_edges(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for (producer, consumer), nbytes in ctx.graph.kk_edges.items():
        if producer == consumer:
            yield Diagnostic(
                rule="G002",
                severity=Severity.ERROR,
                path=f"graph.kk_edges.{producer}->{consumer}",
                message=(
                    f"self-edge {producer}->{consumer} carrying {nbytes} B; "
                    "a kernel's traffic to itself is local memory, not "
                    "interconnect traffic"
                ),
                evidence={"producer": producer, "consumer": consumer,
                          "bytes": nbytes},
                suggestion="fold the edge into the kernel's local memory size",
            )


def _host_bottleneck(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    host_bytes = sum(graph.host_in.values()) + sum(graph.host_out.values())
    if host_bytes == 0:
        return
    bound_s = bus_lower_bound_s(host_bytes, ctx.params)
    comp_s = ctx.bounds.computation_s
    fan_in = sorted(
        k for k in graph.kernel_names()
        if graph.d_h_in(k) + graph.d_h_out(k) > 0
    )
    evidence = {
        "host_bytes": host_bytes,
        "bus_bound_s": bound_s,
        "computation_s": comp_s,
        "kernels_with_host_traffic": fan_in,
    }
    if comp_s > 0 and bound_s > comp_s:
        yield Diagnostic(
            rule="G003",
            severity=Severity.WARNING,
            path="graph.host",
            message=(
                f"mandatory host traffic ({host_bytes} B) needs at least "
                f"{bound_s * 1e3:.3f} ms of bus time — more than the "
                f"{comp_s * 1e3:.3f} ms of total computation; every design "
                "stays host-communication-bound"
            ),
            evidence=evidence,
            suggestion=(
                "no interconnect fixes host fan-in: reduce host I/O (stream "
                "or compress) or widen the bus"
            ),
        )
    else:
        yield Diagnostic(
            rule="G003",
            severity=Severity.INFO,
            path="graph.host",
            message=(
                f"{len(fan_in)} kernel(s) exchange {host_bytes} B with the "
                f"host; serializing it needs {bound_s * 1e3:.3f} ms of bus "
                "time"
            ),
            evidence=evidence,
        )


def _uma_consistency(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    if ctx.profile is None:
        return
    for edge in ctx.profile.edges:
        path = f"profile.edges.{edge.producer}->{edge.consumer}"
        if edge.umas > edge.bytes:
            yield Diagnostic(
                rule="G004",
                severity=Severity.WARNING,
                path=path,
                message=(
                    f"profile edge {edge.producer}->{edge.consumer} counts "
                    f"{edge.umas} unique memory addresses but only "
                    f"{edge.bytes} bytes — each UMA is at least one byte"
                ),
                evidence={"producer": edge.producer,
                          "consumer": edge.consumer,
                          "bytes": edge.bytes, "umas": edge.umas},
                suggestion="re-run the profiler; the counters are inconsistent",
            )
        elif edge.bytes > 0 and edge.umas == 0:
            yield Diagnostic(
                rule="G004",
                severity=Severity.WARNING,
                path=path,
                message=(
                    f"profile edge {edge.producer}->{edge.consumer} moves "
                    f"{edge.bytes} bytes through zero unique memory "
                    "addresses"
                ),
                evidence={"producer": edge.producer,
                          "consumer": edge.consumer,
                          "bytes": edge.bytes, "umas": edge.umas},
                suggestion="re-run the profiler; the counters are inconsistent",
            )


def _sharing_declined(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    decisions = sharing_decisions(ctx.graph)
    if not ctx.toggle("enable_sharing"):
        accepted = [d for d in decisions if d.accepted]
        if accepted:
            yield Diagnostic(
                rule="G005",
                severity=Severity.INFO,
                path="sharing",
                message=(
                    f"sharing is disabled by configuration; "
                    f"{len(accepted)} exclusive pair(s) would qualify for "
                    "a shared local memory"
                ),
                evidence={
                    "candidates": [
                        f"{d.producer}->{d.consumer}" for d in accepted
                    ],
                },
            )
        return
    for d in decisions:
        if d.accepted:
            continue
        yield Diagnostic(
            rule="G005",
            severity=Severity.HINT,
            path=f"sharing.{d.producer}->{d.consumer}",
            message=(
                f"sharing declined for {d.producer}->{d.consumer} "
                f"({d.bytes} B): {d.reason}"
            ),
            evidence={"producer": d.producer, "consumer": d.consumer,
                      "bytes": d.bytes, "reason": d.reason},
        )


def _wrap(fn: Callable[[AnalysisContext], Iterator[Diagnostic]]) -> RuleFn:
    def run(ctx: AnalysisContext) -> List[Diagnostic]:
        return list(fn(ctx))
    return run


RULES = (
    Rule(
        id="G001", name="dead-kernel", family="graph",
        max_severity=Severity.WARNING,
        description="kernel exchanges no data with host or kernels",
        fn=_wrap(_dead_kernels),
    ),
    Rule(
        id="G002", name="self-edge", family="graph",
        max_severity=Severity.ERROR,
        description="kernel-to-kernel edge with identical endpoints",
        fn=_wrap(_self_edges),
    ),
    Rule(
        id="G003", name="host-bottleneck", family="graph",
        max_severity=Severity.WARNING,
        description="mandatory host traffic bounds every possible design",
        fn=_wrap(_host_bottleneck),
    ),
    Rule(
        id="G004", name="uma-consistency", family="graph",
        max_severity=Severity.WARNING,
        description="profile UMA counts contradict byte counts",
        fn=_wrap(_uma_consistency),
    ),
    Rule(
        id="G005", name="sharing-declined", family="graph",
        max_severity=Severity.INFO,
        description="sharing opportunities Algorithm 1 examined but declined",
        fn=_wrap(_sharing_declined),
    ),
)
