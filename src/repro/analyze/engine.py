"""The rule engine: context construction, rule registry, entry point.

:func:`analyze_plan` is the analyzer's single entry point: given an
:class:`~repro.core.plan.InterconnectPlan` (plus the
:class:`~repro.sim.systems.SystemParams` it will run under and,
optionally, the raw :class:`~repro.profiling.quad.CommunicationProfile`
it was designed from), it builds one immutable
:class:`AnalysisContext` and runs every registered rule over it in
stable id order. No rule simulates anything; the whole pass is pure
graph/plan arithmetic and is fast enough to run on every design
(``run_experiment(lint=True)``, the fuzz oracle, the service hook).

Rules read the designer's configuration from the plan's provenance log
(the ``config`` stage event records every toggle); a plan without
provenance — e.g. deserialized from JSON, which drops it — degrades
gracefully: config-dependent rules fall back to soundness-only checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.commgraph import CommGraph
from ..core.plan import InterconnectPlan
from ..core.sharing import residual_graph
from ..obs import provenance as prov
from ..profiling.quad import CommunicationProfile
from ..sim.systems import SystemParams
from .bounds import LaneBounds, lane_bounds
from .diagnostics import AnalysisReport, Diagnostic, Severity


def config_from_provenance(plan: InterconnectPlan) -> Dict[str, Any]:
    """The designer toggles recorded in the plan's ``config`` event.

    Empty when the plan carries no provenance (e.g. after a JSON
    round-trip, which intentionally drops the decision log).
    """
    for event in plan.provenance:
        if event.stage == prov.STAGE_CONFIG:
            return event.detail_map
    return {}


@dataclass(frozen=True)
class AnalysisContext:
    """Everything a rule may look at — computed once per plan."""

    plan: InterconnectPlan
    params: SystemParams
    #: Post-duplication graph (alias for ``plan.graph``).
    graph: CommGraph
    #: Graph with SM-satisfied edges removed (classification input).
    residual: CommGraph
    #: Designer toggles from provenance; ``{}`` when unavailable.
    config: Mapping[str, Any]
    #: Static lane bounds shared with ``--sim-crosscheck``.
    bounds: LaneBounds
    #: Raw QUAD profile (byte/UMA counts); optional.
    profile: Optional[CommunicationProfile] = None

    def toggle(self, name: str, default: bool = True) -> bool:
        """A boolean designer toggle, defaulting when unrecorded."""
        value = self.config.get(name, default)
        return bool(value)


RuleFn = Callable[[AnalysisContext], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """One registered static check."""

    id: str
    name: str
    #: ``"graph"``, ``"plan"`` or ``"noc"`` (DESIGN.md §11 families).
    family: str
    #: Worst severity the rule can emit (documentation + SARIF level).
    max_severity: Severity
    description: str
    fn: RuleFn = field(repr=False)


def _registry() -> Tuple[Rule, ...]:
    from . import rules_graph, rules_noc, rules_plan

    rules: List[Rule] = [
        *rules_graph.RULES, *rules_plan.RULES, *rules_noc.RULES,
    ]
    ids = [r.id for r in rules]
    if len(ids) != len(set(ids)):  # pragma: no cover - registration bug
        raise ValueError(f"duplicate rule ids: {sorted(ids)}")
    return tuple(sorted(rules, key=lambda r: r.id))


_RULES: Optional[Tuple[Rule, ...]] = None


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, sorted by id (stable public order)."""
    global _RULES
    if _RULES is None:
        _RULES = _registry()
    return _RULES


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id (raises ``KeyError`` when unknown)."""
    for rule in all_rules():
        if rule.id == rule_id:
            return rule
    raise KeyError(rule_id)


def build_context(
    plan: InterconnectPlan,
    params: Optional[SystemParams] = None,
    profile: Optional[CommunicationProfile] = None,
) -> AnalysisContext:
    """Assemble the shared per-plan analysis context."""
    params = params if params is not None else SystemParams()
    return AnalysisContext(
        plan=plan,
        params=params,
        graph=plan.graph,
        residual=residual_graph(plan.graph, plan.sharing),
        config=config_from_provenance(plan),
        bounds=lane_bounds(plan, params),
        profile=profile,
    )


def analyze_plan(
    plan: InterconnectPlan,
    params: Optional[SystemParams] = None,
    profile: Optional[CommunicationProfile] = None,
) -> AnalysisReport:
    """Run every rule over one plan; never simulates, never raises
    on findings (a finding is a :class:`Diagnostic`, not an exception).
    """
    ctx = build_context(plan, params=params, profile=profile)
    diagnostics: List[Diagnostic] = []
    for rule in all_rules():
        diagnostics.extend(rule.fn(ctx))
    return AnalysisReport(app=plan.app, diagnostics=tuple(diagnostics))
