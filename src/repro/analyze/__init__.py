"""``repro.analyze`` — static diagnostics over plans, graphs and NoCs.

The ``repro lint`` engine (DESIGN.md §11): a pure, simulation-free rule
pass that turns a designed :class:`~repro.core.plan.InterconnectPlan`
into typed :class:`Diagnostic` findings — structural obligations that
must hold (errors), design smells (warnings), and derived facts worth
surfacing (info/hints). The optional ``--sim-crosscheck`` step then
proves every static bandwidth bound against the discrete-event
simulator.
"""

from .bounds import LaneBounds, bus_demand_bytes, lane_bounds, relay_edges
from .cdg import DeadlockAnalysis, analyze_deadlock, channel_dependency_graph
from .crosscheck import CROSSCHECK_RULE, crosscheck_plan
from .diagnostics import (
    LINT_KIND,
    AnalysisReport,
    Diagnostic,
    Severity,
    report_from_dict,
)
from .engine import AnalysisContext, Rule, all_rules, analyze_plan, get_rule
from .sarif import to_sarif

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "CROSSCHECK_RULE",
    "DeadlockAnalysis",
    "Diagnostic",
    "LINT_KIND",
    "LaneBounds",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_deadlock",
    "analyze_plan",
    "bus_demand_bytes",
    "channel_dependency_graph",
    "crosscheck_plan",
    "get_rule",
    "lane_bounds",
    "relay_edges",
    "report_from_dict",
    "to_sarif",
]
