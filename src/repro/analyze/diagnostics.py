"""Typed diagnostics — the analyzer's output vocabulary.

A :class:`Diagnostic` is one finding of the static rule engine: a stable
rule id (``G…``/``P…``/``N…``, see DESIGN.md §11), a severity, a
location *path* into the plan/graph (dotted, e.g.
``mappings.huff_enc`` or ``noc.edges.dct->quant``), the human message,
a machine-readable ``evidence`` mapping (every number the rule used to
reach its verdict), and an optional suggested fix. Diagnostics are
plain frozen data — producing one never raises and never simulates.

An :class:`AnalysisReport` aggregates the diagnostics of one plan and
serializes as a versioned ``lint-report`` document (the artifact
``repro lint --json`` prints and the service persists per fingerprint).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..io import FORMAT_VERSION

#: Document kind of the serialized analysis report.
LINT_KIND = "lint-report"


class Severity(enum.Enum):
    """How bad a finding is; ordered ``error > warning > info > hint``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"
    HINT = "hint"

    @property
    def rank(self) -> int:
        """Comparable badness (higher = worse)."""
        return _SEVERITY_RANK[self]

    def at_least(self, other: "Severity") -> bool:
        """Whether this severity is as bad as ``other`` or worse."""
        return self.rank >= other.rank


_SEVERITY_RANK: Dict[Severity, int] = {
    Severity.HINT: 0,
    Severity.INFO: 1,
    Severity.WARNING: 2,
    Severity.ERROR: 3,
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule on one location."""

    #: Stable rule id, e.g. ``"P003"``.
    rule: str
    severity: Severity
    #: Dotted location path into the plan/graph (``""`` = whole plan).
    path: str
    #: Human-readable, single-sentence description of the finding.
    message: str
    #: Machine-readable facts the rule derived (JSON-safe values only).
    evidence: Mapping[str, Any] = field(default_factory=dict)
    #: Optional actionable remediation.
    suggestion: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "message": self.message,
            "evidence": dict(self.evidence),
            "suggestion": self.suggestion,
        }

    def __str__(self) -> str:
        loc = f" @ {self.path}" if self.path else ""
        return f"{self.severity.value:<7} {self.rule}{loc}: {self.message}"


@dataclass(frozen=True)
class AnalysisReport:
    """All diagnostics the analyzer produced for one plan."""

    app: str
    diagnostics: Tuple[Diagnostic, ...] = ()

    @property
    def ok(self) -> bool:
        """No error-severity diagnostics (the CI/fuzz gate)."""
        return not any(
            d.severity is Severity.ERROR for d in self.diagnostics
        )

    def worst(self) -> Optional[Severity]:
        """The most severe finding, ``None`` for an empty report."""
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics),
                   key=lambda s: s.rank)

    def counts(self) -> Dict[str, int]:
        """Findings per severity value (all four keys always present)."""
        out = {s.value: 0 for s in Severity}
        for d in self.diagnostics:
            out[d.severity.value] += 1
        return out

    def at_least(self, threshold: Severity) -> Tuple[Diagnostic, ...]:
        """Diagnostics at ``threshold`` severity or worse."""
        return tuple(
            d for d in self.diagnostics if d.severity.at_least(threshold)
        )

    def by_rule(self, rule: str) -> Tuple[Diagnostic, ...]:
        """All findings of one rule id."""
        return tuple(d for d in self.diagnostics if d.rule == rule)

    def extended(self, extra: Sequence[Diagnostic]) -> "AnalysisReport":
        """A new report with ``extra`` diagnostics appended."""
        return AnalysisReport(
            app=self.app, diagnostics=self.diagnostics + tuple(extra)
        )

    def to_dict(self) -> Dict[str, Any]:
        """Versioned JSON artifact (``repro lint --json``)."""
        return {
            "kind": LINT_KIND,
            "version": FORMAT_VERSION,
            "app": self.app,
            "ok": self.ok,
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render(self) -> str:
        """Terminal rendering, worst findings first."""
        counts = self.counts()
        header = (
            f"lint {self.app}: "
            + ", ".join(f"{counts[s.value]} {s.value}" for s in Severity)
        )
        lines = [header]
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (-d.severity.rank, d.rule, d.path),
        )
        for d in ordered:
            lines.append(f"  {d}")
            if d.suggestion:
                lines.append(f"          fix: {d.suggestion}")
        return "\n".join(lines)


def report_from_dict(data: Mapping[str, Any]) -> AnalysisReport:
    """Deserialize a ``lint-report`` document."""
    from ..io import validate_document

    validate_document(dict(data), LINT_KIND)
    return AnalysisReport(
        app=str(data["app"]),
        diagnostics=tuple(
            Diagnostic(
                rule=str(d["rule"]),
                severity=Severity(d["severity"]),
                path=str(d["path"]),
                message=str(d["message"]),
                evidence=dict(d["evidence"]),
                suggestion=d.get("suggestion"),
            )
            for d in data["diagnostics"]
        ),
    )
