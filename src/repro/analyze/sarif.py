"""SARIF 2.1.0 export of analysis reports (for CI code-scanning UIs).

One run per invocation, one ``result`` per diagnostic. Locations are
logical (``app:path`` into the plan structure) since the findings are
about a design artifact, not about source text. Severity maps onto the
SARIF ``level`` vocabulary: ``error``/``warning`` directly, ``info``
and ``hint`` both to ``note`` (SARIF has no fourth level; the original
severity is preserved in each result's properties).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .crosscheck import CROSSCHECK_RULE
from .diagnostics import AnalysisReport, Severity
from .engine import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS: Dict[Severity, str] = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
    Severity.HINT: "note",
}


def _rule_descriptors() -> List[Dict[str, Any]]:
    rules = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "properties": {
                "family": rule.family,
                "maxSeverity": rule.max_severity.value,
            },
        }
        for rule in all_rules()
    ]
    rules.append(
        {
            "id": CROSSCHECK_RULE,
            "name": "sim-crosscheck",
            "shortDescription": {
                "text": "static bound contradicted (or confirmed) by the "
                "discrete-event simulator"
            },
            "properties": {"family": "crosscheck", "maxSeverity": "error"},
        }
    )
    return rules


def to_sarif(reports: Sequence[AnalysisReport]) -> Dict[str, Any]:
    """One SARIF document covering any number of per-app reports."""
    results: List[Dict[str, Any]] = []
    for report in reports:
        for d in report.diagnostics:
            result: Dict[str, Any] = {
                "ruleId": d.rule,
                "level": _LEVELS[d.severity],
                "message": {"text": d.message},
                "locations": [
                    {
                        "logicalLocations": [
                            {
                                "fullyQualifiedName": (
                                    f"{report.app}:{d.path}"
                                    if d.path else report.app
                                ),
                                "kind": "member",
                            }
                        ]
                    }
                ],
                "properties": {
                    "app": report.app,
                    "severity": d.severity.value,
                    "evidence": dict(d.evidence),
                },
            }
            if d.suggestion:
                result["properties"]["suggestion"] = d.suggestion
            results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": _rule_descriptors(),
                    }
                },
                "results": results,
            }
        ],
    }
