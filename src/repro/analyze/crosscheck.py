"""``--sim-crosscheck``: prove the static bounds against the simulator.

The analyzer's bandwidth findings (``P001``) are *claims* about what no
schedule can avoid. This module makes the claims falsifiable: it runs
the discrete-event simulator on the same plan and asserts

* the measured kernel-phase makespan is never below the static bus
  bound nor below any static link bound (soundness of the bounds);
* the bus moved exactly the mandatory byte count the analyzer charged
  (host traffic + two trips per relayed edge);
* every NoC link moved exactly the bytes the channel-load analysis
  planned for it, and the NoC delivered exactly the planned flow total
  (deterministic routing admits no slack).

Any discrepancy is an ``X001`` error diagnostic — either the bound or
the simulator is wrong, and both are repo code, so that is always a
bug. Agreement yields a single info diagnostic recording how many
bounds were confirmed. The helpers in :mod:`repro.analyze.bounds` are
shared with the rules, so the number checked here is — by construction
— the same number the rule reported.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.plan import InterconnectPlan
from ..sim.systems import SystemParams, simulate_proposed
from .bounds import LaneBounds, lane_bounds, link_name
from .diagnostics import Diagnostic, Severity

#: Rule id under which crosscheck findings are reported.
CROSSCHECK_RULE = "X001"

#: Absolute slack for float comparisons of times (seconds). The bounds
#: are exact cycle counts converted once, so only representation noise
#: is tolerated — not modelling error.
_EPS = 1e-12


def crosscheck_plan(
    plan: InterconnectPlan,
    params: Optional[SystemParams] = None,
    bounds: Optional[LaneBounds] = None,
) -> List[Diagnostic]:
    """Simulate the plan and verify every static lane bound against it."""
    params = params if params is not None else SystemParams()
    bounds = bounds if bounds is not None else lane_bounds(plan, params)
    components: Dict[str, object] = {}
    times = simulate_proposed(
        plan, host_other_s=0.0, params=params, components_out=components
    )
    makespan = times.kernels_s
    out: List[Diagnostic] = []
    confirmed = 0

    def fail(path: str, message: str, **evidence: object) -> None:
        out.append(
            Diagnostic(
                rule=CROSSCHECK_RULE,
                severity=Severity.ERROR,
                path=path,
                message=message,
                evidence=dict(evidence),
            )
        )

    if makespan + _EPS < bounds.bus_bound_s:
        fail(
            "lanes.bus",
            f"simulated makespan {makespan!r}s beats the static bus bound "
            f"{bounds.bus_bound_s!r}s — the bound is unsound",
            makespan_s=makespan, bound_s=bounds.bus_bound_s,
        )
    else:
        confirmed += 1
    for link in sorted(bounds.link_bounds_s):
        bound = bounds.link_bounds_s[link]
        if makespan + _EPS < bound:
            fail(
                f"lanes.{link_name(link)}",
                f"simulated makespan {makespan!r}s beats the static "
                f"{link_name(link)} bound {bound!r}s — the bound is unsound",
                makespan_s=makespan, bound_s=bound,
            )
        else:
            confirmed += 1

    bus = components["bus"]
    measured_bus = int(bus.bytes_moved)  # type: ignore[attr-defined]
    if measured_bus != bounds.bus_bytes:
        fail(
            "lanes.bus",
            f"bus moved {measured_bus} B but the analyzer charged "
            f"{bounds.bus_bytes} B of mandatory traffic",
            measured_bytes=measured_bus, static_bytes=bounds.bus_bytes,
        )
    else:
        confirmed += 1

    noc = components.get("noc")
    if noc is not None:
        links = noc.links  # type: ignore[attr-defined]
        for link, load in sorted(bounds.link_loads.items()):
            moved = int(links[link].bytes_moved) if link in links else 0
            if moved != load:
                fail(
                    f"lanes.{link_name(link)}",
                    f"link {link_name(link)} moved {moved} B, channel-load "
                    f"analysis planned {load} B",
                    measured_bytes=moved, static_bytes=load,
                )
            else:
                confirmed += 1
        stray = sorted(
            link for link, l in links.items()
            if l.bytes_moved > 0 and link not in bounds.link_loads
        )
        for link in stray:
            fail(
                f"lanes.{link_name(link)}",
                f"link {link_name(link)} moved "
                f"{links[link].bytes_moved} B the channel-load analysis "
                "did not plan",
                measured_bytes=int(links[link].bytes_moved),
            )
        delivered = int(noc.bytes_delivered)  # type: ignore[attr-defined]
        planned = (
            bounds.noc_report.total_flow_bytes
            if bounds.noc_report is not None else 0
        )
        if delivered != planned:
            fail(
                "noc",
                f"NoC delivered {delivered} B, plan schedules {planned} B",
                measured_bytes=delivered, static_bytes=planned,
            )
        else:
            confirmed += 1

    if not out:
        out.append(
            Diagnostic(
                rule=CROSSCHECK_RULE,
                severity=Severity.INFO,
                path="",
                message=(
                    f"simulation confirms all {confirmed} static bounds: "
                    f"makespan {makespan * 1e3:.3f} ms respects the bus "
                    "and every link bound, and measured byte counts match "
                    "the static loads exactly"
                ),
                evidence={
                    "confirmed": confirmed,
                    "makespan_s": makespan,
                    "bus_bytes": bounds.bus_bytes,
                },
            )
        )
    return out
