"""Shared static lower-bound arithmetic for lanes of a designed system.

Both the bandwidth rules (``P001``) and the ``--sim-crosscheck``
verifier derive their numbers from these helpers, so the bound a rule
reports is — by construction — the same bound the simulator is checked
against. Every bound here is *sound*: it counts only work no schedule
can avoid (mandatory bytes over a serialized resource at its data
rate), so measured behavior can never legitimately beat it.

* Bus: every host byte crosses the bus once, every relay edge (a
  kernel edge the custom interconnect does not carry) crosses it twice
  (producer→host, host→consumer). The bound charges only the data
  cycles ``ceil(bytes / width)`` — arbitration, addressing and DMA
  setup only add time on top.
* NoC: deterministic routing fixes each link's offered load
  (:func:`repro.sim.noc.analysis.analyze_noc_load`); a link needs at
  least ``ceil(load / link_width)`` cycles to serialize it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.commgraph import CommGraph
from ..core.plan import InterconnectPlan
from ..sim.bus import DEFAULT_BUS_CLOCK
from ..sim.noc.analysis import NocLoadReport, analyze_noc_load
from ..sim.noc.mesh import DEFAULT_NOC_CLOCK
from ..sim.systems import SystemParams

Coord = Tuple[int, int]
LinkKey = Tuple[Coord, Coord]


def relay_edges(plan: InterconnectPlan) -> List[Tuple[str, str, int]]:
    """Kernel edges the custom interconnect does not carry (bus relays)."""
    sm = {(l.producer, l.consumer) for l in plan.sharing}
    noc = (
        {(p, c) for p, c, _ in plan.noc.edges}
        if plan.noc is not None else set()
    )
    return [
        (p, c, b)
        for (p, c), b in plan.graph.kk_edges.items()
        if (p, c) not in sm and (p, c) not in noc
    ]


def bus_demand_bytes(plan: InterconnectPlan) -> int:
    """Mandatory bus bytes of the proposed system.

    Host input + host output for every kernel, plus two trips for each
    relay edge. This equals the simulator's ``bus.bytes_moved`` exactly
    (streamed transfers split but conserve bytes).
    """
    graph = plan.graph
    host = sum(graph.host_in.values()) + sum(graph.host_out.values())
    return host + 2 * sum(b for _, _, b in relay_edges(plan))


def bus_lower_bound_s(nbytes: int, params: SystemParams) -> float:
    """Sound lower bound on bus busy time for ``nbytes`` (data cycles)."""
    if nbytes <= 0:
        return 0.0
    cycles = -(-nbytes // params.bus_width_bytes)
    return DEFAULT_BUS_CLOCK.cycles_to_seconds(cycles)


def noc_link_bound_s(load_bytes: int, params: SystemParams) -> float:
    """Sound lower bound on one NoC link's busy time for its load.

    Degenerate link widths (< 1 byte) yield a zero bound instead of
    raising, so the analyzer stays total and rule ``N003`` gets to
    report the bad parameter as a diagnostic.
    """
    if load_bytes <= 0 or params.noc_link_width_bytes < 1:
        return 0.0
    cycles = -(-load_bytes // params.noc_link_width_bytes)
    return DEFAULT_NOC_CLOCK.cycles_to_seconds(cycles)


def computation_seconds(graph: CommGraph) -> float:
    """Total computation demand ``Σ τ`` of a graph, in seconds."""
    return sum(
        graph.kernel(k).tau_seconds for k in graph.kernel_names()
    )


@dataclass(frozen=True)
class LaneBounds:
    """Every static lane bound of one plan under one parameter set."""

    #: Mandatory bus traffic and its serialization bound.
    bus_bytes: int
    bus_bound_s: float
    #: Per-link NoC loads and bounds (empty without a NoC).
    link_loads: Dict[LinkKey, int]
    link_bounds_s: Dict[LinkKey, float]
    #: Channel-load report the link numbers came from (``None`` = no NoC).
    noc_report: "NocLoadReport | None"
    #: Computation demand of the plan's graph.
    computation_s: float

    @property
    def max_link_bound_s(self) -> float:
        return max(self.link_bounds_s.values(), default=0.0)


def lane_bounds(
    plan: InterconnectPlan, params: SystemParams
) -> LaneBounds:
    """Compute every static lane bound for one plan."""
    noc_report = analyze_noc_load(plan)
    link_loads: Dict[LinkKey, int] = (
        dict(noc_report.link_loads) if noc_report is not None else {}
    )
    demand = bus_demand_bytes(plan)
    return LaneBounds(
        bus_bytes=demand,
        bus_bound_s=bus_lower_bound_s(demand, params),
        link_loads=link_loads,
        link_bounds_s={
            link: noc_link_bound_s(load, params)
            for link, load in link_loads.items()
        },
        noc_report=noc_report,
        computation_s=computation_seconds(plan.graph),
    )


def link_name(link: LinkKey) -> str:
    """Stable human name of a directed link (matches profiler lanes)."""
    return f"noc{link[0]}->{link[1]}"
