"""FPGA device capacity model.

Capacity is what gates duplication ("if ... resource is available") and
NoC growth in Algorithm 1, so the designer needs a device to check
against. The paper's board is the Xilinx ML510 with an xc5vfx130t.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, ResourceBudgetError
from .resources import ResourceCost


@dataclass(frozen=True, slots=True)
class Device:
    """An FPGA device with LUT/register/BRAM capacities."""

    name: str
    luts: int
    regs: int
    bram_bits: int

    def __post_init__(self) -> None:
        if min(self.luts, self.regs, self.bram_bits) <= 0:
            raise ConfigurationError(f"device {self.name!r} has non-positive capacity")

    def fits(self, cost: ResourceCost, utilization_cap: float = 1.0) -> bool:
        """Whether ``cost`` fits within ``utilization_cap`` of capacity.

        Real designs never route at 100 % utilization; callers typically
        pass 0.8–0.9.
        """
        if not (0.0 < utilization_cap <= 1.0):
            raise ConfigurationError(
                f"utilization_cap must be in (0, 1], got {utilization_cap}"
            )
        return (
            cost.luts <= self.luts * utilization_cap
            and cost.regs <= self.regs * utilization_cap
        )

    def require(self, cost: ResourceCost, utilization_cap: float = 1.0) -> None:
        """Raise :class:`ResourceBudgetError` when ``cost`` does not fit."""
        if not self.fits(cost, utilization_cap):
            raise ResourceBudgetError(
                f"{cost.luts} LUTs / {cost.regs} regs exceed "
                f"{utilization_cap:.0%} of device {self.name} "
                f"({self.luts} LUTs / {self.regs} regs)"
            )

    def utilization(self, cost: ResourceCost) -> float:
        """Max of LUT and register utilization fractions."""
        return max(cost.luts / self.luts, cost.regs / self.regs)


#: Virtex-5 FX130T (ML510 board): 81 920 6-input LUTs and flip-flops,
#: 298 × 36 Kb block RAMs.
XC5VFX130T = Device("xc5vfx130t", luts=81920, regs=81920, bram_bits=298 * 36 * 1024)
