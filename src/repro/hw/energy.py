"""Power and energy model (the paper's Fig. 9 methodology).

The paper estimates power with XPower Analyzer and reports that baseline
and proposed systems draw "almost identical" power, with a minor increase
for the proposed system due to the interconnect, so energy — power times
execution time — tracks execution time. We reproduce that method with an
affine power model::

    P = P_static + c_lut · LUTs + c_reg · registers

Coefficient provenance: a Virtex-5 FX130T draws ~1.5 W static at nominal
conditions (Xilinx XPE); dynamic power of logic at 100 MHz and typical
toggle rates is on the order of tens of microwatts per utilized LUT/FF.
The absolute wattage does not matter for Fig. 9, which is normalized to
the baseline — only the property that a few thousand extra interconnect
LUTs move power by a few percent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import percent_saving
from .resources import ResourceCost


@dataclass(frozen=True, slots=True)
class EnergyModel:
    """Affine resource-based power model plus transfer activity energy.

    The per-transfer coefficients model the *dynamic* switching energy
    of data movement: ~60 pJ per byte crossing the PLB (wide off-fabric
    wires, arbitration logic) and ~15 pJ per byte-hop on the NoC (short
    local links). They refine, not replace, the resource-based estimate:
    total transfer energy stays in the single-digit-percent range of the
    static+leakage term, preserving the paper's "power is almost
    identical" observation.
    """

    p_static_w: float = 2.5
    w_per_lut: float = 10e-6
    w_per_reg: float = 5e-6
    j_per_bus_byte: float = 60e-12
    j_per_noc_byte_hop: float = 15e-12

    def __post_init__(self) -> None:
        if min(
            self.p_static_w, self.w_per_lut, self.w_per_reg,
            self.j_per_bus_byte, self.j_per_noc_byte_hop,
        ) < 0:
            raise ConfigurationError("power coefficients must be non-negative")

    def power_w(self, resources: ResourceCost) -> float:
        """Estimated total power draw of a system (Watts)."""
        return (
            self.p_static_w
            + self.w_per_lut * resources.luts
            + self.w_per_reg * resources.regs
        )

    def energy_j(self, resources: ResourceCost, exec_time_s: float) -> float:
        """Energy for one application run (Joules)."""
        if exec_time_s < 0:
            raise ConfigurationError(f"negative execution time {exec_time_s}")
        return self.power_w(resources) * exec_time_s

    def transfer_energy_j(
        self, bus_bytes: float, noc_byte_hops: float = 0.0
    ) -> float:
        """Dynamic energy of the run's data movement (Joules)."""
        if bus_bytes < 0 or noc_byte_hops < 0:
            raise ConfigurationError("negative transfer activity")
        return (
            self.j_per_bus_byte * bus_bytes
            + self.j_per_noc_byte_hop * noc_byte_hops
        )

    def energy_detailed_j(
        self,
        resources: ResourceCost,
        exec_time_s: float,
        bus_bytes: float,
        noc_byte_hops: float = 0.0,
    ) -> float:
        """Resource-time energy plus transfer activity energy."""
        return self.energy_j(resources, exec_time_s) + self.transfer_energy_j(
            bus_bytes, noc_byte_hops
        )


@dataclass(frozen=True, slots=True)
class EnergyReport:
    """Baseline-vs-proposed energy comparison for one application."""

    app: str
    baseline_power_w: float
    proposed_power_w: float
    baseline_energy_j: float
    proposed_energy_j: float

    @property
    def normalized_energy(self) -> float:
        """Proposed energy normalized to baseline (Fig. 9's y-axis)."""
        if self.baseline_energy_j <= 0:
            raise ConfigurationError(f"non-positive baseline energy for {self.app}")
        return self.proposed_energy_j / self.baseline_energy_j

    @property
    def saving_percent(self) -> float:
        """Energy saved by the proposed system, in percent."""
        return percent_saving(self.baseline_energy_j, self.proposed_energy_j)


def compare_energy(
    app: str,
    model: EnergyModel,
    baseline_resources: ResourceCost,
    proposed_resources: ResourceCost,
    baseline_time_s: float,
    proposed_time_s: float,
) -> EnergyReport:
    """Build the Fig. 9 comparison for one application."""
    return EnergyReport(
        app=app,
        baseline_power_w=model.power_w(baseline_resources),
        proposed_power_w=model.power_w(proposed_resources),
        baseline_energy_j=model.energy_j(baseline_resources, baseline_time_s),
        proposed_energy_j=model.energy_j(proposed_resources, proposed_time_s),
    )


def compare_energy_simulated(
    app: str,
    model: EnergyModel,
    baseline_resources: ResourceCost,
    proposed_resources: ResourceCost,
    baseline_sim: "SimulatedTimesLike",
    proposed_sim: "SimulatedTimesLike",
) -> EnergyReport:
    """Fig. 9 comparison with measured transfer activity included.

    ``*_sim`` objects need ``application_s`` plus ``extras`` carrying
    ``bus_bytes`` and (for the proposed system) ``noc_byte_hops`` — the
    simulators populate both. The activity term charges the baseline for
    moving every kernel byte over the bus twice and the proposed system
    for the much shorter NoC paths, slightly *widening* the energy gap
    relative to the pure resource-time model.
    """
    return EnergyReport(
        app=app,
        baseline_power_w=model.power_w(baseline_resources),
        proposed_power_w=model.power_w(proposed_resources),
        baseline_energy_j=model.energy_detailed_j(
            baseline_resources,
            baseline_sim.application_s,
            baseline_sim.extras.get("bus_bytes", 0.0),
        ),
        proposed_energy_j=model.energy_detailed_j(
            proposed_resources,
            proposed_sim.application_s,
            proposed_sim.extras.get("bus_bytes", 0.0),
            proposed_sim.extras.get("noc_byte_hops", 0.0),
        ),
    )
