"""FPGA hardware models: resources (Table II/IV), frequency, energy.

The paper synthesizes on a Xilinx xc5vfx130t with ISE 13.2 and reports
LUT/register utilization per interconnect component (Table II) and per
whole system (Table IV), plus XPower-based energy (Fig. 9). This package
replaces synthesis and power analysis with calibrated additive models:
component costs are taken directly from the paper's Table II; whole-system
estimates sum a platform base, the kernel footprints and the interconnect
bill of materials.
"""

from .device import Device, XC5VFX130T
from .resources import (
    COMPONENT_LIBRARY,
    ComponentKind,
    ComponentSpec,
    ResourceCost,
)
from .frequency import achievable_frequency, check_timing
from .synthesis import SynthesisEstimate, estimate_baseline, estimate_system
from .energy import EnergyModel, EnergyReport

__all__ = [
    "Device",
    "XC5VFX130T",
    "ResourceCost",
    "ComponentKind",
    "ComponentSpec",
    "COMPONENT_LIBRARY",
    "achievable_frequency",
    "check_timing",
    "SynthesisEstimate",
    "estimate_system",
    "estimate_baseline",
    "EnergyModel",
    "EnergyReport",
]
