"""Whole-system resource estimation (the paper's Table IV).

A synthesized accelerator system is modelled additively::

    total = platform_base + bus + Σ kernel footprints + interconnect BOM

``platform_base`` covers everything Table IV's baseline column contains
beyond the bus and the kernels: the host interface, SDRAM controller,
UART/timer/interrupt and assorted glue, which the paper's ML510 reference
design instantiates for every system variant. Its value is a calibration
constant chosen below the smallest baseline in Table IV (KLT).

The estimator is intentionally decoupled from :mod:`repro.core.plan` — it
consumes a plain ``{ComponentKind: count}`` mapping so the dependency
points one way (core → hw).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

from ..errors import ConfigurationError
from .resources import COMPONENT_LIBRARY, ComponentKind, ResourceCost

#: Host interface + memory controller + I/O glue present in every system.
PLATFORM_BASE = ResourceCost(2200, 2800)


@dataclass(frozen=True, slots=True)
class SynthesisEstimate:
    """Resource estimate of one assembled system."""

    #: System label ("baseline", "proposed", "noc_only", ...).
    label: str
    base: ResourceCost
    kernels: ResourceCost
    interconnect: ResourceCost
    #: Per component-kind interconnect breakdown (for reports/Fig. 8).
    breakdown: Mapping[ComponentKind, Tuple[int, ResourceCost]] = field(
        default_factory=dict
    )

    @property
    def total(self) -> ResourceCost:
        """Base + kernels + interconnect."""
        return self.base + self.kernels + self.interconnect

    @property
    def custom_interconnect(self) -> ResourceCost:
        """The custom interconnect only: everything beyond the bus.

        Every system variant keeps the pre-existing PLB for host
        communication, so Fig. 8's "resources used for interconnect"
        counts the components Algorithm 1 *adds* (crossbars, routers,
        adapters, muxes, NoC glue), not the bus.
        """
        bus = self.breakdown.get(ComponentKind.BUS)
        if bus is None:
            return self.interconnect
        return self.interconnect - bus[1]

    @property
    def interconnect_over_kernels(self) -> float:
        """Fig. 8's metric: custom-interconnect LUTs / kernel LUTs.

        Raises when there are no kernel resources to normalize by.
        """
        if self.kernels.luts <= 0:
            raise ConfigurationError(
                f"system {self.label!r} has no kernel resources to normalize by"
            )
        return self.custom_interconnect.luts / self.kernels.luts


def _sum_kernel_costs(kernel_costs: Iterable[ResourceCost]) -> ResourceCost:
    total = ResourceCost.zero()
    for cost in kernel_costs:
        total = total + cost
    return total


def interconnect_cost(
    counts: Mapping[ComponentKind, int],
) -> Tuple[ResourceCost, Dict[ComponentKind, Tuple[int, ResourceCost]]]:
    """Total cost and per-kind breakdown of an interconnect BOM."""
    total = ResourceCost.zero()
    breakdown: Dict[ComponentKind, Tuple[int, ResourceCost]] = {}
    for kind, count in counts.items():
        if count < 0:
            raise ConfigurationError(f"negative count for {kind}: {count}")
        if count == 0:
            continue
        cost = COMPONENT_LIBRARY[kind].cost * count
        breakdown[kind] = (count, cost)
        total = total + cost
    return total, breakdown


def estimate_system(
    label: str,
    kernel_costs: Iterable[ResourceCost],
    component_counts: Mapping[ComponentKind, int],
    base: ResourceCost = PLATFORM_BASE,
) -> SynthesisEstimate:
    """Estimate a full system from its kernels and interconnect BOM.

    ``component_counts`` must include the bus when the system has one
    (every system in the paper keeps the PLB for host communication).
    """
    total_ic, breakdown = interconnect_cost(component_counts)
    return SynthesisEstimate(
        label=label,
        base=base,
        kernels=_sum_kernel_costs(kernel_costs),
        interconnect=total_ic,
        breakdown=breakdown,
    )


def estimate_baseline(
    kernel_costs: Iterable[ResourceCost],
    base: ResourceCost = PLATFORM_BASE,
) -> SynthesisEstimate:
    """The bus-only baseline system: base + bus + kernels."""
    return estimate_system(
        "baseline", kernel_costs, {ComponentKind.BUS: 1}, base=base
    )
