"""Achievable-frequency model for assembled systems.

A synthesized system can run no faster than its slowest component; the
paper's kernels run at 100 MHz, which every Table II component meets (the
router's 150 MHz is the binding constraint on the interconnect side).
These helpers compute the binding constraint and validate clock choices.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..errors import ConfigurationError
from .resources import COMPONENT_LIBRARY, ComponentKind


def achievable_frequency(kinds: Iterable[ComponentKind]) -> Optional[float]:
    """Max clock (Hz) at which all listed components close timing.

    Returns ``None`` when the list contains no frequency-limited
    component (e.g. only combinational crossbars).
    """
    fmaxes = [
        COMPONENT_LIBRARY[k].fmax_hz
        for k in kinds
        if COMPONENT_LIBRARY[k].fmax_hz is not None
    ]
    return min(fmaxes) if fmaxes else None


def binding_component(kinds: Iterable[ComponentKind]) -> Optional[Tuple[ComponentKind, float]]:
    """The component that limits the clock, with its fmax (Hz)."""
    best: Optional[Tuple[ComponentKind, float]] = None
    for k in set(kinds):
        fmax = COMPONENT_LIBRARY[k].fmax_hz
        if fmax is None:
            continue
        if best is None or fmax < best[1]:
            best = (k, fmax)
    return best


def check_timing(kinds: Iterable[ComponentKind], clock_hz: float) -> None:
    """Raise when ``clock_hz`` exceeds the slowest component's fmax."""
    if clock_hz <= 0:
        raise ConfigurationError(f"clock must be positive, got {clock_hz}")
    limit = achievable_frequency(kinds)
    if limit is not None and clock_hz > limit:
        binding = binding_component(kinds)
        assert binding is not None
        raise ConfigurationError(
            f"requested clock {clock_hz / 1e6:.1f} MHz exceeds fmax "
            f"{limit / 1e6:.1f} MHz of component {binding[0].value}"
        )
