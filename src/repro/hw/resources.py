"""FPGA resource costs — the paper's Table II component library.

Table II of the paper (xc5vfx130t, ISE 13.2):

=====================  ==========  ==========  ==============
Component              LUTs        Registers   Max frequency
=====================  ==========  ==========  ==============
Bus (PLB)              1048        188         345.8 MHz
Crossbar (2×2)         201         200         N/A (combinational)
NoC router             309         353         150 MHz
NA for HW accelerator  396         426         422.5 MHz
NA for local memory    60          114         874.2 MHz
=====================  ==========  ==========  ==============

Two components the paper uses but does not tabulate get estimated costs,
documented here so downstream numbers are reproducible:

* ``MUX`` — the multiplexer inserted when a BRAM local memory has more
  accessors than its two ports (Section V-B, JPEG's duplicated
  ``huff_ac_dec`` kernels). Estimated at 80 LUTs / 60 registers — a
  32-bit wide 3:1 mux with registered select, sized from comparable
  Virtex-5 primitives.
* ``NOC_GLUE`` — the NoC clock/reset/configuration infrastructure that
  appears once per NoC instance. Estimated at 489 LUTs / 453 registers,
  back-solved from the paper's own Table IV: KLT's NoC-only system minus
  its baseline minus 4 routers and 4 adapters leaves exactly this glue.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigurationError
from ..units import mhz


@dataclass(frozen=True, slots=True)
class ResourceCost:
    """An FPGA area cost in LUTs and registers (non-negative)."""

    luts: int
    regs: int

    def __post_init__(self) -> None:
        if self.luts < 0 or self.regs < 0:
            raise ConfigurationError(
                f"resource cost must be non-negative, got {self.luts}/{self.regs}"
            )

    def __add__(self, other: "ResourceCost") -> "ResourceCost":
        return ResourceCost(self.luts + other.luts, self.regs + other.regs)

    def __mul__(self, count: int) -> "ResourceCost":
        if count < 0:
            raise ConfigurationError(f"cannot multiply cost by negative {count}")
        return ResourceCost(self.luts * count, self.regs * count)

    __rmul__ = __mul__

    def __sub__(self, other: "ResourceCost") -> "ResourceCost":
        return ResourceCost(self.luts - other.luts, self.regs - other.regs)

    @staticmethod
    def zero() -> "ResourceCost":
        """The additive identity."""
        return ResourceCost(0, 0)


class ComponentKind(enum.Enum):
    """Interconnect component types of the proposed architecture."""

    BUS = "bus"
    CROSSBAR = "crossbar"
    ROUTER = "noc_router"
    NA_KERNEL = "na_hw_accelerator"
    NA_MEMORY = "na_local_memory"
    MUX = "mux"
    NOC_GLUE = "noc_glue"


@dataclass(frozen=True, slots=True)
class ComponentSpec:
    """Cost and timing of one interconnect component."""

    kind: ComponentKind
    cost: ResourceCost
    #: Maximum achievable clock in Hz; ``None`` for purely combinational
    #: components (the crossbar, which "does not introduce any
    #: communication overhead").
    fmax_hz: Optional[float]
    #: Where the number comes from ("Table II" or an estimate note).
    provenance: str


#: The component library (see module docstring for provenance).
COMPONENT_LIBRARY: Dict[ComponentKind, ComponentSpec] = {
    ComponentKind.BUS: ComponentSpec(
        ComponentKind.BUS, ResourceCost(1048, 188), mhz(345.8), "Table II"
    ),
    ComponentKind.CROSSBAR: ComponentSpec(
        ComponentKind.CROSSBAR, ResourceCost(201, 200), None, "Table II"
    ),
    ComponentKind.ROUTER: ComponentSpec(
        ComponentKind.ROUTER, ResourceCost(309, 353), mhz(150.0), "Table II"
    ),
    ComponentKind.NA_KERNEL: ComponentSpec(
        ComponentKind.NA_KERNEL, ResourceCost(396, 426), mhz(422.5), "Table II"
    ),
    ComponentKind.NA_MEMORY: ComponentSpec(
        ComponentKind.NA_MEMORY, ResourceCost(60, 114), mhz(874.2), "Table II"
    ),
    ComponentKind.MUX: ComponentSpec(
        ComponentKind.MUX,
        ResourceCost(80, 60),
        None,
        "estimate: 32-bit 3:1 BRAM-port mux (not tabulated in the paper)",
    ),
    ComponentKind.NOC_GLUE: ComponentSpec(
        ComponentKind.NOC_GLUE,
        ResourceCost(489, 453),
        mhz(150.0),
        "estimate: back-solved from Table IV (KLT NoC-only column)",
    ),
}


def component_cost(kind: ComponentKind) -> ResourceCost:
    """Cost of one component instance from the library."""
    return COMPONENT_LIBRARY[kind].cost


#: Cost of the four routers the paper compares against the shared-memory
#: solution ("HW resources usage for four routers is 5× larger than the
#: HW resources usage for shared local memory solution").
FOUR_ROUTER_COST = component_cost(ComponentKind.ROUTER) * 4
