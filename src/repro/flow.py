"""End-to-end experiment flow: profile → design → estimate → simulate.

:func:`run_experiment` reproduces the paper's full methodology for one
application:

1. execute the instrumented application and extract the QUAD-style
   communication profile;
2. calibrate the platform quantities (see :mod:`repro.apps.calibration`);
3. run Algorithm 1 to design the custom interconnect, plus the paper's
   NoC-only comparison design;
4. evaluate analytically (Eq. 2 + Δ model) and by discrete-event
   simulation (contention included);
5. estimate resources (Table IV) and energy (Fig. 9).

:func:`run_all` does this for all four applications and is what the
benchmark harness calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from .analyze.diagnostics import AnalysisReport
from .apps import fit_application, get_application
from .apps.calibration import FittedApplication
from .apps.registry import APP_NAMES
from .core.analytic import AnalyticModel, SpeedupPair, SystemTimes
from .core.designer import DesignConfig, design_interconnect
from .core.plan import InterconnectPlan
from .errors import ConfigurationError
from .hw.energy import EnergyModel, EnergyReport, compare_energy
from .hw.synthesis import SynthesisEstimate, estimate_baseline, estimate_system
from .obs.profile.recorder import TimeseriesRecorder
from .obs.profile.report import SimulationProfile, build_profile
from .obs.trace import NULL_TRACER, Tracer, active
from .sim.systems import (
    SimulatedTimes,
    SystemParams,
    simulate_baseline,
    simulate_proposed,
    simulate_software,
)

#: :class:`DesignConfig` fields callers may override per experiment.
#: ``theta_s_per_byte`` and ``stream_overhead_s`` are excluded — they
#: are calibrated from the platform/application, not free knobs.
DESIGN_TOGGLE_FIELDS = frozenset({
    "enable_duplication",
    "enable_sharing",
    "enable_noc",
    "enable_adaptive_mapping",
    "enable_pipelining",
    "noc_topology",
    "utilization_cap",
    "max_duplications",
})

#: Where the communication graph comes from: a profiled execution
#: (``trace``, the default) or the static analyzer (``static``, which
#: never runs the application — see :mod:`repro.static`).
GRAPH_SOURCES = ("trace", "static")


@dataclass(frozen=True)
class ExperimentResult:
    """Everything the benches need for one application."""

    name: str
    fitted: FittedApplication
    plan: InterconnectPlan
    noc_only_plan: InterconnectPlan
    # Analytic timings.
    analytic_software: SystemTimes
    analytic_baseline: SystemTimes
    analytic_proposed: SystemTimes
    # Simulated timings (None when simulation was skipped).
    sim_software: Optional[SimulatedTimes]
    sim_baseline: Optional[SimulatedTimes]
    sim_proposed: Optional[SimulatedTimes]
    # Synthesis estimates (Table IV columns).
    synth_baseline: SynthesisEstimate
    synth_proposed: SynthesisEstimate
    synth_noc_only: SynthesisEstimate
    # Energy comparison (Fig. 9).
    energy: EnergyReport
    #: Simulation-time profiles keyed by system label ("baseline",
    #: "proposed"); empty unless ``run_experiment(profile=True)``.
    profiles: Mapping[str, "SimulationProfile"] = field(default_factory=dict)
    #: Static analysis of the proposed plan; ``None`` unless
    #: ``run_experiment(lint=True)``.
    lint: Optional["AnalysisReport"] = None

    # -- speed-up accessors ---------------------------------------------------
    @property
    def baseline_vs_sw(self) -> SpeedupPair:
        """Fig. 4 bars."""
        return AnalyticModel.compare(self.analytic_software, self.analytic_baseline)

    @property
    def proposed_vs_sw(self) -> SpeedupPair:
        """Table III columns 2–3."""
        return AnalyticModel.compare(self.analytic_software, self.analytic_proposed)

    @property
    def proposed_vs_baseline(self) -> SpeedupPair:
        """Table III columns 4–5."""
        return AnalyticModel.compare(self.analytic_baseline, self.analytic_proposed)

    @property
    def comm_comp_ratio(self) -> float:
        """Fig. 4's baseline communication/computation ratio."""
        return self.analytic_baseline.comm_comp_ratio


def _as_tracer(
    trace: Union[Tracer, str, Path, None]
) -> Tuple[Tracer, Optional[Path]]:
    """Normalize :func:`run_experiment`'s ``trace`` argument.

    Returns the tracer to use and, when ``trace`` was a filesystem path,
    where to write the Chrome trace afterwards.
    """
    if trace is None:
        return NULL_TRACER, None
    if isinstance(trace, (str, Path)):
        return Tracer(), Path(trace)
    return active(trace), None


def run_experiment(
    name: str,
    scale: int = 1,
    seed: int = 2014,
    params: SystemParams = SystemParams(),
    energy_model: EnergyModel = EnergyModel(),
    simulate: bool = True,
    design_overrides: Optional[Mapping[str, Any]] = None,
    trace: Union[Tracer, str, Path, None] = None,
    profile: bool = False,
    profile_buckets: int = 64,
    lint: bool = False,
    sim_backend: Optional[str] = None,
    graph_source: str = "trace",
) -> ExperimentResult:
    """Full paper methodology for one application.

    ``design_overrides`` optionally replaces :class:`DesignConfig`
    toggles (any field in :data:`DESIGN_TOGGLE_FIELDS`); the calibrated
    ``θ`` and stream overhead are never overridable.

    ``trace`` opts into observability: pass a
    :class:`~repro.obs.trace.Tracer` to collect spans, or a path to
    write a Chrome ``trace_event`` JSON (load it at ``chrome://tracing``
    or https://ui.perfetto.dev). ``None`` (default) uses the no-op
    tracer — zero overhead, and outputs are byte-identical either way.

    ``profile`` attaches a :class:`~repro.obs.profile.TimeseriesRecorder`
    to the baseline and proposed simulations and publishes the built
    :class:`~repro.obs.profile.report.SimulationProfile` objects on
    ``result.profiles``. Profiling is pure bookkeeping: it never changes
    scheduling, so makespans are bit-identical with it on or off.

    ``lint`` additionally runs the :mod:`repro.analyze` static rule
    engine over the proposed plan and publishes the
    :class:`~repro.analyze.AnalysisReport` on ``result.lint``.

    ``sim_backend`` selects the simulation engine (``reference``,
    ``fast`` or ``auto``; see :mod:`repro.sim.backend`). Both engines
    are proven byte-identical by the conformance suite, so the choice
    never changes results — only how fast they arrive. ``None`` defers
    to the process default / ``REPRO_SIM_BACKEND`` / ``reference``.

    ``graph_source`` selects how the communication graph is derived:
    ``"trace"`` (default) profiles an instrumented execution;
    ``"static"`` analyzes the app's declarative task-graph description
    (:mod:`repro.static`) and never executes a kernel — the cheap path
    for served designs. The two agree byte-exactly on every
    deterministic edge (proven by :mod:`repro.static.crosscheck`), so
    plans are identical wherever the graphs agree.
    """
    tracer, trace_path = _as_tracer(trace)
    if graph_source not in GRAPH_SOURCES:
        raise ConfigurationError(
            f"unknown graph_source {graph_source!r} "
            f"(allowed: {', '.join(GRAPH_SOURCES)})"
        )
    # Resolve eagerly: unknown names fail here, before any work is done.
    from .sim.backend import resolve_backend

    backend = resolve_backend(sim_backend)

    with tracer.span("experiment", app=name, scale=scale, seed=seed):
        with tracer.span("profile", app=name):
            app = get_application(name, scale=scale, seed=seed)
            theta = params.theta_s_per_byte()
        with tracer.span("fit", app=name):
            if graph_source == "static":
                from .static.fit import fit_static

                fitted = fit_static(app, theta)
            else:
                fitted = fit_application(app, theta)

        config = DesignConfig(
            theta_s_per_byte=theta,
            stream_overhead_s=fitted.stream_overhead_s,
        )
        if design_overrides:
            unknown = set(design_overrides) - DESIGN_TOGGLE_FIELDS
            if unknown:
                raise ConfigurationError(
                    f"unknown design toggles: {sorted(unknown)} "
                    f"(allowed: {sorted(DESIGN_TOGGLE_FIELDS)})"
                )
            config = replace(config, **dict(design_overrides))
        with tracer.span("design", app=name):
            plan = design_interconnect(name, fitted.graph, config, tracer=tracer)
        with tracer.span("design.noc_only", app=name):
            noc_only_plan = design_interconnect(
                f"{name}-noc-only", fitted.graph, config.noc_only(), tracer=tracer
            )

        lint_report: Optional[AnalysisReport] = None
        if lint:
            from .analyze import analyze_plan

            with tracer.span("lint", app=name):
                lint_report = analyze_plan(plan, params)

        with tracer.span("analytic", app=name):
            model = AnalyticModel(fitted.graph, theta, fitted.host_other_s)
            t_sw = model.software()
            t_base = model.baseline()
            t_prop = model.proposed(plan)

        sim_sw = sim_base = sim_prop = None
        profiles: Dict[str, SimulationProfile] = {}
        if simulate:
            rec_base = TimeseriesRecorder() if profile else None
            rec_prop = TimeseriesRecorder() if profile else None
            with tracer.span("simulate", app=name, system="software"):
                sim_sw = simulate_software(fitted.graph, fitted.host_other_s)
            with tracer.span("simulate", app=name, system="baseline"):
                sim_base = simulate_baseline(
                    fitted.graph, fitted.host_other_s, params,
                    recorder=rec_base, backend=backend,
                )
            with tracer.span("simulate", app=name, system="proposed"):
                sim_prop = simulate_proposed(
                    plan, fitted.host_other_s, params, recorder=rec_prop,
                    backend=backend,
                )
            if profile:
                with tracer.span("profile.build", app=name):
                    profiles["baseline"] = build_profile(
                        name, sim_base, rec_base, fitted.graph,
                        buckets=profile_buckets, mode="mediated",
                    )
                    profiles["proposed"] = build_profile(
                        name, sim_prop, rec_prop, plan.graph,
                        buckets=profile_buckets, mode="direct",
                    )

        with tracer.span("synthesis", app=name):
            original_costs = [
                fitted.graph.kernel(k).resources
                for k in fitted.graph.kernel_names()
            ]
            synth_base = estimate_baseline(original_costs)
            synth_prop = estimate_system(
                "proposed",
                [plan.graph.kernel(k).resources for k in plan.graph.kernel_names()],
                plan.component_counts(),
            )
            synth_noc = estimate_system(
                "noc_only",
                [
                    noc_only_plan.graph.kernel(k).resources
                    for k in noc_only_plan.graph.kernel_names()
                ],
                noc_only_plan.component_counts(),
            )

        with tracer.span("energy", app=name):
            energy = compare_energy(
                name,
                energy_model,
                baseline_resources=synth_base.total,
                proposed_resources=synth_prop.total,
                baseline_time_s=t_base.application_s,
                proposed_time_s=t_prop.application_s,
            )

    if trace_path is not None:
        tracer.write_chrome_trace(trace_path)

    return ExperimentResult(
        name=name,
        fitted=fitted,
        plan=plan,
        noc_only_plan=noc_only_plan,
        analytic_software=t_sw,
        analytic_baseline=t_base,
        analytic_proposed=t_prop,
        sim_software=sim_sw,
        sim_baseline=sim_base,
        sim_proposed=sim_prop,
        synth_baseline=synth_base,
        synth_proposed=synth_prop,
        synth_noc_only=synth_noc,
        energy=energy,
        profiles=profiles,
        lint=lint_report,
    )


#: Canonical column order of :func:`result_summary` — consumers that
#: rebuild rows from JSON (where key order is lost) re-impose this so
#: CSV output is byte-stable across fresh, cached, and pooled execution.
SUMMARY_FIELDS = (
    "solution",
    "baseline_kernels_ms",
    "proposed_kernels_ms",
    "speedup_app",
    "speedup_kernels",
    "comm_comp_ratio",
    "proposed_luts",
    "noc_only_luts",
    "energy_saving_pct",
    "sim_speedup_app",
    "sim_speedup_kernels",
)


def result_summary(result: ExperimentResult) -> Dict[str, Any]:
    """Flatten an :class:`ExperimentResult` into one JSON/CSV-safe dict.

    This is the shared summary shape: :meth:`repro.sweep.SweepPoint.record`
    appends it to the grid coordinates, and the service layer caches it
    as the canonical job result (a full :class:`ExperimentResult` does
    not survive a JSON round-trip; this summary does, bit-exactly).
    """
    r = result
    row: Dict[str, Any] = {
        "solution": r.plan.solution_label(),
        "baseline_kernels_ms": r.analytic_baseline.kernels_s * 1e3,
        "proposed_kernels_ms": r.analytic_proposed.kernels_s * 1e3,
        "speedup_app": r.proposed_vs_baseline.application,
        "speedup_kernels": r.proposed_vs_baseline.kernels,
        "comm_comp_ratio": r.analytic_baseline.comm_comp_ratio,
        "proposed_luts": r.synth_proposed.total.luts,
        "noc_only_luts": r.synth_noc_only.total.luts,
        "energy_saving_pct": r.energy.saving_percent,
    }
    if r.sim_proposed is not None and r.sim_baseline is not None:
        app_s, kern_s = r.sim_proposed.speedup_over(r.sim_baseline)
        row["sim_speedup_app"] = app_s
        row["sim_speedup_kernels"] = kern_s
    return row


def to_deployment(result: ExperimentResult) -> "AppDeployment":
    """Adapt an experiment result for the reconfiguration scheduler.

    The reconfigurable module is everything application-specific —
    kernels plus the custom interconnect; the platform base and the bus
    are static and shared across applications.
    """
    from .reconfig.scheduler import AppDeployment

    est = result.synth_proposed
    return AppDeployment(
        name=result.name,
        module=est.kernels + est.custom_interconnect,
        exec_seconds=result.analytic_proposed.application_s,
    )


def run_all(
    scale: int = 1,
    seed: int = 2014,
    params: SystemParams = SystemParams(),
    simulate: bool = True,
    names: Tuple[str, ...] = APP_NAMES,
) -> Dict[str, ExperimentResult]:
    """Run every application; keyed by name, evaluation order."""
    return {
        name: run_experiment(
            name, scale=scale, seed=seed, params=params, simulate=simulate
        )
        for name in names
    }
