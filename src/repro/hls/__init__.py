"""DWARV-like high-level-synthesis estimation (the paper's ref. [38]).

The paper generates its kernels with the DWARV C-to-VHDL compiler; this
package substitutes the *estimation* side of such a tool: given a
loop-nest description of a kernel (a small dataflow IR), it predicts the
kernel's computation latency (``τ`` in cycles) and its LUT/register
footprint, the two quantities the interconnect designer consumes.

The default reproduction flow uses calibrated values (fitted to the
paper's published numbers — see DESIGN.md §6); the HLS estimator is the
path a *new* application takes when no measured platform numbers exist:

    ir = Loop(trip=4096, body=Block([(Op.MUL, 2), (Op.ADD, 2)]), pipelined=True)
    tau, resources = estimate_kernel(KernelIR("mac", ir))
"""

from .ir import Block, KernelIR, Loop, Op
from .latency import OP_LATENCY, OP_RESOURCES, OpCost
from .estimate import HlsEstimate, estimate_kernel, estimate_kernel_spec

__all__ = [
    "Op",
    "Block",
    "Loop",
    "KernelIR",
    "OpCost",
    "OP_LATENCY",
    "OP_RESOURCES",
    "HlsEstimate",
    "estimate_kernel",
    "estimate_kernel_spec",
]
