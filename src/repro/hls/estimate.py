"""Latency and area estimation over the kernel IR.

Scheduling model (deliberately DWARV-simple):

* a straight-line block issues one operation per cycle per allocated
  unit of its kind; its latency is the *serial* sum of operation
  latencies divided by the allocation (list scheduling bound), at least
  the longest single operation;
* a non-pipelined loop costs ``trip × body``;
* a pipelined loop costs ``depth + (trip − 1) × II`` where depth is the
  body latency and the initiation interval is the declared ``ii``
  stretched by memory-port pressure (two BRAM ports per local memory:
  more than two accesses per iteration serialize);
* unrolling divides effective trips and multiplies operator instances.

Area allocates one operator instance per kind per (unrolled) loop body
— the time-multiplexed allocation HLS tools default to — plus a control
FSM proportional to the structure size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.kernel import KernelSpec
from ..errors import ConfigurationError
from ..hw.resources import ResourceCost
from ..units import HOST_CLOCK, KERNEL_CLOCK
from .ir import Block, KernelIR, Loop, Op
from .latency import OP_LATENCY, OP_RESOURCES

#: Dual-ported BRAM: memory operations per cycle per local memory.
MEMORY_PORTS = 2
#: Control FSM area per loop / per op-kind present.
FSM_PER_LOOP = ResourceCost(45, 60)
FSM_PER_OPKIND = ResourceCost(12, 18)
#: How much faster the 400 MHz host executes one IR op, amortized
#: (superscalar issue vs abstract op counts).
HOST_OPS_PER_CYCLE = 1.2


@dataclass(frozen=True)
class HlsEstimate:
    """The estimator's output for one kernel."""

    name: str
    tau_cycles: float
    resources: ResourceCost
    #: Estimated software cycles on the 400 MHz host (same IR).
    sw_cycles: float

    @property
    def hw_speedup(self) -> float:
        """Predicted kernel-compute speed-up over software."""
        tau_s = KERNEL_CLOCK.cycles_to_seconds(self.tau_cycles)
        sw_s = HOST_CLOCK.cycles_to_seconds(self.sw_cycles)
        if tau_s <= 0:
            raise ConfigurationError(f"kernel {self.name}: zero latency")
        return sw_s / tau_s


def _memory_pressure_ii(body: Block, ii: int) -> int:
    """Stretch the initiation interval by BRAM-port pressure."""
    mem_ops = sum(c for op, c in body.ops if op in (Op.LOAD, Op.STORE))
    return max(ii, math.ceil(mem_ops / MEMORY_PORTS)) if mem_ops else ii


def _block_latency(block: Block) -> float:
    """Latency of one execution of a block (cycles)."""
    latency = 0.0
    for op, count in block.ops:
        latency += OP_LATENCY[op] * count
    for loop in block.loops:
        latency += _loop_latency(loop)
    return latency


def _loop_latency(loop: Loop) -> float:
    trips = math.ceil(loop.trip / loop.unroll)
    depth = _block_latency(loop.body) * loop.unroll if loop.unroll > 1 else (
        _block_latency(loop.body)
    )
    if trips == 0 or depth == 0:
        return 0.0
    if loop.pipelined:
        ii = _memory_pressure_ii(loop.body, loop.ii) * loop.unroll
        # Unrolled pipelined loops issue `unroll` iterations per II
        # window; pressure already folded in above.
        return depth + (trips - 1) * ii
    return trips * depth


def _block_area(block: Block) -> ResourceCost:
    """Operator + control area of a block (time-multiplexed units)."""
    area = ResourceCost.zero()
    kinds = {op for op, c in block.ops if c > 0}
    for op in kinds:
        area = area + OP_RESOURCES[op]
    area = area + FSM_PER_OPKIND * len(kinds)
    for loop in block.loops:
        body = _block_area(loop.body)
        area = area + body * loop.unroll + FSM_PER_LOOP
    return area


def estimate_kernel(ir: KernelIR) -> HlsEstimate:
    """Estimate τ (kernel cycles), area, and software time for a kernel."""
    tau = ir.overhead_cycles + _block_latency(ir.body)
    area = _block_area(ir.body) + FSM_PER_LOOP  # top-level controller
    # Software model: every op costs ~1 issue slot on the host plus the
    # op's own latency amortized by out-of-order overlap.
    sw = ir.body.work() / HOST_OPS_PER_CYCLE
    heavy = sum(
        ir.body.op_total(op) * (OP_LATENCY[op] - 1)
        for op in (Op.DIV, Op.FDIV, Op.SQRT)
    )
    sw += heavy  # long-latency ops do not hide well on the host either
    return HlsEstimate(
        name=ir.name,
        tau_cycles=float(tau),
        resources=area,
        sw_cycles=float(sw),
    )


def estimate_kernel_spec(
    ir: KernelIR,
    parallelizable: bool = False,
    streams_host_io: bool = False,
    streams_kernel_input: bool = False,
) -> KernelSpec:
    """Estimate and package directly as a designer-ready KernelSpec."""
    est = estimate_kernel(ir)
    return KernelSpec(
        name=ir.name,
        tau_cycles=est.tau_cycles,
        sw_cycles=est.sw_cycles,
        parallelizable=parallelizable,
        streams_host_io=streams_host_io,
        streams_kernel_input=streams_kernel_input,
        resources=est.resources,
    )
