"""Operator latency and area tables (Virtex-5 class, 100 MHz fabric).

Latencies are in fabric cycles; areas in LUT/FF pairs per operator
*instance* (32-bit datapaths). Values are representative of Virtex-5
synthesis results for the common operator cores (DSP48-mapped multiplies
cost few LUTs but we fold the DSP into an LUT-equivalent figure so the
designer's single-resource budget stays usable). As with every non-paper
constant, these are calibration knobs: the estimator's job is right
*scaling* between kernels, not absolute timing closure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..hw.resources import ResourceCost
from .ir import Op


@dataclass(frozen=True, slots=True)
class OpCost:
    """Latency and area of one operator kind."""

    latency_cycles: int
    area: ResourceCost


OP_LATENCY: Dict[Op, int] = {
    Op.ADD: 1,
    Op.MUL: 3,
    Op.DIV: 18,
    Op.FADD: 4,
    Op.FMUL: 5,
    Op.FDIV: 24,
    Op.SQRT: 20,
    Op.CMP: 1,
    Op.LOGIC: 1,
    Op.LOAD: 2,
    Op.STORE: 1,
}

OP_RESOURCES: Dict[Op, ResourceCost] = {
    Op.ADD: ResourceCost(32, 32),
    Op.MUL: ResourceCost(120, 96),     # DSP-backed, LUT-equivalent
    Op.DIV: ResourceCost(650, 520),
    Op.FADD: ResourceCost(360, 310),
    Op.FMUL: ResourceCost(420, 330),
    Op.FDIV: ResourceCost(880, 720),
    Op.SQRT: ResourceCost(540, 460),
    Op.CMP: ResourceCost(24, 16),
    Op.LOGIC: ResourceCost(16, 8),
    Op.LOAD: ResourceCost(40, 30),     # address gen + port mux share
    Op.STORE: ResourceCost(36, 28),
}


def op_cost(op: Op) -> OpCost:
    """Joined latency/area record for an operator kind."""
    return OpCost(OP_LATENCY[op], OP_RESOURCES[op])
