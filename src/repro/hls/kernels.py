"""Loop-nest IR descriptions of the paper's application kernels.

These model, at HLS-report granularity, what DWARV would synthesize for
each kernel of the four applications (per-pixel/per-block operation
counts from the actual algorithms in :mod:`repro.apps`). They exist to
*cross-validate* the calibration: the fitted ``τ`` values come from the
paper's published ratios, the HLS estimates come from first principles,
and the two must order the kernels the same way and agree on relative
magnitude within a small factor (see ``bench_hls_crosscheck``).

Trip counts are parameterized by the same workload sizes the profiled
applications use at ``scale=1``.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ConfigurationError
from .ir import Block, KernelIR, Loop, Op

#: Default workload sizes, matching repro.apps at scale=1.
CANNY_PIXELS = 96 * 96
JPEG_BLOCKS = 96
KLT_PIXELS = 128 * 128
KLT_FEATURES = 48
KLT_WINDOW = 9 * 9
KLT_ITERS = 6
FLUID_CELLS = 64 * 64
FLUID_RELAX = 20
FLUID_STEPS = 2


def canny_kernels() -> List[KernelIR]:
    """The four Canny stages (per-pixel stencils, row-streamable)."""
    return [
        KernelIR(
            "gaussian_smooth",
            Block.of_loops(Loop(
                trip=CANNY_PIXELS,
                body=Block([(Op.LOAD, 5), (Op.MUL, 5), (Op.ADD, 4),
                            (Op.STORE, 1)]),
                pipelined=True, ii=3,  # 5 taps over 2 BRAM ports
            )),
        ),
        KernelIR(
            "sobel_gradient",
            Block.of_loops(Loop(
                trip=CANNY_PIXELS,
                body=Block([(Op.LOAD, 6), (Op.ADD, 10), (Op.MUL, 2),
                            (Op.SQRT, 1), (Op.CMP, 4), (Op.STORE, 2)]),
                pipelined=True, ii=4,
            )),
        ),
        KernelIR(
            "nonmax_suppression",
            Block.of_loops(Loop(
                trip=CANNY_PIXELS,
                body=Block([(Op.LOAD, 3), (Op.CMP, 3), (Op.STORE, 1)]),
                pipelined=True, ii=2,
            )),
        ),
        KernelIR(
            "hysteresis",
            # Connectivity sweeps: a handful of passes over the frame.
            Block.of_loops(Loop(
                trip=4,
                body=Block.of_loops(Loop(
                    trip=CANNY_PIXELS,
                    body=Block([(Op.LOAD, 4), (Op.CMP, 3), (Op.LOGIC, 2),
                                (Op.STORE, 1)]),
                    pipelined=True, ii=3,
                )),
            )),
        ),
    ]


def jpeg_kernels() -> List[KernelIR]:
    """The four PowerStone-jpeg functions."""
    return [
        KernelIR(
            "huff_dc_dec",
            # Serial bit decoding: ~12 bits/block, each a dependent step.
            Block.of_loops(Loop(
                trip=JPEG_BLOCKS,
                body=Block([(Op.LOAD, 2), (Op.LOGIC, 12), (Op.CMP, 12),
                            (Op.ADD, 2), (Op.STORE, 1)]),
            )),
        ),
        KernelIR(
            "huff_ac_dec",
            # ~200 coded bits per block, inherently sequential decode.
            Block.of_loops(Loop(
                trip=JPEG_BLOCKS,
                body=Block([(Op.LOAD, 8), (Op.LOGIC, 200), (Op.CMP, 200),
                            (Op.ADD, 40), (Op.STORE, 16)]),
            )),
        ),
        KernelIR(
            "dquantz_lum",
            Block.of_loops(Loop(
                trip=JPEG_BLOCKS * 64,
                body=Block([(Op.LOAD, 2), (Op.MUL, 1), (Op.STORE, 1)]),
                pipelined=True, ii=2,
            )),
        ),
        KernelIR(
            "j_rev_dct",
            # Two 8x8 matrix-multiply passes: 16 MACs per coefficient.
            Block.of_loops(Loop(
                trip=JPEG_BLOCKS * 64,
                body=Block([(Op.LOAD, 3), (Op.MUL, 16), (Op.ADD, 15),
                            (Op.STORE, 1)]),
                pipelined=True, ii=2,
            )),
        ),
    ]


def klt_kernels() -> List[KernelIR]:
    """The two KLT stages."""
    return [
        KernelIR(
            "compute_gradients",
            Block.of_loops(Loop(
                trip=KLT_PIXELS,
                body=Block([(Op.LOAD, 4), (Op.FADD, 2), (Op.FMUL, 2),
                            (Op.STORE, 2)]),
                pipelined=True, ii=3,
            )),
        ),
        KernelIR(
            "track_features",
            # Per feature, per LK iteration, per window pixel: bilinear
            # samples + structure-tensor MACs + the 2x2 solve.
            Block.of_loops(Loop(
                trip=KLT_FEATURES * KLT_ITERS,
                body=Block(
                    [(Op.FDIV, 2), (Op.FADD, 8)],
                    [Loop(
                        trip=KLT_WINDOW,
                        body=Block([(Op.LOAD, 8), (Op.FMUL, 10),
                                    (Op.FADD, 9)]),
                        pipelined=True, ii=4,
                    )],
                ),
            )),
        ),
    ]


def fluid_kernels() -> List[KernelIR]:
    """The three stable-fluid stages (per step; steps folded in)."""
    per_step_cells = FLUID_CELLS
    return [
        KernelIR(
            "diffuse",
            Block.of_loops(Loop(
                trip=FLUID_STEPS * 3 * FLUID_RELAX,  # 3 fields
                body=Block.of_loops(Loop(
                    trip=per_step_cells,
                    body=Block([(Op.LOAD, 5), (Op.FADD, 4), (Op.FMUL, 1),
                                (Op.FDIV, 0), (Op.STORE, 1)]),
                    pipelined=True, ii=3,
                )),
            )),
        ),
        KernelIR(
            "project",
            Block.of_loops(Loop(
                trip=FLUID_STEPS * 2 * (FLUID_RELAX + 2),  # 2 projections
                body=Block.of_loops(Loop(
                    trip=per_step_cells,
                    body=Block([(Op.LOAD, 5), (Op.FADD, 4), (Op.FMUL, 1),
                                (Op.STORE, 1)]),
                    pipelined=True, ii=3,
                )),
            )),
        ),
        KernelIR(
            "advect",
            Block.of_loops(Loop(
                trip=FLUID_STEPS * 3,  # u, v, density
                body=Block.of_loops(Loop(
                    trip=per_step_cells,
                    body=Block([(Op.LOAD, 6), (Op.FMUL, 8), (Op.FADD, 7),
                                (Op.CMP, 4), (Op.STORE, 1)]),
                    pipelined=True, ii=4,
                )),
            )),
        ),
    ]


APP_KERNEL_IRS = {
    "canny": canny_kernels,
    "jpeg": jpeg_kernels,
    "klt": klt_kernels,
    "fluid": fluid_kernels,
}


def kernel_irs_for(app: str) -> Dict[str, KernelIR]:
    """IRs of one paper application, keyed by kernel name."""
    try:
        factory = APP_KERNEL_IRS[app]
    except KeyError:
        raise ConfigurationError(f"no kernel IRs for {app!r}") from None
    return {ir.name: ir for ir in factory()}
