"""A small loop-nest IR for kernel estimation.

The IR deliberately models only what latency/area estimation needs:
operation *counts* per loop body (not dependencies — the estimator uses
an initiation-interval abstraction instead) and the loop structure
(trip counts, pipelining, unrolling). This matches the granularity at
which HLS reports are typically read.

Example — an 8×8 inverse DCT as two matrix multiplies::

    body = Block([(Op.MUL, 8), (Op.ADD, 7), (Op.LOAD, 8), (Op.STORE, 1)])
    row_pass = Loop(trip=64, body=body, pipelined=True)
    kernel = KernelIR("j_rev_dct", Block.of_loops(row_pass, row_pass))
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple, Union

from ..errors import ConfigurationError


class Op(enum.Enum):
    """Operation kinds the latency/resource tables know about."""

    ADD = "add"            # integer add/sub
    MUL = "mul"            # integer multiply
    DIV = "div"            # integer divide
    FADD = "fadd"          # floating add/sub
    FMUL = "fmul"          # floating multiply
    FDIV = "fdiv"          # floating divide
    SQRT = "sqrt"
    CMP = "cmp"            # compare / select
    LOGIC = "logic"        # bitwise ops, shifts
    LOAD = "load"          # local-memory read
    STORE = "store"        # local-memory write


#: (operation, count-per-execution) pairs.
OpCount = Tuple[Op, int]


@dataclass(frozen=True)
class Block:
    """Straight-line code: operation counts plus nested loops."""

    ops: Tuple[OpCount, ...] = ()
    loops: Tuple["Loop", ...] = ()

    def __init__(
        self,
        ops: Union[List[OpCount], Tuple[OpCount, ...]] = (),
        loops: Union[List["Loop"], Tuple["Loop", ...]] = (),
    ) -> None:
        object.__setattr__(self, "ops", tuple(ops))
        object.__setattr__(self, "loops", tuple(loops))
        for op, count in self.ops:
            if not isinstance(op, Op):
                raise ConfigurationError(f"not an Op: {op!r}")
            if count < 0:
                raise ConfigurationError(f"negative count for {op}")

    @classmethod
    def of_loops(cls, *loops: "Loop") -> "Block":
        """A block that is just a sequence of loops."""
        return cls((), tuple(loops))

    def op_total(self, op: Op) -> int:
        """Total executions of ``op`` including all nested loops."""
        total = sum(c for o, c in self.ops if o is op)
        for loop in self.loops:
            total += loop.trip * loop.body.op_total(op)
        return total

    def work(self) -> int:
        """Total operation executions (any kind), loops expanded."""
        total = sum(c for _, c in self.ops)
        for loop in self.loops:
            total += loop.trip * loop.body.work()
        return total


@dataclass(frozen=True)
class Loop:
    """A counted loop over a body.

    ``pipelined`` loops overlap iterations at the given initiation
    interval (DWARV-style inner-loop pipelining); ``unroll`` replicates
    the body's operator instances (area for speed).
    """

    trip: int
    body: Block
    pipelined: bool = False
    ii: int = 1
    unroll: int = 1

    def __post_init__(self) -> None:
        if self.trip < 0:
            raise ConfigurationError(f"negative trip count {self.trip}")
        if self.ii < 1:
            raise ConfigurationError(f"initiation interval must be >= 1")
        if self.unroll < 1:
            raise ConfigurationError(f"unroll factor must be >= 1")
        if self.unroll > max(self.trip, 1):
            raise ConfigurationError("unroll exceeds trip count")


@dataclass(frozen=True)
class KernelIR:
    """A named kernel: its top-level block plus interface overhead."""

    name: str
    body: Block
    #: Fixed start/done handshake cycles per invocation.
    overhead_cycles: int = 8
    field_notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("kernel IR needs a name")
        if self.overhead_cycles < 0:
            raise ConfigurationError("negative overhead")
