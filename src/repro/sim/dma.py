"""DMA engine: bulk host↔local-memory transfers over the bus.

FPGA accelerator platforms move kernel data with a DMA block rather than
processor loads; the model wraps bus transfers with a fixed descriptor
setup latency per transfer, charged at the host clock (the host writes
the descriptor registers).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..units import HOST_CLOCK, Clock
from .bus import PlbBus
from .component import Component
from .engine import Engine


class DmaEngine(Component):
    """Descriptor-based DMA in front of the system bus."""

    def __init__(
        self,
        engine: Engine,
        bus: PlbBus,
        setup_cycles: int = 40,
        clock: Clock = HOST_CLOCK,
        name: str = "dma",
        trace: bool = False,
    ) -> None:
        super().__init__(engine, name, clock, trace=trace)
        if setup_cycles < 0:
            raise ConfigurationError("setup_cycles must be >= 0")
        self.bus = bus
        self.setup_cycles = setup_cycles
        self.transfers = 0
        # In-flight transfer depth: current and high-water mark (how many
        # descriptors were ever queued on the engine at once).
        self.pending = 0
        self.peak_pending = 0

    def transfer(self, nbytes: int, requester: str = "dma"):
        """Process generator: descriptor setup then the bus transfer."""
        if nbytes < 0:
            raise ConfigurationError(f"negative DMA size {nbytes}")
        if nbytes == 0:
            return
        self.pending += 1
        self.peak_pending = max(self.peak_pending, self.pending)
        rec = self.recorder
        if rec.enabled:
            rec.occupancy(self.name, self.engine.now, self.pending, 0)
        try:
            started = self.engine.now
            # Fast lane: descriptor setup is a pure wait — fuse it when
            # no queued event interleaves.
            setup = self.cycles(self.setup_cycles)
            if not self.engine.try_advance(setup):
                yield setup
            if rec.enabled:
                rec.activity(
                    "dma", self.name, started, self.engine.now, requester
                )
            self.log(f"dma {nbytes}B for {requester}")
            yield from self.bus.transfer(nbytes, requester=requester)
            self.transfers += 1
        finally:
            self.pending -= 1
            if rec.enabled:
                rec.occupancy(self.name, self.engine.now, self.pending, 0)
