"""The 2×2 crossbar of the shared-local-memory solution.

Section IV-A1: the crossbar "switches data from the cores to the
corresponding local memory based on the address of data" and "does not
introduce any communication overhead because it does not change the
structure of data". The model therefore adds *zero* data-movement time;
what it does model is the port contention — the crossbar multiplexes two
masters (host-side and partner-side) onto the two shared BRAMs, so
simultaneous accesses to the same memory serialize at BRAM-port speed.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..units import KERNEL_CLOCK, Clock
from .component import Component
from .engine import Engine
from .memory import Bram


class Crossbar(Component):
    """Zero-overhead 2×2 switch in front of a shared local-memory pair."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        mem_a: Bram,
        mem_b: Bram,
        clock: Clock = KERNEL_CLOCK,
        trace: bool = False,
    ) -> None:
        super().__init__(engine, name, clock, trace=trace)
        if mem_a is mem_b:
            raise ConfigurationError("crossbar needs two distinct memories")
        self.mem_a = mem_a
        self.mem_b = mem_b
        self.switched_accesses = 0

    def route(self, target: str) -> Bram:
        """Address decode: which shared memory an access goes to."""
        if target == self.mem_a.name:
            return self.mem_a
        if target == self.mem_b.name:
            return self.mem_b
        raise ConfigurationError(
            f"crossbar {self.name!r} does not front memory {target!r}"
        )

    def access(self, target: str, nbytes: int, accessor: str = "?"):
        """Process generator: switched access to one of the pair.

        The switch itself is combinational (no added cycles); time is the
        target BRAM's port occupancy only. Under the fast backend the
        delegated :meth:`~repro.sim.memory.Bram.access` takes its own
        fused lane when the port is free, so a switched access costs no
        engine round-trip either — the crossbar adds nothing to fuse.
        """
        mem = self.route(target)
        self.switched_accesses += 1
        self.log(f"switch {accessor} -> {target} ({nbytes}B)")
        yield from mem.access(nbytes, accessor=f"{self.name}:{accessor}")
