"""ASCII timeline (Gantt) rendering of simulated executions.

The baseline system runs its kernels strictly back to back; the
proposed system overlaps them (NoC delivery during computation,
duplicated copies in parallel, pipelined chains). Seeing that overlap is
the fastest way to understand *why* the custom interconnect wins, so
:func:`render_gantt` turns the simulator's per-kernel computation spans
into a terminal chart::

    huff_dc_dec   |####                              |
    huff_ac_dec#0 |  ######################          |
    huff_ac_dec#1 |  ######################          |
    ...
"""

from __future__ import annotations

import hashlib
import math
from typing import Mapping, Sequence, Tuple

from ..errors import ConfigurationError
from .systems import SimulatedTimes

Span = Tuple[float, float]


def timeline_digest(times: SimulatedTimes, width: int = 60) -> str:
    """SHA-256 over a run's exact timeline content.

    Hashes the ``repr`` of every kernel span (full float precision — a
    one-ULP drift changes the digest) together with the rendered Gantt
    chart, so two digests match iff the timelines are byte-identical
    both numerically and as displayed. The backend conformance suite
    compares digests across simulator engines.
    """
    h = hashlib.sha256()
    h.update(times.label.encode())
    for name in sorted(times.kernel_spans):
        start, end = times.kernel_spans[name]
        h.update(f"{name}|{start!r}|{end!r}\n".encode())
    if times.kernel_spans:
        h.update(render_gantt(times.kernel_spans, width=width).encode())
    return h.hexdigest()

#: Busy-fraction glyph ramp for utilization lanes (blank = idle).
UTIL_RAMP = " .:-=+*#%@"


def render_gantt(
    spans: Mapping[str, Span],
    width: int = 60,
    end_time: float | None = None,
) -> str:
    """Render named spans as fixed-width ASCII bars.

    Rows are sorted by start time (ties by name). ``end_time`` sets the
    chart's right edge (defaults to the latest span end).
    """
    if width < 10:
        raise ConfigurationError(f"gantt width must be >= 10, got {width}")
    if not spans:
        return "(no spans)"
    for name, (start, end) in spans.items():
        if end < start:
            raise ConfigurationError(f"span {name!r} ends before it starts")
    horizon = end_time if end_time is not None else max(e for _, e in spans.values())
    if horizon <= 0:
        raise ConfigurationError("timeline horizon must be positive")

    name_w = max(len(n) for n in spans)
    rows = []
    for name, (start, end) in sorted(
        spans.items(), key=lambda kv: (kv[1][0], kv[0])
    ):
        lo = min(int(width * start / horizon), width - 1)
        if end == start:
            # A zero-length span is an instant, not a duration: mark it
            # with a tick instead of a phantom one-cell bar (which, for
            # a span sitting exactly at the horizon, would render as if
            # time had been spent before the end of the chart).
            bar = " " * lo + "|" + " " * (width - lo - 1)
            rows.append(f"{name:<{name_w}} |{bar}|")
            continue
        hi = min(int(-(-width * end // horizon)), width)  # ceil, clipped
        hi = max(hi, lo + 1)  # every span visible
        bar = " " * lo + "#" * (hi - lo) + " " * (width - hi)
        rows.append(f"{name:<{name_w}} |{bar}|")
    scale = f"{'':<{name_w}}  0{'':<{width - 10}}{horizon * 1e3:8.3f}ms"
    return "\n".join(rows + [scale])


def render_comparison(
    baseline: SimulatedTimes,
    proposed: SimulatedTimes,
    width: int = 60,
) -> str:
    """Side-by-side Gantt of the baseline and proposed executions.

    Both charts share the baseline's time axis so the proposed system's
    compression is visually honest.
    """
    horizon = max(baseline.kernels_s, proposed.kernels_s)
    return "\n".join(
        [
            f"baseline (makespan {baseline.kernels_s * 1e3:.3f} ms):",
            render_gantt(baseline.kernel_spans, width=width, end_time=horizon),
            "",
            f"proposed (makespan {proposed.kernels_s * 1e3:.3f} ms):",
            render_gantt(proposed.kernel_spans, width=width, end_time=horizon),
        ]
    )


def render_utilization_lanes(
    lanes: Mapping[str, Sequence[float]],
    horizon_s: float | None = None,
) -> str:
    """Render per-lane bucketed busy fractions as glyph-ramp rows.

    ``lanes`` maps a lane name to its busy fraction per time bucket
    (``repro.obs.profile.timeseries`` produces these); every lane must
    have the same bucket count, which becomes the chart width. A blank
    cell is idle, ``@`` is saturated; any non-zero fraction is visible.
    With ``horizon_s`` a time scale is appended.
    """
    if not lanes:
        return "(no lanes)"
    widths = {len(b) for b in lanes.values()}
    if len(widths) != 1:
        raise ConfigurationError(
            f"lanes disagree on bucket count: {sorted(widths)}"
        )
    width = widths.pop()
    if width < 1:
        raise ConfigurationError("utilization lanes need at least one bucket")
    n = len(UTIL_RAMP)
    name_w = max(len(name) for name in lanes)
    rows = []
    for name, buckets in lanes.items():
        cells = []
        for f in buckets:
            if f <= 0:
                cells.append(UTIL_RAMP[0])
            else:
                cells.append(UTIL_RAMP[max(1, min(n - 1, math.ceil(f * (n - 1))))])
        rows.append(f"{name:<{name_w}} |{''.join(cells)}|")
    if horizon_s is not None and width >= 10:
        rows.append(
            f"{'':<{name_w}}  0{'':<{width - 10}}{horizon_s * 1e3:8.3f}ms"
        )
    return "\n".join(rows)


def overlap_fraction(spans: Mapping[str, Span]) -> float:
    """Fraction of total busy time that overlaps another kernel.

    0.0 = strictly sequential execution (the baseline), approaching
    1.0 = everything concurrent. Computed exactly by sweeping the span
    endpoints.
    """
    items = [(s, e) for s, e in spans.values() if e > s]
    if not items:
        return 0.0
    events = sorted({t for s, e in items for t in (s, e)})
    total = sum(e - s for s, e in items)
    overlapped = 0.0
    for lo, hi in zip(events, events[1:]):
        active = sum(1 for s, e in items if s <= lo and e >= hi)
        if active >= 2:
            overlapped += (hi - lo) * active
    return overlapped / total if total > 0 else 0.0
