"""PLB-like shared system bus.

The paper's communication infrastructure is the Xilinx PLB: a single
arbitrated bus carrying all host↔kernel traffic. The model charges each
transaction an arbitration + address phase and then moves data at the bus
width per cycle; only one transaction is in flight at a time, so
concurrent requesters queue — which is exactly why kernel-to-kernel
traffic routed through the host hurts in the baseline.

The design algorithm's ``θ`` (average seconds per byte) is exposed by
:meth:`PlbBus.theta_s_per_byte`; it folds the per-transaction overhead in
amortized over a typical transfer so the analytic model and the simulator
agree closely on bulk transfers.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from ..units import Clock
from .component import Component
from .engine import Engine, Resource

#: PLB on the ML510 runs at the kernel fabric clock in our model.
DEFAULT_BUS_CLOCK = Clock(100_000_000, "plb@100MHz")


class PlbBus(Component):
    """Arbitrated shared bus with per-byte throughput accounting."""

    def __init__(
        self,
        engine: Engine,
        clock: Clock = DEFAULT_BUS_CLOCK,
        width_bytes: int = 8,
        arbitration_cycles: int = 3,
        address_cycles: int = 2,
        typical_burst_bytes: int = 1024,
        name: str = "plb",
        trace: bool = False,
    ) -> None:
        super().__init__(engine, name, clock, trace=trace)
        if width_bytes < 1 or arbitration_cycles < 0 or address_cycles < 0:
            raise ConfigurationError("invalid bus parameters")
        if typical_burst_bytes < 1:
            raise ConfigurationError("typical_burst_bytes must be >= 1")
        self.width_bytes = width_bytes
        self.arbitration_cycles = arbitration_cycles
        self.address_cycles = address_cycles
        self.typical_burst_bytes = typical_burst_bytes
        self._resource = Resource(engine, capacity=1, name=f"{name}.arb")
        self.bytes_moved = 0
        self.transactions = 0

    # -- analytic-model interface -----------------------------------------
    @property
    def theta_s_per_byte(self) -> float:
        """``θ``: average per-byte bus time, overhead amortized.

        Uses the configured typical burst size, matching how the paper
        derives a single average ``θ`` from measured transfers.
        """
        cycles = (
            self.arbitration_cycles
            + self.address_cycles
            + math.ceil(self.typical_burst_bytes / self.width_bytes)
        )
        return self.cycles(cycles) / self.typical_burst_bytes

    def transfer_cycles(self, nbytes: int) -> int:
        """Bus cycles one transaction of ``nbytes`` occupies."""
        if nbytes < 0:
            raise ConfigurationError(f"negative transfer size {nbytes}")
        if nbytes == 0:
            return 0
        return (
            self.arbitration_cycles
            + self.address_cycles
            + math.ceil(nbytes / self.width_bytes)
        )

    # -- simulation interface ------------------------------------------------
    def transfer(self, nbytes: int, requester: str = "?"):
        """Process generator: move ``nbytes`` over the bus.

        Transfers are split into bursts of ``typical_burst_bytes`` so a
        long DMA cannot starve other requesters forever (PLB arbitration
        re-runs between bursts).
        """
        remaining = int(nbytes)
        engine = self.engine
        res = self._resource
        while remaining > 0:
            burst = min(remaining, self.typical_burst_bytes)
            if engine.fastlane and res._in_use < res.capacity:
                # Fast lane: the bus is free — if no queued event lands
                # within the burst either, the whole grant→hold→release
                # round trip fuses into straight-line code. Bookkeeping
                # (counters, busy window, recorder samples, trace log)
                # replays the slow path operation for operation.
                hold = self.cycles(self.transfer_cycles(burst))
                if engine.can_advance(hold):
                    started = engine.now
                    res._fused_acquire()
                    self.log(f"xfer {burst}B from {requester}")
                    engine.advance(hold)
                    self.bytes_moved += burst
                    self.transactions += 1
                    rec = self.recorder
                    if rec.enabled:
                        rec.activity(
                            "bus", self.name, started, engine.now, requester
                        )
                    res.release()
                    remaining -= burst
                    continue
            yield res.request(requester)
            try:
                self.log(f"xfer {burst}B from {requester}")
                started = engine.now
                yield self.cycles(self.transfer_cycles(burst))
                self.bytes_moved += burst
                self.transactions += 1
                rec = self.recorder
                if rec.enabled:
                    rec.activity(
                        "bus", self.name, started, engine.now, requester
                    )
            finally:
                res.release()
            remaining -= burst

    def utilization(self, total_time: float) -> float:
        """Busy fraction over ``total_time`` seconds."""
        return self._resource.utilization(total_time)
