"""Memory models: dual-port BRAM local memories and off-chip SDRAM.

BRAMs are the kernels' local memories: two ports, single-cycle word
access at the fabric clock. The port budget is what forces the crossbar /
multiplexer machinery of the shared-local-memory solution, so ports are
modelled as a real capacity-2 resource. SDRAM is the host main memory:
higher latency, accessed through the bus (its latency is charged by the
host model per transfer, not per word, since DMA pipelines the stream).
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from ..units import Clock, KERNEL_CLOCK
from .component import Component
from .engine import Engine, Resource


class Bram(Component):
    """Dual-port block RAM local memory."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        size_bytes: int,
        clock: Clock = KERNEL_CLOCK,
        width_bytes: int = 4,
        ports: int = 2,
        trace: bool = False,
    ) -> None:
        super().__init__(engine, name, clock, trace=trace)
        if size_bytes <= 0 or width_bytes <= 0 or ports <= 0:
            raise ConfigurationError(f"invalid BRAM parameters for {name!r}")
        self.size_bytes = size_bytes
        self.width_bytes = width_bytes
        self.ports = Resource(engine, capacity=ports, name=f"{name}.ports")
        self.bytes_accessed = 0

    def access_cycles(self, nbytes: int) -> int:
        """Cycles to stream ``nbytes`` through one port."""
        if nbytes < 0:
            raise ConfigurationError(f"negative access size {nbytes}")
        return math.ceil(nbytes / self.width_bytes)

    def access(self, nbytes: int, accessor: str = "?"):
        """Process generator: occupy one port for a streamed access."""
        if nbytes > self.size_bytes:
            raise ConfigurationError(
                f"access of {nbytes}B exceeds {self.name!r} capacity "
                f"{self.size_bytes}B"
            )
        engine = self.engine
        ports = self.ports
        if engine.fastlane and ports._in_use < ports.capacity:
            # Fast lane: a free port and an empty horizon — the whole
            # request→stream→release cycle fuses into straight-line code.
            hold = self.cycles(self.access_cycles(nbytes))
            if engine.can_advance(hold):
                ports._fused_acquire()
                self.log(f"access {nbytes}B by {accessor}")
                engine.advance(hold)
                self.bytes_accessed += nbytes
                ports.release()
                return
        yield ports.request(accessor)
        try:
            self.log(f"access {nbytes}B by {accessor}")
            yield self.cycles(self.access_cycles(nbytes))
            self.bytes_accessed += nbytes
        finally:
            ports.release()


class Sdram(Component):
    """Off-chip main memory behind the host."""

    def __init__(
        self,
        engine: Engine,
        name: str = "sdram",
        clock: Clock = Clock(200_000_000, "ddr@200MHz"),
        width_bytes: int = 8,
        latency_cycles: int = 20,
        trace: bool = False,
    ) -> None:
        super().__init__(engine, name, clock, trace=trace)
        if width_bytes <= 0 or latency_cycles < 0:
            raise ConfigurationError("invalid SDRAM parameters")
        self.width_bytes = width_bytes
        self.latency_cycles = latency_cycles
        self.port = Resource(engine, capacity=1, name=f"{name}.ctrl")
        self.bytes_accessed = 0

    def access(self, nbytes: int, accessor: str = "?"):
        """Process generator: one pipelined burst from main memory."""
        if nbytes < 0:
            raise ConfigurationError(f"negative access size {nbytes}")
        engine = self.engine
        port = self.port
        cycles = self.latency_cycles + math.ceil(nbytes / self.width_bytes)
        if engine.fastlane and port._in_use < port.capacity:
            # Fast lane: uncontended controller, empty horizon.
            hold = self.cycles(cycles)
            if engine.can_advance(hold):
                port._fused_acquire()
                self.log(f"burst {nbytes}B by {accessor}")
                engine.advance(hold)
                self.bytes_accessed += nbytes
                port.release()
                return
        yield port.request(accessor)
        try:
            self.log(f"burst {nbytes}B by {accessor}")
            yield self.cycles(cycles)
            self.bytes_accessed += nbytes
        finally:
            self.port.release()
