"""Simulator backend selection: reference, fast, or auto.

The simulator has two engines with byte-identical observable behavior
(proven by :mod:`repro.verify.conformance`):

* ``reference`` — the pure-python heap engine in
  :mod:`repro.sim.engine`; the differential oracle and the
  *fingerprinted source of truth* for cached results;
* ``fast`` — :mod:`repro.sim.fastcore`: calendar-queue scheduling,
  batched dispatch, and event fusion; optionally numpy-accelerated.
* ``auto`` — ``fast`` when numpy is importable, else ``reference``.

Resolution order for the effective backend: explicit argument →
process default (:func:`set_default_backend`) → the
``REPRO_SIM_BACKEND`` environment variable → ``reference``. The
environment hook is what carries the choice into pool workers and CI
matrix legs without touching any fingerprinted job payload — because
both backends produce identical results, cached entries are valid
regardless of which backend produced them.
"""

from __future__ import annotations

import os
from enum import Enum
from typing import Optional

from ..errors import ConfigurationError
from .engine import Engine

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV_VAR = "REPRO_SIM_BACKEND"


class ReproSimBackend(str, Enum):
    """The selectable simulator backends."""

    REFERENCE = "reference"
    FAST = "fast"
    AUTO = "auto"


#: Valid ``--sim-backend`` spellings, in documentation order.
BACKEND_NAMES = tuple(b.value for b in ReproSimBackend)

_default_backend: Optional[str] = None


def _validate(name: str) -> str:
    if name not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown simulator backend {name!r}; "
            f"use one of {', '.join(BACKEND_NAMES)}"
        )
    return name


def set_default_backend(name: Optional[str]) -> None:
    """Set (or clear, with ``None``) the process-wide default backend."""
    global _default_backend
    _default_backend = None if name is None else _validate(name)


def resolve_backend(name: Optional[str] = None) -> str:
    """The effective concrete backend: ``reference`` or ``fast``.

    Raises :class:`~repro.errors.ConfigurationError` on unknown names —
    including unknown values of ``REPRO_SIM_BACKEND``, so a typo in CI
    configuration fails loudly instead of silently simulating on the
    wrong engine.
    """
    if name is None:
        name = _default_backend
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or None
    if name is None:
        name = ReproSimBackend.REFERENCE.value
    name = _validate(str(name))
    if name == ReproSimBackend.AUTO.value:
        from .fastcore.vector import numpy_available

        if numpy_available():
            return ReproSimBackend.FAST.value
        return ReproSimBackend.REFERENCE.value
    return name


def make_engine(backend: Optional[str] = None) -> Engine:
    """Instantiate the engine for ``backend`` (resolved per the above)."""
    resolved = resolve_backend(backend)
    if resolved == ReproSimBackend.FAST.value:
        from .fastcore.engine import FastEngine

        return FastEngine()
    return Engine()
