"""Optional numpy acceleration for the fastcore's array scans.

numpy is an *optional* dependency of the fast backend: everything here
has a pure-python fallback, so ``--sim-backend fast`` works on a bare
interpreter, and ``--sim-backend auto`` uses :func:`numpy_available`
to decide whether the fast backend is worth selecting at all.

Only **order-safe** operations are vectorized — argmin scans over
bucket arrays and the width estimation used when the calendar queue
resizes. Float *accumulations* that feed simulation results (busy
time, makespan arithmetic) are never routed through numpy: ``np.sum``
is pairwise and would break bit-equality with the reference engine's
sequential additions.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

_NUMPY: Optional[object] = None
_PROBED = False


def _probe() -> Optional[object]:
    """Import numpy once, tolerating absence *and* broken installs."""
    global _NUMPY, _PROBED
    if not _PROBED:
        _PROBED = True
        try:
            import numpy  # noqa: PLC0415 — optional, probed lazily

            _NUMPY = numpy
        except Exception:  # noqa: BLE001 — any import failure = absent
            _NUMPY = None
    return _NUMPY


def numpy_available() -> bool:
    """Whether the optional numpy acceleration can be used."""
    return _probe() is not None


#: Below this many entries the python loop beats array conversion.
_VECTOR_THRESHOLD = 64


def argmin_entries(entries: Sequence[Tuple]) -> int:
    """Index of the minimum ``(time, seq, ...)`` entry.

    ``seq`` values are unique, so comparing ``(time, seq)`` is a total
    order — the vector path first narrows to the minimum time with an
    array scan, then breaks the (rare) time tie on ``seq`` in python.
    """
    np = _probe()
    if np is not None and len(entries) >= _VECTOR_THRESHOLD:
        times = np.fromiter(
            (e[0] for e in entries), dtype=np.float64, count=len(entries)
        )
        t_min = times.min()
        best = -1
        for i in (times == t_min).nonzero()[0]:
            if best < 0 or entries[i][1] < entries[best][1]:
                best = int(i)
        return best
    best = 0
    best_key = (entries[0][0], entries[0][1])
    for i in range(1, len(entries)):
        key = (entries[i][0], entries[i][1])
        if key < best_key:
            best_key = key
            best = i
    return best


def estimate_width(times: Sequence[float], fallback: float) -> float:
    """Bucket width from a sample of event times (Brown's heuristic).

    The classic calendar-queue sizing rule: width ≈ 3× the mean gap
    between consecutive (sorted, deduplicated) event times, so the
    current bucket holds a handful of events. Returns ``fallback`` when
    the sample carries no spread (all ties, or fewer than two points).
    """
    if len(times) < 2:
        return fallback
    np = _probe()
    if np is not None and len(times) >= _VECTOR_THRESHOLD:
        arr = np.sort(np.fromiter(times, dtype=np.float64, count=len(times)))
        gaps = np.diff(arr)
        gaps = gaps[gaps > 0]
        if gaps.size == 0:
            return fallback
        mean_gap = float(gaps.mean())
    else:
        ordered = sorted(times)
        gaps_list: List[float] = []
        for a, b in zip(ordered, ordered[1:]):
            if b > a:
                gaps_list.append(b - a)
        if not gaps_list:
            return fallback
        mean_gap = sum(gaps_list) / len(gaps_list)
    width = 3.0 * mean_gap
    if not math.isfinite(width) or width <= 0.0:
        return fallback
    return width
