"""The fast event kernel: calendar-queue scheduling + event fusion.

:class:`FastEngine` is a drop-in :class:`~repro.sim.engine.Engine`
subclass. Three things change, none of them observable in simulation
results:

* **Scheduler** — the binary heap is replaced by
  :class:`~repro.sim.fastcore.calendar.CalendarQueue`; pops remain in
  exact ``(time, seq)`` order, so thunks execute in the identical
  sequence.
* **Batched dispatch** — the run loop drains every thunk sharing one
  timestamp in a single inner loop, skipping the per-event ``until``
  and monotonicity re-checks (order is unchanged: pops are still
  ``(time, seq)``-ascending).
* **Event fusion** — components may ask, via :meth:`try_advance` /
  :meth:`can_advance` + :meth:`advance`, to execute a timed operation
  of duration ``d`` *synchronously* when no queued event lands in
  ``(now, now + d]``. The check is strict (``peek > now + d``): an
  event at exactly ``now + d`` was scheduled earlier, carries a lower
  sequence number, and must run *before* the fused continuation would.
  Fused paths replicate the reference engine's float arithmetic
  operation for operation (``now = now + d``, one addition — the same
  single addition ``schedule`` would have performed), so timestamps,
  busy-time sums, and makespans are bit-identical.

Events, processes, and resources are the reference classes — already
``__slots__``-packed flyweights — so every waiting/queueing behavior is
shared code, not a re-implementation that could drift.
"""

from __future__ import annotations

from typing import Callable, Optional

from ...errors import DeadlockError, SimulationError
from ..engine import Engine
from .calendar import CalendarQueue


class FastEngine(Engine):
    """Engine with a calendar-queue scheduler and an event-fusion API."""

    #: Components check this before taking a fused (synchronous) path;
    #: the reference engine advertises ``False`` and stays byte-for-byte
    #: on its historical code path.
    fastlane = True

    def __init__(self) -> None:
        super().__init__()
        self._cq = CalendarQueue()
        #: Timed operations executed synchronously (never queued). Like
        #: ``events_processed`` this is engine-implementation
        #: observability, outside the equivalence contract.
        self.fused_events = 0
        self._until: Optional[float] = None
        self._batch_remaining = 0

    # -- scheduling --------------------------------------------------------
    def schedule(self, delay: float, thunk: Callable[[], None]) -> None:
        """Run ``thunk`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._cq.push(self.now + delay, next(self._seq), thunk)

    def peek_time(self) -> float:
        """Earliest queued event time (``+inf`` when idle)."""
        return self._cq.peek_time()

    # -- event fusion ------------------------------------------------------
    def can_advance(self, delay: float) -> bool:
        """Whether a timed operation of ``delay`` seconds may be fused.

        True only when *no* queued event fires at or before
        ``now + delay`` (strictly — ties must run first) and the fused
        landing time stays within a ``run(until=...)`` horizon.
        """
        if self._batch_remaining:
            # Callbacks still pending inside the running Event.succeed
            # dispatch closure are due *now* but invisible to the queue.
            # In the reference engine each would be a separately queued
            # thunk, so peek == now would veto fusion; refuse exactly
            # the same way here.
            return False
        target = self.now + delay
        until = self._until
        if until is not None and target > until:
            return False
        return self._cq.peek_time() > target

    def advance(self, delay: float) -> None:
        """Commit a fused operation: jump ``now`` forward by ``delay``.

        Only valid immediately after :meth:`can_advance` returned True.
        The single addition mirrors what ``schedule``'s ``now + delay``
        would have computed, keeping timestamps bit-identical.
        """
        self.now = self.now + delay
        self.fused_events += 1

    def try_advance(self, delay: float) -> bool:
        """Fuse a pure wait of ``delay`` seconds if provably safe."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        if self.can_advance(delay):
            self.advance(delay)
            return True
        return False

    # -- dispatch ----------------------------------------------------------
    def run(
        self, until: Optional[float] = None, check_deadlock: bool = True
    ) -> float:
        """Drain the calendar queue; returns the final simulation time."""
        cq = self._cq
        self._until = until
        try:
            while len(cq):
                t, seq, thunk = cq.pop()
                if until is not None and t > until:
                    cq.push(t, seq, thunk)
                    self.now = until
                    return self.now
                if t < self.now - 1e-18:  # pragma: no cover - defensive
                    raise SimulationError("time went backwards")
                self.now = t
                self.events_processed += 1
                thunk()
                # Batched same-timestamp dispatch: drain the whole
                # timestamp cohort without re-checking until/monotonicity
                # (pops stay (time, seq)-ordered, so behavior is
                # identical to the one-at-a-time loop).
                batched = cq.pop_le(t)
                while batched is not None:
                    self.events_processed += 1
                    batched[2]()
                    batched = cq.pop_le(t)
        finally:
            self._until = None
        if check_deadlock and self._active > 0:
            raise DeadlockError(
                f"{self._active} process(es) still waiting with an empty "
                "event queue"
            )
        return self.now
