"""``repro.sim.fastcore`` — the obs-free numeric event kernel.

This package is the *fast* simulator backend: a drop-in
:class:`~repro.sim.engine.Engine` replacement whose scheduler is an
array-based calendar queue (bucketed time wheel with a heap overflow
lane) instead of a binary heap, whose dispatch loop batches
same-timestamp thunks, and whose *event-fusion* API lets components
execute provably uncontended timed operations synchronously — no
engine round-trip, no Event/closure allocation.

The pure-python engine in :mod:`repro.sim.engine` stays untouched as
the reference oracle; :mod:`repro.verify.conformance` proves the two
byte-identical on every observable output (results, timelines, stats,
profiles, provenance). Select at runtime via
:mod:`repro.sim.backend` (``--sim-backend {reference,fast,auto}`` or
``REPRO_SIM_BACKEND``).
"""

from __future__ import annotations

from .calendar import CalendarQueue
from .engine import FastEngine

__all__ = ["CalendarQueue", "FastEngine"]
