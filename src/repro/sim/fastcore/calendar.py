"""An array-based calendar queue for the fast event kernel.

The classic Brown calendar queue: a power-of-two ring of *buckets*
(``vb = floor(t / width)``, physical index ``vb & mask``) with a scan
pointer ``cur_vb`` walking virtual buckets in time order. Events more
than one wheel revolution ahead of the pointer go to a binary-heap
*overflow* lane and migrate onto the wheel as the pointer catches up.
The queue resizes (doubling/halving the bucket count, re-estimating the
width from a sample of live event times) as the population changes, so
push and pop stay O(1) amortized across workloads with very different
event spacings.

Each bucket is itself a small binary heap ordered by ``(time, seq)``.
That makes the scan O(1) per bucket: all live entries satisfy
``vb >= cur_vb`` (a push behind the pointer pulls the pointer back), so
a bucket's head either belongs to the scanned virtual bucket — and,
being the earliest entry, *is* the eligible minimum — or has a larger
virtual bucket, in which case every entry in the bucket does (later
``vb`` implies later time) and the bucket holds nothing for this
revolution. Pushes, pops, and head-removal are all C-level ``heapq``
operations; the python layer only walks bucket heads.

Ordering contract: entries are ``(time, seq, item)`` and pops are
strictly ascending in ``(time, seq)`` — exactly ``heapq`` order on the
same tuples, which is what the conformance suite asserts. Two
subtleties carry the contract:

* a push *behind* the scan pointer (``vb < cur_vb`` — e.g. ``run
  (until=...)`` re-inserting a popped entry, or a peek having advanced
  the pointer past the current time's bucket) resets ``cur_vb`` so the
  entry cannot be skipped;
* the wheel's candidate minimum is always compared against the overflow
  head before a pop commits, because a backward pointer reset can leave
  the overflow holding the true minimum.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Tuple

from ...errors import SimulationError
from .vector import argmin_entries, estimate_width

#: A queue entry: (time, seq, virtual bucket at push, payload).
Entry = Tuple[float, int, int, object]

#: Marker for "the cached minimum lives in the overflow heap".
_OVERFLOW = -1

#: Resize thresholds: grow when entries exceed ``2 × nbuckets``, shrink
#: when they fall below ``nbuckets // 8`` (hysteresis avoids thrash).
_GROW_FACTOR = 2
_SHRINK_DIVISOR = 8
_MIN_BUCKETS = 16
_MAX_BUCKETS = 1 << 15
#: Sample size for width re-estimation on resize.
_WIDTH_SAMPLE = 64


class CalendarQueue:
    """Priority queue over ``(time, seq, item)`` with heapq ordering."""

    __slots__ = (
        "_width",
        "_inv_width",
        "_nbuckets",
        "_mask",
        "_buckets",
        "_overflow",
        "_cur_vb",
        "_wheel_count",
        "_size",
        "_cache",
        "_grow_at",
        "_shrink_at",
    )

    def __init__(
        self, width: float = 1e-6, nbuckets: int = _MIN_BUCKETS
    ) -> None:
        if width <= 0.0 or not math.isfinite(width):
            raise SimulationError(f"bucket width must be positive, got {width}")
        if nbuckets < 1 or nbuckets & (nbuckets - 1):
            raise SimulationError(
                f"bucket count must be a power of two, got {nbuckets}"
            )
        self._set_geometry(width, nbuckets)
        self._buckets = [[] for _ in range(nbuckets)]
        self._overflow: List[Entry] = []
        self._cur_vb = 0
        self._wheel_count = 0
        self._size = 0
        #: Cached minimum: (entry, bucket index) with index ``_OVERFLOW``
        #: meaning the overflow heap. Invalidated by removals, resizes,
        #: and any push that could beat it.
        self._cache: Optional[Tuple[Entry, int]] = None

    def _set_geometry(self, width: float, nbuckets: int) -> None:
        """Fix the wheel shape and precompute hot-path derived values.

        ``_inv_width`` turns the per-push virtual-bucket division into a
        multiplication; the two mappings can round differently near
        bucket edges, but the queue only needs the mapping to be
        *consistent* (push, scan, and resize all use ``_inv_width``),
        not to match ``floor(t / width)`` exactly. ``_grow_at`` /
        ``_shrink_at`` fold the size-threshold and bucket-bound checks
        into single comparisons.
        """
        self._width = width
        self._inv_width = 1.0 / width
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._grow_at = (
            nbuckets * _GROW_FACTOR if nbuckets < _MAX_BUCKETS else (1 << 62)
        )
        self._shrink_at = (
            nbuckets // _SHRINK_DIVISOR if nbuckets > _MIN_BUCKETS else -1
        )

    def __len__(self) -> int:
        return self._size

    # -- mutation ----------------------------------------------------------
    def push(self, t: float, seq: int, item: object) -> None:
        """Insert ``item`` at ``(t, seq)``; ``seq`` must be unique."""
        if not 0.0 <= t < math.inf:  # one chained compare; NaN fails it too
            raise SimulationError(f"event time must be finite and >= 0, got {t}")
        vb = int(t * self._inv_width)
        entry: Entry = (t, seq, vb, item)
        cur = self._cur_vb
        if vb < cur:
            # Behind the scan pointer (re-insert after an ``until`` stop,
            # or a peek advanced the pointer past now's bucket): pull the
            # pointer back so the entry is seen on the next scan.
            self._cur_vb = cur = vb
        if vb - cur >= self._nbuckets:
            heapq.heappush(self._overflow, entry)
        else:
            heapq.heappush(self._buckets[vb & self._mask], entry)
            self._wheel_count += 1
        self._size += 1
        cache = self._cache
        if cache is not None and t <= cache[0][0]:
            # Conservative: also drops the cache on a time tie the new
            # entry loses on seq — correctness over cache hit rate.
            self._cache = None
        if self._size > self._grow_at:
            self._resize(self._nbuckets * 2)

    def pop(self) -> Tuple[float, int, object]:
        """Remove and return the minimum ``(time, seq, item)``."""
        located = self._cache
        if located is None:
            located = self._locate_min()
        if located is None:
            raise SimulationError("pop from an empty calendar queue")
        return self._remove(located)

    def pop_le(self, limit: float) -> Optional[Tuple[float, int, object]]:
        """Pop the minimum entry if its time is ``<= limit``, else None.

        One locate serves both the bound check and the removal — the
        engine's batched same-timestamp dispatch loop calls this once
        per drained thunk instead of a peek/pop pair.
        """
        located = self._cache
        if located is None:
            if self._size == 0:
                return None
            located = self._locate_min()
        if located is None or located[0][0] > limit:
            self._cache = located
            return None
        return self._remove(located)

    def _remove(
        self, located: Tuple[Entry, int]
    ) -> Tuple[float, int, object]:
        entry, bucket_index = located
        if bucket_index == _OVERFLOW:
            heapq.heappop(self._overflow)
            # The pointer jumps to the popped minimum's bucket; overflow
            # entries now within one revolution migrate onto the wheel.
            self._cur_vb = entry[2]
            horizon = self._cur_vb + self._nbuckets
            overflow = self._overflow
            while overflow and overflow[0][2] < horizon:
                migrated = heapq.heappop(overflow)
                heapq.heappush(
                    self._buckets[migrated[2] & self._mask], migrated
                )
                self._wheel_count += 1
        else:
            heapq.heappop(self._buckets[bucket_index])
            self._wheel_count -= 1
        self._size -= 1
        self._cache = None
        if self._size < self._shrink_at:
            self._resize(self._nbuckets // 2)
        return entry[0], entry[1], entry[3]

    # -- inspection --------------------------------------------------------
    def peek_time(self) -> float:
        """Earliest queued time, or ``+inf`` when empty.

        O(1) when the cached minimum is valid — the event-fusion hot
        path peeks between every fused operation, and nothing between
        two fused operations pushes or pops.
        """
        located = self._cache
        if located is None:
            located = self._locate_min()
            self._cache = located
        if located is None:
            return math.inf
        return located[0][0]

    # -- internals ---------------------------------------------------------
    def _locate_min(self) -> Optional[Tuple[Entry, int]]:
        if self._size == 0:
            return None
        best: Optional[Entry] = None
        best_index = _OVERFLOW
        if self._wheel_count:
            buckets = self._buckets
            mask = self._mask
            vb = self._cur_vb
            for _ in range(self._nbuckets):
                bucket = buckets[vb & mask]
                if bucket:
                    head = bucket[0]
                    if head[2] == vb:
                        # The head belongs to this virtual bucket and,
                        # being the bucket's (time, seq) minimum, is the
                        # eligible minimum.
                        self._cur_vb = vb
                        best = head
                        best_index = vb & mask
                        break
                vb += 1
            else:
                # A full revolution found nothing eligible: a backward
                # pointer reset left wheel entries beyond one revolution
                # ahead. Fall back to a head scan over every bucket.
                best, best_index = self._global_min()
        if self._overflow:
            head = self._overflow[0]
            if best is None or (head[0], head[1]) < (best[0], best[1]):
                best = head
                best_index = _OVERFLOW
        if best is None:  # pragma: no cover - _size checked above
            return None
        return best, best_index

    def _global_min(self) -> Tuple[Optional[Entry], int]:
        """Minimum over all bucket heads (each head is its bucket's min)."""
        heads: List[Entry] = []
        indices: List[int] = []
        for bucket_index, bucket in enumerate(self._buckets):
            if bucket:
                heads.append(bucket[0])
                indices.append(bucket_index)
        if not heads:
            return None, _OVERFLOW
        pos = argmin_entries(heads)
        best = heads[pos]
        self._cur_vb = best[2]
        return best, indices[pos]

    def _entries(self) -> List[Entry]:
        out: List[Entry] = list(self._overflow)
        for bucket in self._buckets:
            out.extend(bucket)
        return out

    def _resize(self, nbuckets: int) -> None:
        entries = self._entries()
        sample = [e[0] for e in entries[:_WIDTH_SAMPLE]]
        self._set_geometry(estimate_width(sample, self._width), nbuckets)
        inv_width = self._inv_width
        self._buckets = [[] for _ in range(nbuckets)]
        self._overflow = []
        self._wheel_count = 0
        self._cache = None
        if entries:
            min_t = min(e[0] for e in entries)
            self._cur_vb = int(min_t * inv_width)
        horizon = self._cur_vb + nbuckets
        mask = self._mask
        for t, seq, _old_vb, item in entries:
            vb = int(t * inv_width)
            entry: Entry = (t, seq, vb, item)
            if vb >= horizon:
                heapq.heappush(self._overflow, entry)
            else:
                heapq.heappush(self._buckets[vb & mask], entry)
                self._wheel_count += 1

    def drain(self) -> List[Tuple[float, int, object]]:
        """Pop everything, in order (diagnostics/tests only)."""
        out: List[Tuple[float, int, object]] = []
        while self._size:
            out.append(self.pop())
        return out
