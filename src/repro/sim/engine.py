"""A compact discrete-event simulation engine.

The engine provides exactly the primitives the system models need:

* :class:`Event` — one-shot triggerable with callbacks and a value;
* :class:`Process` — a generator-based coroutine. Yield a number to wait
  that many *seconds* of simulated time, an :class:`Event` (including
  another process) to wait for it, or :class:`AllOf` to join several;
* :class:`Resource` — capacity-limited FIFO resource (the bus, BRAM
  ports);
* :class:`WrrResource` — a single-capacity resource whose waiters are
  served in weighted round-robin order per requester class. This models
  the paper's NoC router arbitration (Heisswolf et al.'s WRR scheduler).

Determinism: simultaneous events fire in schedule order (a monotonically
increasing sequence number breaks time ties), so identical inputs always
produce identical traces.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable, Dict, Generator, Iterable, List, Optional, Tuple

from ..errors import DeadlockError, SimulationError


class Event:
    """A one-shot event that processes can wait on."""

    __slots__ = ("engine", "callbacks", "triggered", "value")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: List[Callable[["Event"], None]] = []
        self.triggered = False
        self.value: object = None

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event now; waiters resume at the current time.

        All registered callbacks run from one scheduled thunk, in
        insertion order. This is order-equivalent to the historical
        one-closure-per-callback scheduling (the N closures got
        consecutive sequence numbers with nothing interleaved, so they
        ran back to back anyway) but keeps the queue depth independent
        of fan-in — a wide ``AllOf`` no longer floods the scheduler
        with N same-timestamp entries. An untriggered event with no
        waiters schedules nothing at all.

        On a fusing engine the dispatch loop additionally maintains the
        engine's pending-callback count: callbacks still waiting inside
        this closure are invisible to the event queue, and a fused
        operation in callback *i* advancing ``now`` before callback
        ``i+1`` ran would serialize work the reference engine runs
        concurrently. The count makes :meth:`Engine.can_advance` refuse
        exactly when the per-callback scheduling would have (siblings
        queued at the same timestamp ⇒ ``peek == now`` ⇒ no fusion).
        """
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        if self.callbacks:
            callbacks = self.callbacks
            self.callbacks = []
            engine = self.engine

            if engine.fastlane:

                def dispatch() -> None:
                    remaining = len(callbacks)
                    for cb in callbacks:
                        remaining -= 1
                        engine._batch_remaining = remaining
                        cb(self)

            else:

                def dispatch() -> None:
                    for cb in callbacks:
                        cb(self)

            engine.schedule(0.0, dispatch)
        return self

    def wait(self, callback: Callable[["Event"], None]) -> None:
        """Register a callback; fires immediately if already triggered."""
        if self.triggered:
            self.engine.schedule(0.0, lambda: callback(self))
        else:
            self.callbacks.append(callback)


class AllOf(Event):
    """An event that triggers once every child event has triggered."""

    __slots__ = ("_remaining",)

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        events = list(events)
        self._remaining = len(events)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in events:
            ev.wait(self._child_done)

    def _child_done(self, _ev: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self.triggered:
            self.succeed()


ProcessGenerator = Generator[object, object, object]


class Process(Event):
    """A coroutine driven by the engine; completes as an event.

    The generator's return value becomes the event value.
    """

    __slots__ = ("_gen", "name")

    def __init__(self, engine: "Engine", gen: ProcessGenerator, name: str = "") -> None:
        super().__init__(engine)
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        engine._active += 1
        engine.schedule(0.0, lambda: self._step(None))

    def _step(self, send_value: object) -> None:
        try:
            target = self._gen.send(send_value)
        except StopIteration as stop:
            self.engine._active -= 1
            self.succeed(stop.value)
            return
        except Exception:
            self.engine._active -= 1
            raise
        if isinstance(target, (int, float)):
            if target < 0:
                self.engine._active -= 1
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {target}"
                )
            self.engine.schedule(float(target), lambda: self._step(None))
        elif isinstance(target, Event):
            target.wait(lambda ev: self._step(ev.value))
        elif isinstance(target, (tuple, list)):
            AllOf(self.engine, target).wait(lambda ev: self._step(ev.value))
        else:
            self.engine._active -= 1
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {type(target).__name__}"
            )


class Engine:
    """The event loop: a priority queue over (time, seq, thunk)."""

    #: Event-fusion capability flag. Components consult this before
    #: taking a fused (synchronous) execution path; the reference
    #: engine keeps it False so its behavior — and therefore the
    #: differential oracle — is exactly the historical one.
    fastlane = False

    #: Callbacks still pending inside the currently running
    #: ``Event.succeed`` dispatch batch. Only written on fusing engines
    #: (``fastlane`` True), where a non-zero value vetoes fusion: those
    #: callbacks are due *now* but invisible to the event queue.
    _batch_remaining = 0

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = count()
        self._active = 0  # processes started but not finished
        self.events_processed = 0  # thunks executed by run()

    def schedule(self, delay: float, thunk: Callable[[], None]) -> None:
        """Run ``thunk`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), thunk))

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def process(self, gen: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, gen, name=name)

    def timeout(self, delay: float) -> Event:
        """An event that triggers after ``delay`` seconds."""
        ev = Event(self)
        self.schedule(delay, lambda: ev.succeed())
        return ev

    # -- event-fusion API (no-ops here; see repro.sim.fastcore.engine) -----
    def peek_time(self) -> float:
        """Earliest queued event time (``+inf`` when idle)."""
        return self._queue[0][0] if self._queue else float("inf")

    def can_advance(self, delay: float) -> bool:
        """The reference engine never fuses: every wait is scheduled."""
        return False

    def advance(self, delay: float) -> None:  # pragma: no cover - guarded
        raise SimulationError("reference engine cannot fuse events")

    def try_advance(self, delay: float) -> bool:
        """The reference engine never fuses: every wait is scheduled."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return False

    def run(self, until: Optional[float] = None, check_deadlock: bool = True) -> float:
        """Drain the event queue; returns the final simulation time.

        With ``check_deadlock`` (default) the engine raises when the
        queue empties while processes are still alive — i.e. somebody is
        waiting on an event nobody will ever trigger.
        """
        while self._queue:
            t, _seq, thunk = heapq.heappop(self._queue)
            if until is not None and t > until:
                heapq.heappush(self._queue, (t, _seq, thunk))
                self.now = until
                return self.now
            if t < self.now - 1e-18:  # pragma: no cover - defensive
                raise SimulationError("time went backwards")
            self.now = t
            self.events_processed += 1
            thunk()
        if check_deadlock and self._active > 0:
            raise DeadlockError(
                f"{self._active} process(es) still waiting with an empty "
                "event queue"
            )
        return self.now


class Resource:
    """Capacity-limited resource with FIFO granting.

    Usage inside a process::

        yield resource.request()
        try: ...
        finally: resource.release()
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: List[Event] = []
        # Utilization accounting (single-capacity resources only).
        self._busy_since: Optional[float] = None
        self.busy_time = 0.0
        self.grants = 0
        # Contention accounting: how often a request had to wait, and the
        # deepest queue ever observed (bus arbitration pressure).
        self.contentions = 0
        self.peak_waiters = 0
        # Optional profiling hooks (duck-typed to keep the engine free of
        # observability imports): when ``recorder`` is set, grants emit
        # occupancy samples on ``profile_lane`` and contended requests
        # emit ``wait_kind`` activity spans covering their queueing time.
        self.recorder: Optional[object] = None
        self.profile_lane = name
        self.wait_kind = "wait"
        self._wait_started: Dict[Event, float] = {}

    def queued(self) -> int:
        """Requests currently waiting for a grant."""
        return len(self._waiters)

    def request(self, key: object = None) -> Event:
        """Event that triggers when the resource is granted."""
        ev = Event(self.engine)
        if self._in_use < self.capacity:
            self._grant(ev)
        else:
            self.contentions += 1
            if self.recorder is not None:
                self._wait_started[ev] = self.engine.now
            self._enqueue(ev, key)
            self.peak_waiters = max(self.peak_waiters, self.queued())
        return ev

    def _fused_acquire(self) -> None:
        """Grant bookkeeping for a fused (synchronous) uncontended hold.

        Callers (component fast lanes) must have checked
        ``_in_use < capacity`` under ``engine.fastlane``; this replays
        exactly what :meth:`request` → :meth:`_grant` would have
        recorded for an uncontended grant — counters, busy-window
        start, and the recorder occupancy sample — without allocating
        the grant :class:`Event`. The matching release is the ordinary
        :meth:`release`.
        """
        self._in_use += 1
        self.grants += 1
        if self._in_use == 1:
            self._busy_since = self.engine.now
        rec = self.recorder
        if rec is not None:
            rec.occupancy(
                self.profile_lane, self.engine.now, self._in_use, self.queued()
            )

    def _enqueue(self, ev: Event, key: object) -> None:
        self._waiters.append(ev)

    def _dequeue(self) -> Optional[Event]:
        return self._waiters.pop(0) if self._waiters else None

    def _grant(self, ev: Event) -> None:
        self._in_use += 1
        self.grants += 1
        if self._in_use == 1:
            self._busy_since = self.engine.now
        rec = self.recorder
        if rec is not None:
            started = self._wait_started.pop(ev, None)
            if started is not None:
                rec.activity(
                    self.wait_kind, self.profile_lane, started, self.engine.now
                )
            rec.occupancy(
                self.profile_lane, self.engine.now, self._in_use, self.queued()
            )
        ev.succeed()

    def release(self) -> None:
        """Return one unit of capacity; grants the next waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self.busy_time += self.engine.now - self._busy_since
            self._busy_since = None
        if self.recorder is not None:
            self.recorder.occupancy(
                self.profile_lane, self.engine.now, self._in_use, self.queued()
            )
        nxt = self._dequeue()
        if nxt is not None:
            self._grant(nxt)

    def utilization(self, total_time: float) -> float:
        """Fraction of ``total_time`` the resource was busy."""
        if total_time <= 0:
            return 0.0
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.engine.now - self._busy_since
        return min(busy / total_time, 1.0)


class WrrResource(Resource):
    """Single resource with weighted-round-robin service per key.

    Waiters carry a *key* (e.g. the router input port). When the resource
    frees up, the scheduler walks the keys round-robin, serving up to
    ``weight[key]`` consecutive waiters of a key before moving on —
    the arbitration policy of the paper's NoC routers.
    """

    def __init__(
        self,
        engine: Engine,
        weights: Optional[Dict[object, int]] = None,
        default_weight: int = 1,
        name: str = "wrr",
    ) -> None:
        super().__init__(engine, capacity=1, name=name)
        if default_weight < 1:
            raise SimulationError("default_weight must be >= 1")
        self.weights = dict(weights or {})
        self.default_weight = default_weight
        self._queues: Dict[object, List[Event]] = {}
        self._rr_order: List[object] = []
        self._current_key: Optional[object] = None
        self._served_in_turn = 0

    def queued(self) -> int:
        """Requests waiting across all per-key queues."""
        return sum(len(q) for q in self._queues.values())

    def _enqueue(self, ev: Event, key: object) -> None:
        if key not in self._queues:
            self._queues[key] = []
            self._rr_order.append(key)
        self._queues[key].append(ev)

    def _weight_of(self, key: object) -> int:
        return self.weights.get(key, self.default_weight)

    def _dequeue(self) -> Optional[Event]:
        live = [k for k in self._rr_order if self._queues.get(k)]
        if not live:
            return None
        key = self._current_key
        if (
            key is not None
            and self._queues.get(key)
            and self._served_in_turn < self._weight_of(key)
        ):
            pass  # continue this key's turn
        else:
            # Advance round-robin to the next key with waiters.
            if key in live:
                start = (live.index(key) + 1) % len(live)
            else:
                start = 0
            key = live[start]
            self._current_key = key
            self._served_in_turn = 0
        self._served_in_turn += 1
        return self._queues[key].pop(0)
