"""Discrete-event simulation of FPGA accelerator systems.

This package replaces the paper's ML510 board: a small but real
discrete-event engine (:mod:`~repro.sim.engine`), component models for
the PLB-like bus, BRAM local memories, the 2×2 crossbar and the 2-D mesh
NoC with weighted-round-robin link arbitration, and system builders that
execute an application's kernels on the baseline and the proposed
interconnect, producing measured execution times that include transaction
overheads and contention the analytic model ignores.
"""

from .engine import AllOf, Engine, Event, Process, Resource, WrrResource
from .bus import PlbBus
from .memory import Bram, Sdram
from .crossbar import Crossbar
from .noc.mesh import NocMesh, NocParams
from .systems import (
    SimulatedTimes,
    SystemParams,
    simulate_baseline,
    simulate_proposed,
    simulate_software,
)
from .stats import SimulationStats, collect_stats
from .timeline import overlap_fraction, render_comparison, render_gantt

__all__ = [
    "Engine",
    "Event",
    "Process",
    "AllOf",
    "Resource",
    "WrrResource",
    "PlbBus",
    "Bram",
    "Sdram",
    "Crossbar",
    "NocMesh",
    "NocParams",
    "SystemParams",
    "SimulatedTimes",
    "simulate_software",
    "simulate_baseline",
    "simulate_proposed",
    "SimulationStats",
    "collect_stats",
    "render_gantt",
    "render_comparison",
    "overlap_fraction",
]
