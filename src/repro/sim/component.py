"""Base class for simulated hardware components.

Components carry a name, a clock domain and an optional activity trace.
The trace is a plain list of ``(time_s, label)`` tuples — cheap to record
and easy to assert on in tests.
"""

from __future__ import annotations

from typing import List, Tuple

from ..obs.profile import NULL_RECORDER
from ..units import Clock
from .engine import Engine


class Component:
    """A named, clocked participant in the simulation."""

    def __init__(self, engine: Engine, name: str, clock: Clock, trace: bool = False):
        self.engine = engine
        self.name = name
        self.clock = clock
        self.tracing = trace
        self.trace: List[Tuple[float, str]] = []
        # Profiling sink; the null object makes the hooks zero-cost
        # (one attribute load + falsy check) when profiling is off.
        self.recorder = NULL_RECORDER

    def cycles(self, n: float) -> float:
        """Convert ``n`` cycles of this component's clock to seconds."""
        return self.clock.cycles_to_seconds(n)

    def log(self, label: str) -> None:
        """Record an activity marker when tracing is enabled."""
        if self.tracing:
            self.trace.append((self.engine.now, label))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"
