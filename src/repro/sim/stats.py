"""Structured statistics from simulated executions.

Collects what a performance engineer would ask of a run: per-kernel
activity, bus occupancy, per-link NoC load and the busiest link — in one
picklable report with a table renderer. The CLI's ``simulate`` command
and the examples use it; tests assert its accounting against the raw
component counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError
from .bus import PlbBus
from .dma import DmaEngine
from .engine import Engine
from .noc.mesh import NocMesh
from .systems import SimulatedTimes

Coord = Tuple[int, int]


@dataclass(frozen=True)
class LinkStats:
    """Traffic summary of one directed NoC link."""

    src: Coord
    dst: Coord
    bytes_moved: int
    packets: int
    utilization: float
    #: Link-width flits carried (``ceil(bytes / link_width)`` per packet).
    flits: int = 0


@dataclass(frozen=True)
class SimulationStats:
    """Aggregated statistics of one simulated run."""

    label: str
    makespan_s: float
    bus_bytes: int
    bus_transactions: int
    bus_utilization: float
    noc_bytes: int
    noc_packets: int
    links: Tuple[LinkStats, ...] = ()
    kernel_busy: Dict[str, float] = field(default_factory=dict)
    #: Bus arbitration pressure: requests that had to wait / deepest queue.
    bus_contentions: int = 0
    bus_peak_waiters: int = 0
    #: DMA descriptor high-water mark (concurrent in-flight transfers).
    dma_transfers: int = 0
    dma_peak_queue: int = 0
    #: Discrete events the engine executed for this run.
    engine_events: int = 0
    #: Timed operations the fast backend executed synchronously (0 on
    #: the reference engine). Like ``engine_events`` this describes the
    #: engine implementation, not the simulated system, so it sits
    #: outside the backend-equivalence contract.
    engine_fused_events: int = 0

    @property
    def busiest_link(self) -> Optional[LinkStats]:
        """The link moving the most bytes (``None`` without a NoC)."""
        if not self.links:
            return None
        return max(self.links, key=lambda l: l.bytes_moved)

    @property
    def total_kernel_busy_s(self) -> float:
        """Σ of kernel active time (> makespan means real overlap)."""
        return sum(self.kernel_busy.values())

    def render(self) -> str:
        """Fixed-width textual report."""
        lines = [
            f"simulation stats [{self.label}]",
            f"  makespan          : {self.makespan_s * 1e3:.3f} ms",
            f"  bus               : {self.bus_bytes} B in "
            f"{self.bus_transactions} transactions "
            f"({self.bus_utilization:.1%} busy)",
        ]
        if self.bus_contentions:
            lines.append(
                f"  bus contention    : {self.bus_contentions} stalled "
                f"requests (peak queue {self.bus_peak_waiters})"
            )
        if self.dma_transfers:
            lines.append(
                f"  DMA               : {self.dma_transfers} transfers "
                f"(peak in flight {self.dma_peak_queue})"
            )
        if self.noc_bytes:
            lines.append(
                f"  NoC               : {self.noc_bytes} B in "
                f"{self.noc_packets} packets over {len(self.links)} used links"
            )
            busiest = self.busiest_link
            if busiest is not None:
                lines.append(
                    f"  busiest link      : {busiest.src}->{busiest.dst} "
                    f"({busiest.bytes_moved} B, {busiest.utilization:.1%} busy)"
                )
        lines.append(
            f"  kernel busy total : {self.total_kernel_busy_s * 1e3:.3f} ms "
            f"(parallelism {self.parallelism():.2f}x)"
        )
        return "\n".join(lines)

    def parallelism(self) -> float:
        """Average kernel concurrency: busy time / makespan."""
        if self.makespan_s <= 0:
            raise ConfigurationError("zero-makespan run has no parallelism")
        return self.total_kernel_busy_s / self.makespan_s


def collect_stats(
    times: SimulatedTimes,
    bus: Optional[PlbBus] = None,
    noc: Optional[NocMesh] = None,
    dma: Optional[DmaEngine] = None,
    engine: Optional[Engine] = None,
) -> SimulationStats:
    """Build a :class:`SimulationStats` from a run's artifacts.

    ``times`` alone yields the portable subset (kernel spans, bus busy
    seconds); passing the live ``bus``/``noc``/``dma``/``engine``
    components adds their exact byte/packet/per-link/contention counters.
    """
    makespan = times.kernels_s
    links: Tuple[LinkStats, ...] = ()
    noc_packets = 0
    if noc is not None:
        flit_bytes = noc.params.link_width_bytes
        links = tuple(
            LinkStats(
                src=l.src,
                dst=l.dst,
                bytes_moved=l.bytes_moved,
                packets=l.packets,
                utilization=l.utilization(makespan) if makespan > 0 else 0.0,
                flits=-(-l.bytes_moved // flit_bytes),
            )
            for l in noc.links.values()
            if l.bytes_moved > 0
        )
        noc_packets = noc.packets_delivered
    arb = bus._resource if bus is not None else None
    return SimulationStats(
        label=times.label,
        makespan_s=makespan,
        bus_bytes=bus.bytes_moved if bus is not None else 0,
        bus_transactions=bus.transactions if bus is not None else 0,
        bus_utilization=(
            bus.utilization(makespan) if bus is not None and makespan > 0 else 0.0
        ),
        noc_bytes=times.noc_bytes,
        noc_packets=noc_packets,
        links=links,
        kernel_busy={
            name: end - start
            for name, (start, end) in times.kernel_spans.items()
        },
        bus_contentions=arb.contentions if arb is not None else 0,
        bus_peak_waiters=arb.peak_waiters if arb is not None else 0,
        dma_transfers=dma.transfers if dma is not None else 0,
        dma_peak_queue=dma.peak_pending if dma is not None else 0,
        engine_events=engine.events_processed if engine is not None else 0,
        engine_fused_events=(
            getattr(engine, "fused_events", 0) if engine is not None else 0
        ),
    )


def publish_stats(
    stats: SimulationStats, registry, system: Optional[str] = None
) -> None:
    """Push a run's counters into a metrics registry.

    ``registry`` is a :class:`repro.service.metrics.MetricsRegistry`
    (duck-typed to avoid a sim→service import edge). Every series is
    labelled with the run (``system``, default the stats label) so
    several runs can share one registry; per-link series add ``src`` /
    ``dst`` labels.
    """
    labels = {"system": system or stats.label}
    registry.incr("sim_bus_bytes", by=stats.bus_bytes, labels=labels)
    registry.incr(
        "sim_bus_transactions", by=stats.bus_transactions, labels=labels
    )
    registry.incr(
        "sim_bus_contention_stalls", by=stats.bus_contentions, labels=labels
    )
    registry.gauge("sim_bus_peak_waiters", stats.bus_peak_waiters, labels=labels)
    registry.gauge("sim_bus_utilization", stats.bus_utilization, labels=labels)
    registry.incr("sim_dma_transfers", by=stats.dma_transfers, labels=labels)
    registry.gauge("sim_dma_peak_queue", stats.dma_peak_queue, labels=labels)
    registry.incr("sim_engine_events", by=stats.engine_events, labels=labels)
    registry.incr(
        "sim_engine_fused_events", by=stats.engine_fused_events, labels=labels
    )
    registry.gauge("sim_makespan_seconds", stats.makespan_s, labels=labels)
    if stats.noc_bytes:
        registry.incr("sim_noc_bytes", by=stats.noc_bytes, labels=labels)
        registry.incr("sim_noc_packets", by=stats.noc_packets, labels=labels)
    for link in stats.links:
        link_labels = dict(labels)
        link_labels["src"] = f"{link.src[0]},{link.src[1]}"
        link_labels["dst"] = f"{link.dst[0]},{link.dst[1]}"
        registry.incr("sim_link_bytes", by=link.bytes_moved, labels=link_labels)
        registry.incr("sim_link_flits", by=link.flits, labels=link_labels)
        registry.gauge(
            "sim_link_utilization", link.utilization, labels=link_labels
        )
