"""Structured statistics from simulated executions.

Collects what a performance engineer would ask of a run: per-kernel
activity, bus occupancy, per-link NoC load and the busiest link — in one
picklable report with a table renderer. The CLI's ``simulate`` command
and the examples use it; tests assert its accounting against the raw
component counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError
from .bus import PlbBus
from .noc.mesh import NocMesh
from .systems import SimulatedTimes

Coord = Tuple[int, int]


@dataclass(frozen=True)
class LinkStats:
    """Traffic summary of one directed NoC link."""

    src: Coord
    dst: Coord
    bytes_moved: int
    packets: int
    utilization: float


@dataclass(frozen=True)
class SimulationStats:
    """Aggregated statistics of one simulated run."""

    label: str
    makespan_s: float
    bus_bytes: int
    bus_transactions: int
    bus_utilization: float
    noc_bytes: int
    noc_packets: int
    links: Tuple[LinkStats, ...] = ()
    kernel_busy: Dict[str, float] = field(default_factory=dict)

    @property
    def busiest_link(self) -> Optional[LinkStats]:
        """The link moving the most bytes (``None`` without a NoC)."""
        if not self.links:
            return None
        return max(self.links, key=lambda l: l.bytes_moved)

    @property
    def total_kernel_busy_s(self) -> float:
        """Σ of kernel active time (> makespan means real overlap)."""
        return sum(self.kernel_busy.values())

    def render(self) -> str:
        """Fixed-width textual report."""
        lines = [
            f"simulation stats [{self.label}]",
            f"  makespan          : {self.makespan_s * 1e3:.3f} ms",
            f"  bus               : {self.bus_bytes} B in "
            f"{self.bus_transactions} transactions "
            f"({self.bus_utilization:.1%} busy)",
        ]
        if self.noc_bytes:
            lines.append(
                f"  NoC               : {self.noc_bytes} B in "
                f"{self.noc_packets} packets over {len(self.links)} used links"
            )
            busiest = self.busiest_link
            if busiest is not None:
                lines.append(
                    f"  busiest link      : {busiest.src}->{busiest.dst} "
                    f"({busiest.bytes_moved} B, {busiest.utilization:.1%} busy)"
                )
        lines.append(
            f"  kernel busy total : {self.total_kernel_busy_s * 1e3:.3f} ms "
            f"(parallelism {self.parallelism():.2f}x)"
        )
        return "\n".join(lines)

    def parallelism(self) -> float:
        """Average kernel concurrency: busy time / makespan."""
        if self.makespan_s <= 0:
            raise ConfigurationError("zero-makespan run has no parallelism")
        return self.total_kernel_busy_s / self.makespan_s


def collect_stats(
    times: SimulatedTimes,
    bus: Optional[PlbBus] = None,
    noc: Optional[NocMesh] = None,
) -> SimulationStats:
    """Build a :class:`SimulationStats` from a run's artifacts.

    ``times`` alone yields the portable subset (kernel spans, bus busy
    seconds); passing the live ``bus``/``noc`` components adds their
    exact byte/packet/per-link counters.
    """
    makespan = times.kernels_s
    links: Tuple[LinkStats, ...] = ()
    noc_packets = 0
    if noc is not None:
        links = tuple(
            LinkStats(
                src=l.src,
                dst=l.dst,
                bytes_moved=l.bytes_moved,
                packets=l.packets,
                utilization=l.utilization(makespan) if makespan > 0 else 0.0,
            )
            for l in noc.links.values()
            if l.bytes_moved > 0
        )
        noc_packets = noc.packets_delivered
    return SimulationStats(
        label=times.label,
        makespan_s=makespan,
        bus_bytes=bus.bytes_moved if bus is not None else 0,
        bus_transactions=bus.transactions if bus is not None else 0,
        bus_utilization=(
            bus.utilization(makespan) if bus is not None and makespan > 0 else 0.0
        ),
        noc_bytes=times.noc_bytes,
        noc_packets=noc_packets,
        links=links,
        kernel_busy={
            name: end - start
            for name, (start, end) in times.kernel_spans.items()
        },
    )
