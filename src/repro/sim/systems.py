"""System builders: execute an application on each system variant.

Three variants mirror the paper's evaluation:

* :func:`simulate_software` — everything on the host (the vs-SW
  reference; trivially additive, no DES needed);
* :func:`simulate_baseline` — the bus-based accelerator: for each kernel
  in invocation order, fetch *all* input over the bus, compute, send all
  output back (Section III-A's model);
* :func:`simulate_proposed` — the designed system: host traffic on the
  bus, kernel-to-kernel traffic over shared memories (zero copies) and
  the NoC (overlapped with computation), duplication and pipelining
  realized as concurrent processes.

Cycles in the communication graph (e.g. the fluid solver's feedback
edges) are handled the way the application actually behaves: an edge
pointing backwards in invocation order carries *next-iteration* data, so
the consumer does not block on it within the simulated iteration — but
the transfer still happens and still occupies the interconnect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.commgraph import CommGraph
from ..core.parallel import PipelineCase
from ..core.plan import InterconnectPlan, memory_node
from ..errors import SimulationError
from ..units import speedup
from .backend import make_engine
from .bus import PlbBus
from .dma import DmaEngine
from .engine import Engine, Event
from .hwkernel import HwKernelSim
from .noc.mesh import NocMesh, NocParams


@dataclass(frozen=True, slots=True)
class SystemParams:
    """Hardware parameters shared by all simulated variants."""

    bus_width_bytes: int = 8
    bus_arbitration_cycles: int = 3
    bus_address_cycles: int = 2
    bus_burst_bytes: int = 1024
    dma_setup_cycles: int = 40
    noc_link_width_bytes: int = 4
    noc_hop_latency_cycles: int = 3
    noc_max_packet_bytes: int = 4096
    #: Configure WRR link weights from the plan's flows (QoS mode).
    noc_qos: bool = False
    #: NoC switching: "store_forward" or "wormhole" (mesh only).
    noc_transport: str = "store_forward"

    def make_bus(self, engine: Engine) -> PlbBus:
        """Instantiate the system bus."""
        return PlbBus(
            engine,
            width_bytes=self.bus_width_bytes,
            arbitration_cycles=self.bus_arbitration_cycles,
            address_cycles=self.bus_address_cycles,
            typical_burst_bytes=self.bus_burst_bytes,
        )

    def theta_s_per_byte(self) -> float:
        """The ``θ`` this hardware exhibits (for the design algorithm)."""
        return self.make_bus(Engine()).theta_s_per_byte

    def make_noc(
        self, engine: Engine, width: int, height: int, topology: str = "mesh"
    ) -> NocMesh:
        """Instantiate a mesh/torus NoC of the given dimensions."""
        return NocMesh(
            engine,
            NocParams(
                width=width,
                height=height,
                link_width_bytes=self.noc_link_width_bytes,
                hop_latency_cycles=self.noc_hop_latency_cycles,
                max_packet_bytes=self.noc_max_packet_bytes,
                topology=topology,
                transport=self.noc_transport,
            ),
        )


@dataclass(frozen=True)
class SimulatedTimes:
    """Measured execution summary of one simulated system."""

    label: str
    #: Makespan of the kernel phase (fetch → compute → write-back).
    kernels_s: float
    host_other_s: float
    #: Total computation demand (Σ τ) for the comm/comp split.
    computation_s: float
    #: Time the bus was busy during the run.
    bus_busy_s: float
    #: Bytes delivered by the NoC (0 when there is none).
    noc_bytes: int = 0
    extras: Dict[str, float] = field(default_factory=dict)
    #: Per-kernel computation spans ``{name: (start_s, end_s)}`` — the
    #: raw material for timeline/Gantt rendering.
    kernel_spans: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    @property
    def application_s(self) -> float:
        """Overall application time (host parts + kernel phase)."""
        return self.host_other_s + self.kernels_s

    @property
    def communication_s(self) -> float:
        """Non-computation share of the kernel phase (≥ 0)."""
        return max(self.kernels_s - self.computation_s, 0.0)

    def speedup_over(self, other: "SimulatedTimes") -> Tuple[float, float]:
        """(application, kernels) speed-up of *this* system vs ``other``."""
        return (
            speedup(other.application_s, self.application_s),
            speedup(other.kernels_s, self.kernels_s),
        )


def _attach_recorder(
    recorder,
    bus: Optional[PlbBus] = None,
    dma: Optional[DmaEngine] = None,
    noc: Optional[NocMesh] = None,
    sims=(),
) -> None:
    """Point a system's components at a profiling recorder.

    No-op for ``None`` or a disabled recorder so the simulators stay
    zero-cost by default. Arbitration-level hooks (bus grants, NoC link
    waits) go through the duck-typed attributes on the engine's
    :class:`~repro.sim.engine.Resource` instances; the lane and wait
    kind set here are what the profiler's timeseries and critical path
    report.
    """
    if recorder is None or not recorder.enabled:
        return
    if bus is not None:
        bus.recorder = recorder
        bus._resource.recorder = recorder
        bus._resource.profile_lane = bus.name
        bus._resource.wait_kind = "bus_wait"
    if dma is not None:
        dma.recorder = recorder
    if noc is not None:
        noc.recorder = recorder
        for (src, dst), link in noc.links.items():
            link.arbiter.recorder = recorder
            link.arbiter.profile_lane = f"noc{src}->{dst}"
            link.arbiter.wait_kind = "noc_wait"
    for sim in sims:
        sim.recorder = recorder


def simulate_software(graph: CommGraph, host_other_s: float) -> SimulatedTimes:
    """All-software execution: purely additive on the host."""
    sw = sum(graph.kernel(k).sw_seconds for k in graph.kernel_names())
    return SimulatedTimes(
        label="software",
        kernels_s=sw,
        host_other_s=host_other_s,
        computation_s=sw,
        bus_busy_s=0.0,
    )


def simulate_baseline(
    graph: CommGraph,
    host_other_s: float,
    params: SystemParams = SystemParams(),
    recorder=None,
    backend: Optional[str] = None,
) -> SimulatedTimes:
    """The conventional bus-based accelerator (Section III-A).

    ``recorder`` (a :class:`repro.obs.profile.TimeseriesRecorder`) turns
    on simulation-time profiling; deliveries are recorded host-mediated
    (``host→k`` of ``D_in``, ``k→host`` of ``D_out``) because every byte
    crosses the bus through the host in this system.

    ``backend`` selects the event engine (see :mod:`repro.sim.backend`);
    both backends produce byte-identical results.
    """
    engine = make_engine(backend)
    bus = params.make_bus(engine)
    dma = DmaEngine(engine, bus, setup_cycles=params.dma_setup_cycles)
    _attach_recorder(recorder, bus=bus, dma=dma)

    spans: Dict[str, Tuple[float, float]] = {}

    def main():
        for name in graph.invocation_order():
            sim = HwKernelSim(engine, graph.kernel(name))
            if recorder is not None:
                sim.recorder = recorder
            yield from dma.transfer(graph.d_in(name), requester=f"{name}.in")
            if recorder is not None:
                recorder.delivery(
                    engine.now, "host", name, graph.d_in(name), "bus"
                )
            yield from sim.compute()
            sim.outputs_done.succeed()
            yield from dma.transfer(graph.d_out(name), requester=f"{name}.out")
            if recorder is not None:
                recorder.delivery(
                    engine.now, name, "host", graph.d_out(name), "bus"
                )
            spans[name] = (sim.started_at, sim.finished_at)

    engine.process(main(), name="baseline")
    makespan = engine.run()
    comp = sum(graph.kernel(k).tau_seconds for k in graph.kernel_names())
    return SimulatedTimes(
        label="baseline",
        kernels_s=makespan,
        host_other_s=host_other_s,
        computation_s=comp,
        bus_busy_s=bus._resource.busy_time,
        kernel_spans=spans,
        extras={"bus_bytes": float(bus.bytes_moved)},
    )


def simulate_pipelined_baseline(
    graph: CommGraph,
    host_other_s: float,
    params: SystemParams = SystemParams(),
    recorder=None,
    backend: Optional[str] = None,
) -> SimulatedTimes:
    """A smarter bus-only baseline: double-buffered input fetch.

    Section III-A notes "the fetching phase can be done in pipeline with
    the computation phase" but adopts the sequential model as the
    general baseline. This variant quantifies that choice: kernel
    ``i+1``'s input is fetched over the bus while kernel ``i`` computes
    (output write-back still serializes, as both contend for the same
    local-memory port and bus). The ablation bench compares it against
    both the paper's baseline and the proposed system.
    """
    engine = make_engine(backend)
    bus = params.make_bus(engine)
    dma = DmaEngine(engine, bus, setup_cycles=params.dma_setup_cycles)

    order = graph.invocation_order()
    sims = {name: HwKernelSim(engine, graph.kernel(name)) for name in order}
    _attach_recorder(recorder, bus=bus, dma=dma, sims=sims.values())
    fetched = {name: engine.event() for name in order}
    spans: Dict[str, Tuple[float, float]] = {}

    def prefetcher():
        # Fetch inputs in invocation order, ahead of the compute chain.
        for name in order:
            yield from dma.transfer(graph.d_in(name), requester=f"{name}.in")
            if recorder is not None:
                recorder.delivery(
                    engine.now, "host", name, graph.d_in(name), "bus"
                )
            fetched[name].succeed()

    def executor():
        for name in order:
            sim = sims[name]
            yield fetched[name]
            yield from sim.compute()
            sim.outputs_done.succeed()
            yield from dma.transfer(graph.d_out(name), requester=f"{name}.out")
            if recorder is not None:
                recorder.delivery(
                    engine.now, name, "host", graph.d_out(name), "bus"
                )
            spans[name] = (sim.started_at, sim.finished_at)

    engine.process(prefetcher(), name="prefetch")
    engine.process(executor(), name="execute")
    makespan = engine.run()
    comp = sum(graph.kernel(k).tau_seconds for k in graph.kernel_names())
    return SimulatedTimes(
        label="pipelined_baseline",
        kernels_s=makespan,
        host_other_s=host_other_s,
        computation_s=comp,
        bus_busy_s=bus._resource.busy_time,
        kernel_spans=spans,
        extras={"bus_bytes": float(bus.bytes_moved)},
    )


def _split(nbytes: int) -> Tuple[int, int]:
    half = nbytes // 2
    return half, nbytes - half


def simulate_proposed(
    plan: InterconnectPlan,
    host_other_s: float,
    params: SystemParams = SystemParams(),
    components_out: Optional[Dict[str, object]] = None,
    recorder=None,
    backend: Optional[str] = None,
) -> SimulatedTimes:
    """Execute the designed system as a concurrent process network.

    ``components_out``, when given, receives the live ``"bus"``,
    ``"noc"``, ``"dma"`` and ``"engine"`` component instances after the
    run, so callers (e.g. the statistics collector) can read their exact
    counters.

    ``recorder`` turns on simulation-time profiling: components emit
    activity/occupancy samples and every kernel→kernel or host↔kernel
    payload is recorded as a *direct* delivery on the channel it used
    (``sm``, ``noc`` or ``bus``), which the profiler diffs against the
    plan's graph for byte conservation.
    """
    graph = plan.graph
    engine = make_engine(backend)
    bus = params.make_bus(engine)
    dma = DmaEngine(engine, bus, setup_cycles=params.dma_setup_cycles)

    noc: Optional[NocMesh] = None
    coords: Dict[str, Tuple[int, int]] = {}
    if plan.noc is not None:
        placement = plan.noc.placement
        noc = params.make_noc(
            engine,
            placement.width,
            placement.height,
            topology="torus" if placement.torus else "mesh",
        )
        coords = dict(placement.positions)
        if params.noc_qos:
            from .noc.qos import apply_qos_weights

            apply_qos_weights(noc, plan)

    # --- classify edges -------------------------------------------------
    sm_edges = {(l.producer, l.consumer) for l in plan.sharing}
    noc_edges = (
        {(p, c) for p, c, _ in plan.noc.edges} if plan.noc is not None else set()
    )
    all_edges = list(graph.kk_edges)
    relay_edges = [e for e in all_edges if e not in sm_edges and e not in noc_edges]

    order = graph.invocation_order()
    pos = {name: i for i, name in enumerate(order)}

    case1 = {
        d.kernel
        for d in plan.pipeline
        if d.applied and d.case is PipelineCase.HOST_STREAM
    }
    case2 = {
        (d.kernel, d.consumer)
        for d in plan.pipeline
        if d.applied and d.case is PipelineCase.KERNEL_STREAM
    }

    sims = {name: HwKernelSim(engine, graph.kernel(name)) for name in order}
    _attach_recorder(recorder, bus=bus, dma=dma, noc=noc, sims=sims.values())
    first_arrive: Dict[Tuple[str, str], Event] = {}
    second_arrive: Dict[Tuple[str, str], Event] = {}
    for e in all_edges:
        first_arrive[e] = engine.event()
        second_arrive[e] = engine.event()

    # --- per-edge sender processes ---------------------------------------
    def sender(p: str, c: str, nbytes: int, kind: str):
        sim = sims[p]
        streamed = (p, c) in case2 and kind in ("sm", "noc")
        rec = recorder
        if kind == "sm":
            # Shared local memory: the consumer reads in place, so the
            # "delivery" is instantaneous at the producer's commit point.
            if streamed:
                h1, h2 = _split(nbytes)
                yield sim.compute_half
                if rec is not None:
                    rec.delivery(engine.now, p, c, h1, "sm")
                first_arrive[(p, c)].succeed()
                yield sim.compute_done
                if rec is not None:
                    rec.delivery(engine.now, p, c, h2, "sm")
                second_arrive[(p, c)].succeed()
            else:
                yield sim.compute_done
                if rec is not None:
                    rec.delivery(engine.now, p, c, nbytes, "sm")
                first_arrive[(p, c)].succeed()
                second_arrive[(p, c)].succeed()
        elif kind == "noc":
            assert noc is not None
            src = coords[p]
            dst = coords[memory_node(c)]
            flow = f"{p}->{c}"
            if streamed:
                h1, h2 = _split(nbytes)
                yield sim.compute_half
                if h1:
                    yield from noc.send(src, dst, h1, flow=flow)
                if rec is not None:
                    rec.delivery(engine.now, p, c, h1, "noc")
                first_arrive[(p, c)].succeed()
                yield sim.compute_done
                if h2:
                    yield from noc.send(src, dst, h2, flow=flow)
                if rec is not None:
                    rec.delivery(engine.now, p, c, h2, "noc")
                second_arrive[(p, c)].succeed()
            else:
                yield sim.compute_done
                yield from noc.send(src, dst, nbytes, flow=flow)
                if rec is not None:
                    rec.delivery(engine.now, p, c, nbytes, "noc")
                first_arrive[(p, c)].succeed()
                second_arrive[(p, c)].succeed()
        elif kind == "relay":
            # No custom interconnect for this edge: producer uploads to
            # the host, host re-delivers to the consumer — two bus trips.
            yield sim.compute_done
            yield from dma.transfer(nbytes, requester=f"{p}->host")
            yield from dma.transfer(nbytes, requester=f"host->{c}")
            if rec is not None:
                rec.delivery(engine.now, p, c, nbytes, "bus")
            first_arrive[(p, c)].succeed()
            second_arrive[(p, c)].succeed()
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown edge kind {kind!r}")

    sender_procs = []
    for (p, c), b in graph.kk_edges.items():
        kind = "sm" if (p, c) in sm_edges else "noc" if (p, c) in noc_edges else "relay"
        sender_procs.append(
            engine.process(sender(p, c, b, kind), name=f"send:{p}->{c}")
        )

    # --- per-kernel host-output uploader ----------------------------------
    def uploader(name: str):
        sim = sims[name]
        h_out = graph.d_h_out(name)
        if h_out == 0:
            yield sim.compute_done
            return
        if name in case1:
            h1, h2 = _split(h_out)
            yield sim.compute_half
            if h1:
                yield from dma.transfer(h1, requester=f"{name}.out1")
                if recorder is not None:
                    recorder.delivery(engine.now, name, "host", h1, "bus")
            yield sim.compute_done
            if h2:
                yield from dma.transfer(h2, requester=f"{name}.out2")
                if recorder is not None:
                    recorder.delivery(engine.now, name, "host", h2, "bus")
        else:
            yield sim.compute_done
            yield from dma.transfer(h_out, requester=f"{name}.out")
            if recorder is not None:
                recorder.delivery(engine.now, name, "host", h_out, "bus")

    uploader_procs = [
        engine.process(uploader(n), name=f"upload:{n}") for n in order
    ]

    # --- per-kernel main process --------------------------------------------
    def kernel_proc(name: str):
        sim = sims[name]
        # Host input fetch (possibly streamed).
        fetch2: Optional[Event] = None
        h_in = graph.d_h_in(name)
        if h_in > 0:
            if name in case1:
                h1, h2 = _split(h_in)
                if h1:
                    yield from dma.transfer(h1, requester=f"{name}.in1")
                    if recorder is not None:
                        recorder.delivery(engine.now, "host", name, h1, "bus")
                if h2:
                    def fetch_rest(n=name, b=h2):
                        yield from dma.transfer(b, requester=f"{n}.in2")
                        if recorder is not None:
                            recorder.delivery(engine.now, "host", n, b, "bus")
                    fetch2 = engine.process(fetch_rest(), name=f"fetch2:{name}")
            else:
                yield from dma.transfer(h_in, requester=f"{name}.in")
                if recorder is not None:
                    recorder.delivery(engine.now, "host", name, h_in, "bus")
        # Wait for forward-edge inputs (first halves).
        forward_in = [
            (p, name)
            for (p, c) in all_edges
            if c == name and pos[p] < pos[name]
        ]
        firsts = [first_arrive[e] for e in forward_in]
        if firsts:
            yield firsts
        gates: List[Event] = [second_arrive[e] for e in forward_in]
        if fetch2 is not None:
            gates.append(fetch2)
        yield from sim.compute(second_half_gates=gates or None)

    kernel_procs = [
        engine.process(kernel_proc(n), name=f"kernel:{n}") for n in order
    ]

    makespan = engine.run()
    if components_out is not None:
        components_out["bus"] = bus
        components_out["dma"] = dma
        components_out["engine"] = engine
        if noc is not None:
            components_out["noc"] = noc
    comp = sum(graph.kernel(k).tau_seconds for k in order)
    return SimulatedTimes(
        label="proposed",
        kernels_s=makespan,
        host_other_s=host_other_s,
        computation_s=comp,
        bus_busy_s=bus._resource.busy_time,
        noc_bytes=noc.bytes_delivered if noc is not None else 0,
        extras={
            "bus_utilization": bus.utilization(makespan) if makespan > 0 else 0.0,
            "bus_bytes": float(bus.bytes_moved),
            "noc_byte_hops": float(
                sum(l.bytes_moved for l in noc.links.values())
            ) if noc is not None else 0.0,
        },
        kernel_spans={
            name: (sim.started_at, sim.finished_at)
            for name, sim in sims.items()
            if sim.started_at is not None and sim.finished_at is not None
        },
    )
