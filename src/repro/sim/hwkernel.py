"""Simulated HW kernel: computation phases and synchronization events.

A kernel exposes three events the schedule wires together:

* ``compute_half`` — the first half of the computation finished (this is
  the hook pipelining case 2 and streamed outputs attach to);
* ``compute_done`` — all computation finished;
* ``outputs_done`` — every output (bus upload, NoC send, shared-memory
  hand-off) has been delivered.

The compute process itself runs ``τ`` split into two halves, optionally
gating the second half on extra events (e.g. the second segment of a
streamed host fetch, or the second half of a streamed producer result).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.kernel import KernelSpec
from ..errors import SimulationError
from ..units import KERNEL_CLOCK, Clock
from .component import Component
from .engine import Engine, Event


class HwKernelSim(Component):
    """One kernel instance inside a simulated system."""

    def __init__(
        self,
        engine: Engine,
        spec: KernelSpec,
        clock: Clock = KERNEL_CLOCK,
        trace: bool = False,
    ) -> None:
        super().__init__(engine, spec.name, clock, trace=trace)
        self.spec = spec
        self.compute_half: Event = engine.event()
        self.compute_done: Event = engine.event()
        self.outputs_done: Event = engine.event()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def tau_seconds(self) -> float:
        """The kernel's computation time in seconds."""
        return self.clock.cycles_to_seconds(self.spec.tau_cycles)

    def compute(self, second_half_gates: Optional[List[Event]] = None):
        """Process generator: run the two computation halves.

        ``second_half_gates`` are extra events the second half must wait
        for (beyond simply finishing the first half).
        """
        if self.started_at is not None:
            raise SimulationError(f"kernel {self.name!r} computed twice")
        self.started_at = self.engine.now
        half = self.tau_seconds / 2.0
        rec = self.recorder
        self.log("compute: first half")
        started = self.engine.now
        # Fast lane: each half is a pure wait — fuse when no queued
        # event lands inside it.
        if not self.engine.try_advance(half):
            yield half
        if rec.enabled:
            rec.activity(
                "compute", self.name, started, self.engine.now, "first half"
            )
        self.compute_half.succeed()
        if second_half_gates:
            yield list(second_half_gates)
        self.log("compute: second half")
        started = self.engine.now
        if not self.engine.try_advance(half):
            yield half
        if rec.enabled:
            rec.activity(
                "compute", self.name, started, self.engine.now, "second half"
            )
        self.finished_at = self.engine.now
        self.compute_done.succeed()
