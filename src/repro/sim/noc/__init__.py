"""2-D mesh NoC with XY routing and weighted-round-robin arbitration.

Models the NoC the paper adapts from Heisswolf et al. ("A scalable NoC
router design providing QoS support using weighted round robin
scheduling"): a mesh of 5-port routers; packets follow dimension-ordered
XY routes; contended links are granted in weighted round-robin order per
input; kernels and local memories attach through network adapters that
charge a packetization latency.
"""

from .packet import Packet
from .routing import adjacent, xy_route
from .router import Link
from .mesh import NocMesh, NocParams
from .adapter import AdapterParams
from .qos import apply_qos_weights, flow_link_loads, weights_from_loads

__all__ = [
    "Packet",
    "xy_route",
    "adjacent",
    "Link",
    "NocMesh",
    "NocParams",
    "AdapterParams",
    "flow_link_loads",
    "weights_from_loads",
    "apply_qos_weights",
]
