"""Static NoC load analysis of an interconnect plan.

Before simulating, the planned flows already determine each link's
offered load under the placement and routing: the classic *channel
load* analysis. The maximum channel load bounds the NoC's sustainable
throughput; comparing the static prediction against the simulator's
measured per-link traffic validates both (the test suite does exactly
that — the two must agree byte-for-byte, since routing is deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ...core.plan import InterconnectPlan, memory_node
from ...errors import ConfigurationError
from .routing import torus_xy_route, xy_route

Coord = Tuple[int, int]
LinkKey = Tuple[Coord, Coord]


@dataclass(frozen=True)
class NocLoadReport:
    """Channel-load summary of one plan's NoC."""

    #: Planned bytes per directed link.
    link_loads: Dict[LinkKey, int]
    total_flow_bytes: int
    #: Σ bytes × hops — what the links collectively carry.
    byte_hops: int

    @property
    def max_channel_load(self) -> int:
        """The hottest link's bytes (the throughput bottleneck)."""
        return max(self.link_loads.values(), default=0)

    @property
    def average_hops(self) -> float:
        """Mean hop count weighted by flow bytes."""
        if self.total_flow_bytes == 0:
            return 0.0
        return self.byte_hops / self.total_flow_bytes

    @property
    def load_balance(self) -> float:
        """Mean/max link load in (0, 1]; 1.0 = perfectly balanced."""
        if not self.link_loads or self.max_channel_load == 0:
            return 1.0
        mean = sum(self.link_loads.values()) / len(self.link_loads)
        return mean / self.max_channel_load

    def serialization_bound_s(
        self, link_width_bytes: int, clock_hz: float
    ) -> float:
        """Lower bound on NoC drain time from the hottest link.

        No schedule can finish faster than the bottleneck link takes to
        serialize its offered bytes.
        """
        if link_width_bytes <= 0 or clock_hz <= 0:
            raise ConfigurationError("invalid link width or clock")
        cycles = -(-self.max_channel_load // link_width_bytes)
        return cycles / clock_hz


def analyze_noc_load(plan: InterconnectPlan) -> Optional[NocLoadReport]:
    """Compute the channel-load report (``None`` when there is no NoC)."""
    if plan.noc is None:
        return None
    placement = plan.noc.placement
    loads: Dict[LinkKey, int] = {}
    total = 0
    byte_hops = 0
    for producer, consumer, nbytes in plan.noc.edges:
        src = placement.positions[producer]
        dst = placement.positions[memory_node(consumer)]
        if placement.torus:
            path = torus_xy_route(src, dst, placement.width, placement.height)
        else:
            path = xy_route(src, dst)
        total += nbytes
        byte_hops += nbytes * len(path)
        for link in path:
            loads[link] = loads.get(link, 0) + nbytes
    return NocLoadReport(
        link_loads=loads, total_flow_bytes=total, byte_hops=byte_hops
    )
