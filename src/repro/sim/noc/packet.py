"""NoC packets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ...errors import ConfigurationError

Coord = Tuple[int, int]


@dataclass(frozen=True, slots=True)
class Packet:
    """One data packet travelling source → destination on the mesh."""

    pid: int
    src: Coord
    dst: Coord
    nbytes: int
    #: Label of the logical flow (producer->consumer), for stats.
    flow: str = ""

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ConfigurationError(f"packet {self.pid} has no payload")
