"""Mesh links with weighted-round-robin arbitration.

Each directed link between adjacent routers is a single-capacity
:class:`~repro.sim.engine.WrrResource`; the requester key is the packet's
*upstream* router (i.e. the router input port), so contention between
flows entering a router from different directions is resolved exactly the
way the Heisswolf WRR router resolves it. Link weights default to 1
(plain round-robin); QoS experiments can pass per-port weights.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...units import Clock
from ..engine import Engine, WrrResource

Coord = Tuple[int, int]


class Link:
    """One directed link between two adjacent routers."""

    def __init__(
        self,
        engine: Engine,
        src: Coord,
        dst: Coord,
        clock: Clock,
        width_bytes: int,
        weights: Optional[Dict[object, int]] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.clock = clock
        self.width_bytes = width_bytes
        self.arbiter = WrrResource(
            engine, weights=weights, name=f"link{src}->{dst}"
        )
        self.bytes_moved = 0
        self.packets = 0

    def serialization_seconds(self, nbytes: int) -> float:
        """Time the payload occupies the link wires."""
        cycles = -(-nbytes // self.width_bytes)  # ceil division
        return self.clock.cycles_to_seconds(cycles)

    def record(self, nbytes: int) -> None:
        """Account a completed traversal."""
        self.bytes_moved += nbytes
        self.packets += 1

    def utilization(self, total_time: float) -> float:
        """Busy fraction of this link over ``total_time``."""
        return self.arbiter.utilization(total_time)
