"""Dimension-ordered (XY) routing on the 2-D mesh.

XY routing first corrects the X coordinate, then the Y coordinate. It is
minimal and deadlock-free on meshes — the property that lets the flow
model hold one link at a time without circular waits.
"""

from __future__ import annotations

from typing import List, Tuple

from ...errors import SimulationError

Coord = Tuple[int, int]


def adjacent(a: Coord, b: Coord) -> bool:
    """Whether two mesh coordinates are neighbours (one hop apart)."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1


def xy_route(src: Coord, dst: Coord) -> List[Tuple[Coord, Coord]]:
    """The XY path as a list of directed links ``(from, to)``.

    An empty list means source and destination share a router (the
    adapter-to-adapter case — no mesh link is traversed).
    """
    if src == dst:
        return []
    x, y = src
    dx, dy = dst
    hops: List[Tuple[Coord, Coord]] = []
    while x != dx:
        nx = x + (1 if dx > x else -1)
        hops.append(((x, y), (nx, y)))
        x = nx
    while y != dy:
        ny = y + (1 if dy > y else -1)
        hops.append(((x, y), (x, ny)))
        y = ny
    for (a, b) in hops:
        if not adjacent(a, b):  # pragma: no cover - defensive
            raise SimulationError(f"non-adjacent hop {a}->{b}")
    return hops


def hop_count(src: Coord, dst: Coord) -> int:
    """Manhattan distance — the number of links an XY route uses."""
    return abs(src[0] - dst[0]) + abs(src[1] - dst[1])


def _torus_step(pos: int, target: int, size: int) -> int:
    """Next coordinate along the shorter wraparound direction.

    Ties (exactly half way around) go the positive direction, keeping
    routes deterministic.
    """
    if pos == target:
        return pos
    forward = (target - pos) % size
    backward = (pos - target) % size
    if forward <= backward:
        return (pos + 1) % size
    return (pos - 1) % size


def torus_xy_route(
    src: Coord, dst: Coord, width: int, height: int
) -> List[Tuple[Coord, Coord]]:
    """Dimension-ordered route on a 2-D torus (wraparound links).

    Like :func:`xy_route` but each dimension takes the shorter way
    around the ring, so no route is longer than ``(width + height) / 2``
    hops. Still dimension-ordered, hence deadlock-free under the same
    one-link-held-at-a-time flow model.
    """
    if not (0 <= src[0] < width and 0 <= src[1] < height):
        raise SimulationError(f"source {src} outside {width}x{height} torus")
    if not (0 <= dst[0] < width and 0 <= dst[1] < height):
        raise SimulationError(f"target {dst} outside {width}x{height} torus")
    x, y = src
    hops: List[Tuple[Coord, Coord]] = []
    while x != dst[0]:
        nx = _torus_step(x, dst[0], width)
        hops.append(((x, y), (nx, y)))
        x = nx
    while y != dst[1]:
        ny = _torus_step(y, dst[1], height)
        hops.append(((x, y), (x, ny)))
        y = ny
    return hops


def torus_distance(src: Coord, dst: Coord, width: int, height: int) -> int:
    """Hop distance on the torus (per-dimension ring minimum)."""
    dx = abs(src[0] - dst[0])
    dy = abs(src[1] - dst[1])
    return min(dx, width - dx) + min(dy, height - dy)
