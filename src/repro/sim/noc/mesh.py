"""The mesh network: topology construction and packet transport.

Transport model: store-and-forward at packet granularity — a packet
occupies each link of its XY route in turn for the router hop latency
plus the payload serialization time. This is conservative relative to
wormhole cut-through (which pipelines serialization across hops) but
preserves the properties the evaluation depends on: parallel disjoint
flows, contention on shared links, and latency growing with distance —
which is what the distance-minimizing placement optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Dict, Tuple

from ...errors import ConfigurationError, SimulationError
from ...units import Clock
from ..component import Component
from ..engine import Engine
from .adapter import AdapterParams
from .packet import Packet
from .routing import torus_xy_route, xy_route
from .router import Link

Coord = Tuple[int, int]

#: The paper's router closes timing at 150 MHz (Table II).
DEFAULT_NOC_CLOCK = Clock(150_000_000, "noc@150MHz")


@dataclass(frozen=True, slots=True)
class NocParams:
    """Mesh/torus configuration."""

    width: int
    height: int
    link_width_bytes: int = 4
    hop_latency_cycles: int = 3
    max_packet_bytes: int = 4096
    adapters: AdapterParams = AdapterParams()
    #: "mesh" (open edges) or "torus" (wraparound links).
    topology: str = "mesh"
    #: "store_forward" (packets re-arbitrate per hop) or "wormhole"
    #: (a packet reserves its whole path while the body streams —
    #: lower latency, head-of-line blocking; the switching mode of the
    #: paper's router). Wormhole requires the mesh topology: on a torus
    #: it would need virtual channels to stay deadlock-free.
    transport: str = "store_forward"

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ConfigurationError("mesh dimensions must be >= 1")
        if self.link_width_bytes < 1 or self.hop_latency_cycles < 0:
            raise ConfigurationError("invalid link parameters")
        if self.max_packet_bytes < self.link_width_bytes:
            raise ConfigurationError("max packet smaller than one flit")
        if self.topology not in ("mesh", "torus"):
            raise ConfigurationError(
                f"unknown topology {self.topology!r}; use 'mesh' or 'torus'"
            )
        if self.transport not in ("store_forward", "wormhole"):
            raise ConfigurationError(
                f"unknown transport {self.transport!r}; "
                "use 'store_forward' or 'wormhole'"
            )
        if self.transport == "wormhole" and self.topology == "torus":
            raise ConfigurationError(
                "wormhole switching on a torus needs virtual channels "
                "(not modelled); use the mesh topology"
            )


class NocMesh(Component):
    """A ``width × height`` mesh of WRR routers."""

    def __init__(
        self,
        engine: Engine,
        params: NocParams,
        clock: Clock = DEFAULT_NOC_CLOCK,
        name: str = "noc",
        trace: bool = False,
    ) -> None:
        super().__init__(engine, name, clock, trace=trace)
        self.params = params
        self._pid = count()
        self.links: Dict[Tuple[Coord, Coord], Link] = {}
        wrap = params.topology == "torus"
        for y in range(params.height):
            for x in range(params.width):
                neighbours = []
                if x + 1 < params.width:
                    neighbours.append((x + 1, y))
                elif wrap and params.width > 2:
                    neighbours.append((0, y))
                if y + 1 < params.height:
                    neighbours.append((x, y + 1))
                elif wrap and params.height > 2:
                    neighbours.append((x, 0))
                for n in neighbours:
                    a, b = (x, y), n
                    for src, dst in ((a, b), (b, a)):
                        self.links[(src, dst)] = Link(
                            engine, src, dst, clock,
                            params.link_width_bytes,
                        )
        self.packets_delivered = 0
        self.bytes_delivered = 0

    def route(self, src: Coord, dst: Coord):
        """The topology's dimension-ordered route."""
        if self.params.topology == "torus":
            return torus_xy_route(
                src, dst, self.params.width, self.params.height
            )
        return xy_route(src, dst)

    def _check_coord(self, c: Coord) -> None:
        if not (0 <= c[0] < self.params.width and 0 <= c[1] < self.params.height):
            raise SimulationError(f"coordinate {c} outside mesh")

    def _chunks(self, nbytes: int) -> list:
        out = []
        remaining = int(nbytes)
        while remaining > 0:
            chunk = min(remaining, self.params.max_packet_bytes)
            out.append(chunk)
            remaining -= chunk
        return out

    def send(self, src: Coord, dst: Coord, nbytes: int, flow: str = ""):
        """Process generator: deliver ``nbytes`` from ``src`` to ``dst``.

        Large transfers are segmented into packets of at most
        ``max_packet_bytes`` so a bulk flow cannot monopolize a link for
        its whole duration — WRR interleaves competing flows at packet
        granularity, as in the real router.

        Packets travel as independent processes: every packet of the
        message is enqueued at the first link immediately (the network
        adapter's output queue holds the whole message), and each packet
        re-queues at the next hop as soon as it finishes the previous
        one. A process never *waits while holding* a link — it acquires,
        transmits, releases, then requests the next hop — so the
        transport is deadlock-free by construction, while contended
        links see the real per-input backlog the WRR arbiter needs to
        differentiate flows by weight. Per-link FIFO order within one
        input key keeps each flow's packets in order. Injection and
        ejection latency is charged once per send (head/tail); the
        adapters packetize back-to-back.
        """
        self._check_coord(src)
        self._check_coord(dst)
        if nbytes <= 0:
            raise SimulationError(f"cannot send {nbytes} bytes")
        if self.params.transport == "wormhole":
            yield from self._send_wormhole(src, dst, nbytes, flow)
            return
        adapters = self.params.adapters
        chunks = self._chunks(nbytes)
        path = self.route(src, dst)
        rec = self.recorder
        engine = self.engine
        # Injection through the kernel-side network adapter (head).
        started = self.engine.now
        inject = self.cycles(adapters.kernel_inject_cycles)
        if not engine.try_advance(inject):
            yield inject
        if rec.enabled:
            rec.activity(
                "noc", f"{self.name}.adapter", started, self.engine.now,
                f"inject:{flow}",
            )

        def packet_proc(packet: Packet):
            prev: Coord = src
            for hop_src, hop_dst in path:
                link = self.links[(hop_src, hop_dst)]
                arbiter = link.arbiter
                hold = (
                    self.cycles(self.params.hop_latency_cycles)
                    + link.serialization_seconds(packet.nbytes)
                )
                if (
                    engine.fastlane
                    and arbiter._in_use < arbiter.capacity
                    and engine.can_advance(hold)
                ):
                    # Fast lane: a free link and an empty horizon — the
                    # hop's grant→traverse→release fuses synchronously.
                    arbiter._fused_acquire()
                    self.log(f"pkt{packet.pid} {hop_src}->{hop_dst}")
                    hop_started = engine.now
                    engine.advance(hold)
                    link.record(packet.nbytes)
                    if rec.enabled:
                        rec.activity(
                            "noc", f"noc{hop_src}->{hop_dst}",
                            hop_started, engine.now, packet.flow,
                        )
                    arbiter.release()
                    prev = hop_src
                    continue
                yield arbiter.request(key=prev)
                try:
                    self.log(f"pkt{packet.pid} {hop_src}->{hop_dst}")
                    hop_started = self.engine.now
                    yield hold
                    link.record(packet.nbytes)
                    if rec.enabled:
                        rec.activity(
                            "noc", f"noc{hop_src}->{hop_dst}",
                            hop_started, self.engine.now, packet.flow,
                        )
                finally:
                    arbiter.release()
                prev = hop_src
            self.packets_delivered += 1
            self.bytes_delivered += packet.nbytes

        procs = [
            self.engine.process(
                packet_proc(Packet(next(self._pid), src, dst, chunk, flow=flow)),
                name=f"pkt:{flow}",
            )
            for chunk in chunks
        ]
        if procs:
            yield procs
        # Ejection through the memory-side network adapter (tail).
        started = self.engine.now
        eject = self.cycles(adapters.memory_eject_cycles)
        if not engine.try_advance(eject):
            yield eject
        if rec.enabled:
            rec.activity(
                "noc", f"{self.name}.adapter", started, self.engine.now,
                f"eject:{flow}",
            )

    def _send_wormhole(self, src: Coord, dst: Coord, nbytes: int, flow: str):
        """Wormhole switching: each packet reserves its path end to end.

        The head flit advances hop by hop, acquiring links *while
        holding the upstream ones* — safe on the mesh because XY routing
        acquires links in a global dimension order (the classic
        wormhole deadlock-freedom argument). Once the head arrives, the
        body streams through the reserved path in one serialization
        time; the tail then releases every link. Lower latency than
        store-and-forward (serialization is paid once, not per hop) at
        the price of head-of-line blocking, which the fidelity bench
        demonstrates.
        """
        adapters = self.params.adapters
        path = self.route(src, dst)
        rec = self.recorder
        engine = self.engine
        started = self.engine.now
        inject = self.cycles(adapters.kernel_inject_cycles)
        if not engine.try_advance(inject):
            yield inject
        if rec.enabled:
            rec.activity(
                "noc", f"{self.name}.adapter", started, self.engine.now,
                f"inject:{flow}",
            )
        for chunk in self._chunks(nbytes):
            packet = Packet(next(self._pid), src, dst, chunk, flow=flow)
            held: list = []
            try:
                prev: Coord = src
                for hop_src, hop_dst in path:
                    link = self.links[(hop_src, hop_dst)]
                    yield link.arbiter.request(key=prev)
                    held.append(link)
                    self.log(f"worm{packet.pid} head {hop_src}->{hop_dst}")
                    hop_started = self.engine.now
                    # Fast lane: the head-advance latency is a pure
                    # wait (links stay held either way).
                    hop = self.cycles(self.params.hop_latency_cycles)
                    if not engine.try_advance(hop):
                        yield hop
                    if rec.enabled:
                        rec.activity(
                            "noc", f"noc{hop_src}->{hop_dst}",
                            hop_started, self.engine.now, flow,
                        )
                    prev = hop_src
                if held:
                    ser_started = self.engine.now
                    ser = held[0].serialization_seconds(chunk)
                    if not engine.try_advance(ser):
                        yield ser
                    if rec.enabled and path:
                        ser_src, ser_dst = path[0]
                        rec.activity(
                            "noc", f"noc{ser_src}->{ser_dst}",
                            ser_started, self.engine.now, flow,
                        )
                for link in held:
                    link.record(chunk)
            finally:
                for link in reversed(held):
                    link.arbiter.release()
            self.packets_delivered += 1
            self.bytes_delivered += chunk
        started = self.engine.now
        eject = self.cycles(adapters.memory_eject_cycles)
        if not engine.try_advance(eject):
            yield eject
        if rec.enabled:
            rec.activity(
                "noc", f"{self.name}.adapter", started, self.engine.now,
                f"eject:{flow}",
            )

    def transfer_seconds(self, src: Coord, dst: Coord, nbytes: int) -> float:
        """Uncontended latency of one transfer (for model cross-checks).

        With packet pipelining on the first hop, packet ``i+1`` enters
        the route as soon as packet ``i`` leaves the first link, so the
        total is head + first-packet full traversal + one link slot per
        further packet + tail.
        """
        hops = len(self.route(src, dst))
        adapters = self.params.adapters
        chunks = self._chunks(nbytes)

        def ser(chunk: int) -> float:
            return self.cycles(-(-chunk // self.params.link_width_bytes))

        def slot(chunk: int) -> float:
            return self.cycles(self.params.hop_latency_cycles) + ser(chunk)

        total = self.cycles(
            adapters.kernel_inject_cycles + adapters.memory_eject_cycles
        )
        if not chunks:
            return total
        if self.params.transport == "wormhole":
            # Serialization is paid once per packet, not per hop.
            for chunk in chunks:
                total += hops * self.cycles(self.params.hop_latency_cycles)
                total += ser(chunk)
            return total
        total += hops * slot(chunks[0])
        for chunk in chunks[1:]:
            total += slot(chunk)
        return total
