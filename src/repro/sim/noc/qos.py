"""QoS weight assignment for the WRR routers.

The router the paper adapts (Heisswolf et al.) exists precisely to give
quality-of-service guarantees through weighted round-robin scheduling.
This module computes link-arbitration weights from the *planned* flows:
each directed mesh link gets, per upstream input (the WRR key used by
:meth:`~repro.sim.noc.mesh.NocMesh.send`), a weight proportional to the
bytes that input is expected to push through the link. Heavy flows then
receive proportionally more grant slots when contended, which shortens
the makespan of traffic-skewed systems without starving light flows.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Tuple

from ...core.plan import InterconnectPlan, memory_node
from ...errors import ConfigurationError
from .mesh import NocMesh
from .routing import xy_route

Coord = Tuple[int, int]
LinkKey = Tuple[Coord, Coord]


def flow_link_loads(plan: InterconnectPlan) -> Dict[LinkKey, Dict[Coord, int]]:
    """Bytes each (link, upstream-input) pair carries under the plan.

    The upstream input of a packet's first hop is its source router
    (local injection port); afterwards it is the previous router —
    matching the keys the mesh transport requests links with.
    """
    if plan.noc is None:
        return {}
    positions = plan.noc.placement.positions
    loads: Dict[LinkKey, Dict[Coord, int]] = {}
    for producer, consumer, nbytes in plan.noc.edges:
        src = positions[producer]
        dst = positions[memory_node(consumer)]
        prev: Coord = src
        for hop_src, hop_dst in xy_route(src, dst):
            per_input = loads.setdefault((hop_src, hop_dst), {})
            per_input[prev] = per_input.get(prev, 0) + nbytes
            prev = hop_src
    return loads


def weights_from_loads(
    loads: Mapping[LinkKey, Mapping[Coord, int]],
    max_weight: int = 8,
) -> Dict[LinkKey, Dict[Coord, int]]:
    """Quantize byte loads into integer WRR weights in ``[1, max_weight]``.

    Weights scale linearly with each input's share of the link's total
    load; an input with no planned traffic keeps the default weight 1
    (nothing is starved).
    """
    if max_weight < 1:
        raise ConfigurationError(f"max_weight must be >= 1, got {max_weight}")
    out: Dict[LinkKey, Dict[Coord, int]] = {}
    for link, per_input in loads.items():
        heaviest = max(per_input.values())
        if heaviest <= 0:
            continue
        out[link] = {
            key: max(1, math.ceil(max_weight * nbytes / heaviest))
            for key, nbytes in per_input.items()
        }
    return out


def apply_qos_weights(mesh: NocMesh, plan: InterconnectPlan, max_weight: int = 8) -> int:
    """Configure a mesh's link arbiters from the plan's flows.

    Returns the number of links that received non-default weights.
    Links the plan never uses keep plain round-robin.
    """
    weights = weights_from_loads(flow_link_loads(plan), max_weight=max_weight)
    configured = 0
    for link_key, per_input in weights.items():
        link = mesh.links.get(link_key)
        if link is None:
            raise ConfigurationError(
                f"plan references link {link_key} absent from the mesh"
            )
        link.arbiter.weights.update(per_input)
        configured += 1
    return configured
