"""Network adapter parameters.

The paper develops two adapters (Table II): one for HW accelerators
(396 LUTs / 426 regs) and a lighter one for local memories (60 / 114).
Functionally both packetize/depacketize; the model charges a fixed
per-packet latency on injection (kernel NA) and ejection (memory NA).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class AdapterParams:
    """Per-packet latencies of the two adapter types (in NoC cycles)."""

    kernel_inject_cycles: int = 4
    memory_eject_cycles: int = 2

    def __post_init__(self) -> None:
        if self.kernel_inject_cycles < 0 or self.memory_eject_cycles < 0:
            raise ConfigurationError("adapter latencies must be >= 0")
