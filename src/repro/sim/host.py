"""Host processor model.

The host runs the non-accelerated application parts, stages kernel input
data and collects results. Computation on the host is modelled as pure
delay (its internals are irrelevant to the interconnect study); what
matters is that host-mediated data movement serializes on the bus.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..units import HOST_CLOCK, Clock
from .component import Component
from .engine import Engine


class HostProcessor(Component):
    """The PowerPC-like host: software delay + orchestration."""

    def __init__(
        self,
        engine: Engine,
        clock: Clock = HOST_CLOCK,
        name: str = "host",
        trace: bool = False,
    ) -> None:
        super().__init__(engine, name, clock, trace=trace)
        self.software_seconds = 0.0

    def run_software(self, seconds: float):
        """Process generator: execute host-resident code for ``seconds``."""
        if seconds < 0:
            raise ConfigurationError(f"negative software time {seconds}")
        self.log(f"software {seconds:.6f}s")
        self.software_seconds += seconds
        if seconds > 0:
            yield seconds
