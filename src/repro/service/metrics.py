"""Lightweight counters/timers for the design service.

No external metrics stack: a registry of named monotonic counters and
named timers (observation lists), with nearest-rank percentiles and a
plain-text snapshot renderer for ``repro sweep --stats``-style output.
Everything is in-process and deterministic — timers record whatever the
caller observed, the registry never reads the clock itself.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class MetricsRegistry:
    """Named counters and latency timers."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, List[float]] = {}

    # -- counters -----------------------------------------------------------
    def incr(self, name: str, by: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + by

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    # -- timers -------------------------------------------------------------
    def observe(self, name: str, seconds: float) -> None:
        self._timers.setdefault(name, []).append(seconds)

    def timer_stats(self, name: str) -> Dict[str, float]:
        obs = self._timers.get(name, [])
        if not obs:
            return {"count": 0, "mean_s": 0.0, "p50_s": 0.0, "p95_s": 0.0}
        return {
            "count": len(obs),
            "mean_s": sum(obs) / len(obs),
            "p50_s": percentile(obs, 50),
            "p95_s": percentile(obs, 95),
        }

    # -- snapshots -----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time view: all counters plus per-timer stats."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "timers": {
                name: self.timer_stats(name) for name in sorted(self._timers)
            },
        }

    def render(self, extra: Tuple[Tuple[str, Any], ...] = ()) -> str:
        """Human-readable snapshot; ``extra`` rows are appended verbatim."""
        lines = ["service metrics"]
        snap = self.snapshot()
        for name, value in snap["counters"].items():
            lines.append(f"  {name:<28} {value}")
        for name, stats in snap["timers"].items():
            lines.append(
                f"  {name:<28} n={stats['count']}"
                f" mean={stats['mean_s'] * 1e3:.2f}ms"
                f" p50={stats['p50_s'] * 1e3:.2f}ms"
                f" p95={stats['p95_s'] * 1e3:.2f}ms"
            )
        for name, value in extra:
            if isinstance(value, float):
                lines.append(f"  {name:<28} {value:.4f}")
            else:
                lines.append(f"  {name:<28} {value}")
        return "\n".join(lines)
