"""Counters, gauges, timers and histograms for the service and obs layers.

No external metrics stack: a registry of named monotonic counters,
last-value gauges, timers (observation lists) and bucketed histograms,
with nearest-rank percentiles and a plain-text snapshot renderer for
``repro sweep --stats``-style output. Everything is in-process and
deterministic — timers record whatever the caller observed, the registry
never reads the clock itself (use :func:`repro.obs.timed` for that).

Labels follow the Prometheus convention: a labelled series is keyed by
``name{k="v",...}`` with label names sorted, so the registry's plain
string keys are already valid exposition identities
(:func:`repro.obs.export.to_prometheus` renders them verbatim).

Concurrency: all mutation goes through one :class:`threading.Lock`, so
callbacks from thread pools (``ProcessPoolExecutor`` delivers results on
arbitrary threads) cannot lose updates. Worker *processes* keep their own
registry and ship :meth:`MetricsRegistry.dump` back for
:meth:`MetricsRegistry.merge` — counters add, timers concatenate, gauges
take the incoming value (latest wins), histogram buckets add.

Empty-series policy (documented, NaN-free): ``percentile([])`` and every
stat of an unobserved timer return ``0.0`` with ``count == 0`` — callers
that must distinguish "no data" from "zero latency" check the count;
``None``/NaN never appear in snapshots, keeping them JSON/CSV-safe.
"""

from __future__ import annotations

import math
import threading
from fractions import Fraction
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..obs.export import escape_label_value

#: Default histogram bucket upper bounds (seconds) — job latencies.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)


def metric_key(name: str, labels: Optional[Mapping[str, Any]] = None) -> str:
    """Series key: ``name`` or ``name{k="v",...}`` with sorted labels.

    Label values are escaped per the Prometheus exposition format
    (backslash, quote, newline), so a value like a kernel named
    ``a"b`` cannot corrupt the series identity or the exported text.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{escape_label_value(labels[k])}"' for k in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values``.

    Edge-case policy:

    * ``q`` must lie in ``[0, 100]`` — anything else raises
      :class:`~repro.errors.ConfigurationError`;
    * ``q=0`` returns the minimum, ``q=100`` the maximum;
    * an empty input returns ``0.0`` (never ``NaN``/``None``) — the
      companion ``count`` field is how callers detect "no data".

    The rank ``⌈q·n/100⌉`` is computed in exact rational arithmetic:
    binary floating point cannot represent e.g. ``55/100``, and the
    upward rounding error (``55 * 100 / 100.0 -> 55.000000000000007``)
    would push the ceiling one rank too high exactly at the boundaries
    the nearest-rank definition cares about.
    """
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(Fraction(q) * len(ordered) / 100))
    return ordered[min(rank, len(ordered)) - 1]


def _timer_stats_of(obs: Sequence[float]) -> Dict[str, float]:
    """Stats of one timer's (already copied) observation list."""
    if not obs:
        return {
            "count": 0, "mean_s": 0.0,
            "p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0,
        }
    return {
        "count": len(obs),
        "mean_s": sum(obs) / len(obs),
        "p50_s": percentile(obs, 50),
        "p95_s": percentile(obs, 95),
        "p99_s": percentile(obs, 99),
    }


class MetricsRegistry:
    """Named counters, gauges, latency timers and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, List[float]] = {}
        #: key -> {"bounds": tuple, "counts": per-bucket list (+overflow),
        #:         "sum": float, "count": int}
        self._hists: Dict[str, Dict[str, Any]] = {}

    # -- counters -----------------------------------------------------------
    def incr(
        self, name: str, by: int = 1,
        labels: Optional[Mapping[str, Any]] = None,
    ) -> None:
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + by

    def counter(
        self, name: str, labels: Optional[Mapping[str, Any]] = None
    ) -> int:
        return self._counters.get(metric_key(name, labels), 0)

    # -- gauges -------------------------------------------------------------
    def gauge(
        self, name: str, value: float,
        labels: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Set a last-value-wins measurement (utilization, queue depth)."""
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def gauge_value(
        self, name: str, labels: Optional[Mapping[str, Any]] = None
    ) -> float:
        return self._gauges.get(metric_key(name, labels), 0.0)

    # -- timers -------------------------------------------------------------
    def observe(
        self, name: str, seconds: float,
        labels: Optional[Mapping[str, Any]] = None,
    ) -> None:
        key = metric_key(name, labels)
        with self._lock:
            self._timers.setdefault(key, []).append(seconds)

    def timer_stats(
        self, name: str, labels: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, float]:
        """Count/mean/p50/p95/p99; all-zero (count 0) when unobserved."""
        with self._lock:
            obs = list(self._timers.get(metric_key(name, labels), ()))
        return _timer_stats_of(obs)

    # -- histograms ---------------------------------------------------------
    def hist(
        self, name: str, value: float,
        labels: Optional[Mapping[str, Any]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Record ``value`` into a bucketed histogram.

        Bucket bounds are fixed by the first observation of a series;
        later observations with different bounds are rejected loudly.
        """
        key = metric_key(name, labels)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds):
            raise ConfigurationError(f"histogram buckets must be sorted: {bounds}")
        with self._lock:
            h = self._hists.get(key)
            if h is None:
                h = {
                    "bounds": bounds,
                    "counts": [0] * (len(bounds) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
                self._hists[key] = h
            elif h["bounds"] != bounds:
                raise ConfigurationError(
                    f"histogram {key!r} bounds changed: "
                    f"{h['bounds']} -> {bounds}"
                )
            idx = len(h["bounds"])
            for i, bound in enumerate(h["bounds"]):
                if value <= bound:
                    idx = i
                    break
            h["counts"][idx] += 1
            h["sum"] += value
            h["count"] += 1

    @staticmethod
    def _hist_snapshot(h: Dict[str, Any]) -> Dict[str, Any]:
        """Cumulative-bucket view (Prometheus ``le`` semantics)."""
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, count in zip(h["bounds"], h["counts"]):
            running += count
            cumulative[repr(bound)] = running
        cumulative["+Inf"] = running + h["counts"][-1]
        return {"count": h["count"], "sum": h["sum"], "buckets": cumulative}

    # -- snapshots -----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time view: counters, gauges, timer stats, histograms.

        Everything is *copied under one lock acquisition* — including
        the raw timer observation lists, whose stats are then computed
        from the copies. The historical version re-read the live lists
        after releasing the lock, so a concurrent ``observe`` could
        interleave half-updated series into one scrape (and mutate a
        list mid-``sorted``); the concurrent-scrape regression test in
        ``tests/test_runtime_obs.py`` pins the fix.
        """
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            gauges = dict(sorted(self._gauges.items()))
            timers = {
                name: list(obs)
                for name, obs in sorted(self._timers.items())
            }
            hists = {
                name: self._hist_snapshot(h)
                for name, h in sorted(self._hists.items())
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "timers": {
                name: _timer_stats_of(obs) for name, obs in timers.items()
            },
            "histograms": hists,
        }

    def dump(self) -> Dict[str, Any]:
        """Raw, lossless state for cross-process :meth:`merge` transport."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {k: list(v) for k, v in self._timers.items()},
                "histograms": {
                    k: {
                        "bounds": list(h["bounds"]),
                        "counts": list(h["counts"]),
                        "sum": h["sum"],
                        "count": h["count"],
                    }
                    for k, h in self._hists.items()
                },
            }

    def merge(self, other: Mapping[str, Any]) -> None:
        """Aggregate another registry's :meth:`dump` into this one.

        Counters add; timers concatenate raw observations (so
        percentiles stay exact); gauges take the incoming value;
        histograms add bucket-wise (bounds must match).
        """
        with self._lock:
            for key, value in other.get("counters", {}).items():
                self._counters[key] = self._counters.get(key, 0) + value
            for key, value in other.get("gauges", {}).items():
                self._gauges[key] = float(value)
            for key, obs in other.get("timers", {}).items():
                self._timers.setdefault(key, []).extend(obs)
            for key, h in other.get("histograms", {}).items():
                bounds = tuple(float(b) for b in h["bounds"])
                mine = self._hists.get(key)
                if mine is None:
                    self._hists[key] = {
                        "bounds": bounds,
                        "counts": list(h["counts"]),
                        "sum": h["sum"],
                        "count": h["count"],
                    }
                    continue
                if mine["bounds"] != bounds:
                    raise ConfigurationError(
                        f"cannot merge histogram {key!r}: bounds differ"
                    )
                mine["counts"] = [
                    a + b for a, b in zip(mine["counts"], h["counts"])
                ]
                mine["sum"] += h["sum"]
                mine["count"] += h["count"]

    def render(self, extra: Tuple[Tuple[str, Any], ...] = ()) -> str:
        """Human-readable snapshot; ``extra`` rows are appended verbatim."""
        lines = ["service metrics"]
        snap = self.snapshot()
        for name, value in snap["counters"].items():
            lines.append(f"  {name:<28} {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"  {name:<28} {value:.4f}")
        for name, stats in snap["timers"].items():
            lines.append(
                f"  {name:<28} n={stats['count']}"
                f" mean={stats['mean_s'] * 1e3:.2f}ms"
                f" p50={stats['p50_s'] * 1e3:.2f}ms"
                f" p95={stats['p95_s'] * 1e3:.2f}ms"
                f" p99={stats['p99_s'] * 1e3:.2f}ms"
            )
        for name, h in snap["histograms"].items():
            lines.append(
                f"  {name:<28} n={h['count']} sum={h['sum']:.4f}"
            )
        for name, value in extra:
            if isinstance(value, float):
                lines.append(f"  {name:<28} {value:.4f}")
            else:
                lines.append(f"  {name:<28} {value}")
        return "\n".join(lines)
