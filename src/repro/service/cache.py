"""Two-tier result cache keyed by job fingerprint.

Tier 1 is an in-process LRU (bounded, eviction-counted); tier 2 is an
optional on-disk JSON store (one ``<fingerprint>.json`` file per entry,
written through :func:`repro.io.save_json` so entries carry the standard
``kind``/``version`` envelope). Disk entries from an older
:data:`repro.io.FORMAT_VERSION` — or corrupt/mismatched files — are
treated as misses, counted as invalidations, and deleted.

The cached value is the flat :func:`repro.flow.result_summary` dict: it
round-trips through JSON bit-exactly (floats included), which is what
lets a cache-served sweep produce byte-identical CSV to a fresh run.
"""

from __future__ import annotations

import pathlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from .. import io as reproio
from ..errors import CacheError

#: Document kind stamped into on-disk cache entries.
RESULT_KIND = "design-result"


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for one :class:`ResultCache`."""

    hits_memory: int = 0
    hits_disk: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hits(self) -> int:
        return self.hits_memory + self.hits_disk

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits / lookups; 0.0 before any lookup."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_ratio": self.hit_ratio,
        }


class ResultCache:
    """LRU memory tier over an optional JSON directory tier."""

    def __init__(
        self,
        capacity: int = 1024,
        cache_dir: Optional[Union[str, pathlib.Path]] = None,
    ) -> None:
        if capacity < 1:
            raise CacheError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.cache_dir: Optional[pathlib.Path] = None
        if cache_dir is not None:
            self.cache_dir = pathlib.Path(cache_dir)
            try:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise CacheError(
                    f"cannot create cache directory {self.cache_dir}: {exc}"
                ) from exc
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        # One lock covers both tiers *and* the stats counters, so
        # hit/miss/store accounting stays exact when many threads (the
        # server's batcher plus streaming sweeps) use one cache.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def _disk_path(self, fingerprint: str) -> pathlib.Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{fingerprint}.json"

    def _load_disk(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """Read one disk entry; invalidate anything unusable."""
        if self.cache_dir is None:
            return None
        path = self._disk_path(fingerprint)
        if not path.exists():
            return None
        try:
            doc = reproio.load_json(path)
            reproio.validate_document(doc, RESULT_KIND)
            if doc.get("fingerprint") != fingerprint:
                raise CacheError(f"fingerprint mismatch in {path.name}")
            return doc["summary"]
        except Exception:
            # Stale format version, truncated write, hand-edited file —
            # all the same to us: drop it and recompute.
            self.stats.invalidations += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """Look up a result summary; ``None`` on miss."""
        with self._lock:
            if fingerprint in self._memory:
                self._memory.move_to_end(fingerprint)
                self.stats.hits_memory += 1
                return self._memory[fingerprint]
            summary = self._load_disk(fingerprint)
            if summary is not None:
                self.stats.hits_disk += 1
                self._remember(fingerprint, summary)
                return summary
            self.stats.misses += 1
            return None

    def peek(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """Side-effect-free lookup: no stats, no LRU touch.

        The server's ``GET /v1/jobs/<fingerprint>`` endpoint uses this
        so read-only job polling cannot perturb the hit/miss accounting
        the concurrency tests (and capacity planning) rely on.
        """
        with self._lock:
            if fingerprint in self._memory:
                return self._memory[fingerprint]
        if self.cache_dir is None:
            return None
        path = self._disk_path(fingerprint)
        if not path.exists():
            return None
        try:
            doc = reproio.load_json(path)
            reproio.validate_document(doc, RESULT_KIND)
            if doc.get("fingerprint") != fingerprint:
                return None
            summary: Dict[str, Any] = doc["summary"]
            return summary
        except Exception:
            return None

    def put(self, fingerprint: str, summary: Dict[str, Any]) -> None:
        """Store a result summary in both tiers."""
        with self._lock:
            self.stats.stores += 1
            self._remember(fingerprint, summary)
            if self.cache_dir is not None:
                reproio.save_json(
                    {
                        "kind": RESULT_KIND,
                        "version": reproio.FORMAT_VERSION,
                        "fingerprint": fingerprint,
                        "summary": summary,
                    },
                    self._disk_path(fingerprint),
                )

    def _remember(self, fingerprint: str, summary: Dict[str, Any]) -> None:
        self._memory[fingerprint] = summary
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def clear_memory(self) -> None:
        """Drop the memory tier (disk entries survive)."""
        with self._lock:
            self._memory.clear()

    def close(self) -> None:
        """Release the memory tier.

        Disk writes are write-through (`put` persists immediately), so
        closing only drops the LRU; it exists so
        :meth:`repro.service.DesignService.close` has one flush point
        and is safe to call more than once.
        """
        self.clear_memory()
