"""Design-service layer: cached, parallel experiment execution.

Turns the one-shot :func:`repro.flow.run_experiment` flow into a
throughput-oriented engine for high-volume studies:

* :class:`DesignJob` — immutable, content-addressed job spec;
* :class:`ResultCache` — two-tier (LRU + on-disk JSON) result cache;
* :class:`JobRunner` / :class:`ExecutorConfig` — parallel execution
  with timeout, retry, and serial fallback;
* :class:`MetricsRegistry` — counters and latency percentiles;
* :class:`DesignService` — the facade (``submit`` / ``submit_many`` /
  ``stats``) that :func:`repro.sweep.run_sweep` and the ``repro sweep``
  CLI execute through.
"""

from .api import DesignService, JobResult
from .cache import CacheStats, ResultCache
from .executor import ExecutorConfig, JobOutcome, JobRunner, execute_job, run_job_summary
from .jobs import DesignJob, job_for_point
from .metrics import MetricsRegistry, percentile

__all__ = [
    "CacheStats",
    "DesignJob",
    "DesignService",
    "ExecutorConfig",
    "JobOutcome",
    "JobResult",
    "JobRunner",
    "MetricsRegistry",
    "ResultCache",
    "execute_job",
    "job_for_point",
    "percentile",
    "run_job_summary",
]
