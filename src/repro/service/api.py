"""The design-service facade: cached, coalesced, parallel job execution.

:class:`DesignService` is the throughput-oriented front door to the
experiment flow. Callers describe work as immutable
:class:`~repro.service.jobs.DesignJob` specs; the service

* answers repeated jobs from the two-tier result cache,
* coalesces duplicate jobs inside one ``submit_many`` batch so each
  distinct fingerprint is computed exactly once,
* fans the remaining distinct jobs out over the parallel
  :class:`~repro.service.executor.JobRunner`,
* and keeps counters/latency metrics for ``stats()``.

The unit of result is the flat :func:`repro.flow.result_summary` dict;
serial in-process execution additionally carries the full
:class:`~repro.flow.ExperimentResult` through (``JobResult.result``)
for callers — like the default sweep path — that want the rich object.
"""

from __future__ import annotations

import pathlib
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..analyze import LINT_KIND
from ..errors import JobExecutionError, ServiceError
from ..flow import ExperimentResult
from ..io import FORMAT_VERSION, save_json
from ..obs.profile.report import PROFILE_SET_KIND
from ..obs.runtime.events import NULL_LOG, EventLog
from ..obs.trace import Tracer, active
from .cache import ResultCache
from .executor import ExecutorConfig, JobRunner
from .jobs import DesignJob
from .metrics import MetricsRegistry


@dataclass(frozen=True)
class JobResult:
    """One job's outcome as served to the caller."""

    job: DesignJob
    fingerprint: str
    summary: Dict[str, Any]
    #: Served from the result cache (no computation this call).
    cached: bool = False
    #: Deduplicated against an identical job earlier in the same batch.
    coalesced: bool = False
    attempts: int = 0
    duration_s: float = 0.0
    #: Full result object; ``None`` for cached/pool-computed jobs.
    result: Optional[ExperimentResult] = None
    #: Simulation profiles (JSON-safe dicts keyed by system label);
    #: populated only for freshly computed jobs of a profiling service.
    profiles: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Serialized static-analysis report; populated only for freshly
    #: computed jobs of a linting service (``lint_dir`` set).
    lint: Optional[Dict[str, Any]] = None
    #: Collapsed-stack wall-clock samples; populated only for freshly
    #: computed jobs of a sampling service (``sample_interval_s`` set).
    samples: Optional[str] = None


class DesignService:
    """Facade tying jobs, cache, executor, and metrics together."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        cache_dir: Optional[Union[str, pathlib.Path]] = None,
        executor_config: Optional[ExecutorConfig] = None,
        runner: Optional[Callable[[DesignJob], Dict[str, Any]]] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        profile_dir: Optional[Union[str, pathlib.Path]] = None,
        lint_dir: Optional[Union[str, pathlib.Path]] = None,
        events: EventLog = NULL_LOG,
        sim_backend: Optional[str] = None,
        sample_interval_s: Optional[float] = None,
    ) -> None:
        if executor_config is None:
            executor_config = ExecutorConfig(jobs=jobs)
        if sim_backend is not None:
            # Fail loudly at construction on a typo'd backend name; the
            # *symbolic* name (possibly "auto") is what travels to the
            # workers, so "auto" resolves against each worker's own
            # numpy availability.
            from ..sim.backend import resolve_backend

            resolve_backend(sim_backend)
        #: Simulation backend forwarded to every executed job. It never
        #: touches DesignJob or its fingerprint: both backends are
        #: proven byte-identical, so cached summaries remain valid no
        #: matter which backend wrote them.
        self.sim_backend = sim_backend
        self.cache = cache if cache is not None else ResultCache(cache_dir=cache_dir)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = active(tracer)
        #: Runtime event log (cache hits/misses, pool recycles). The
        #: null default keeps the batch hot path allocation-free when
        #: nobody is listening; the server injects its live log.
        self.events = events
        #: When set, every freshly computed job writes its simulation
        #: profiles to ``<profile_dir>/<fingerprint>.profile.json``.
        #: Cache hits produce no profiles — the summary cache predates
        #: them and a hit runs no simulation to profile.
        self.profile_dir = (
            pathlib.Path(profile_dir) if profile_dir is not None else None
        )
        #: When set, every freshly computed job runs the static analyzer
        #: and writes its report to ``<lint_dir>/<fingerprint>.lint.json``.
        #: Cache hits write nothing, for the same reason as profiles.
        self.lint_dir = (
            pathlib.Path(lint_dir) if lint_dir is not None else None
        )
        self._runner = JobRunner(
            executor_config,
            runner=runner,
            tracer=self.tracer if self.tracer.enabled else None,
            metrics=self.metrics if self.tracer.enabled else None,
            profile=self.profile_dir is not None,
            lint=self.lint_dir is not None,
            events=self.events,
            sim_backend=sim_backend,
            sample_interval_s=sample_interval_s,
        )
        # Cross-thread duplicate suppression: fingerprint -> Future of
        # the summary being computed by some other thread right now.
        # submit_many joins these instead of recomputing, so a flood of
        # identical requests (the server's hot path) costs one pipeline
        # run no matter how many threads carry it.
        self._inflight: Dict[str, "Future[Dict[str, Any]]"] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Drain the worker pool and flush the cache; idempotent.

        After closing, :meth:`submit`/:meth:`submit_many` raise
        :class:`~repro.errors.ServiceError`. The runner's process pool
        is shut down with ``wait=True`` so no worker outlives the
        service (the leak repeated open/close used to expose).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._runner.close()
        self.cache.close()

    def __enter__(self) -> "DesignService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @property
    def execution_mode(self) -> str:
        """How the last batch actually ran: ``"serial"``/``"parallel"``."""
        return self._runner.last_mode

    def attach_events(self, events: EventLog) -> None:
        """Point the service (and its runner) at a live event log.

        Used by the server to share one log across the whole ring when
        the service was constructed with the null default.
        """
        self.events = events
        self._runner.events = events

    def submit(self, job: DesignJob) -> JobResult:
        """Execute (or serve from cache) one job."""
        return self.submit_many([job])[0]

    def submit_many(
        self,
        jobs: Sequence[DesignJob],
        trace_ids: Optional[Sequence[str]] = None,
    ) -> List[JobResult]:
        """Execute a batch; output order matches input order.

        Duplicate jobs (same fingerprint) are computed once — within the
        batch, *and* across concurrently submitting threads (a second
        thread joins the first thread's in-flight computation instead of
        repeating it). Cache hits are served without touching the
        executor. Raises :class:`~repro.errors.JobExecutionError` if any
        job exhausts its retry budget.

        ``trace_ids`` (optional, aligned with ``jobs``) carries each
        request's W3C trace id alongside the batch — never *on* the
        jobs, whose fingerprints are cache keys — so worker spans and
        cache hit/miss events join their originating request's trace.
        """
        if self._closed:
            raise ServiceError("design service is closed")
        jobs = list(jobs)
        if trace_ids is None:
            tids: List[str] = [""] * len(jobs)
        else:
            tids = ["" if t is None else str(t) for t in trace_ids]
            if len(tids) != len(jobs):
                raise ServiceError(
                    f"trace_ids length {len(tids)} does not match "
                    f"{len(jobs)} jobs"
                )
        self.metrics.incr("jobs_submitted", len(jobs))
        fingerprints = [job.fingerprint() for job in jobs]

        results: List[Optional[JobResult]] = [None] * len(jobs)
        to_run: List[int] = []  # index of the first occurrence per fingerprint
        first_seen: Dict[str, int] = {}
        owned: Dict[str, "Future[Dict[str, Any]]"] = {}
        joined: List[Tuple[int, "Future[Dict[str, Any]]"]] = []
        with self._lock:
            for i, (job, fp) in enumerate(zip(jobs, fingerprints)):
                if fp in first_seen:
                    self.metrics.incr("jobs_coalesced")
                    continue  # resolved from the first occurrence below
                first_seen[fp] = i
                cached = self.cache.get(fp)
                if cached is not None:
                    self.tracer.instant(
                        "cache_hit", category="service",
                        app=job.app, fingerprint=fp,
                    )
                    if self.events.enabled:
                        self.events.emit(
                            "cache_hit", trace_id=tids[i],
                            app=job.app, fingerprint=fp,
                        )
                    results[i] = JobResult(
                        job=job, fingerprint=fp, summary=cached, cached=True
                    )
                    continue
                inflight = self._inflight.get(fp)
                if inflight is not None:
                    self.metrics.incr("jobs_joined")
                    joined.append((i, inflight))
                    continue
                if self.events.enabled:
                    self.events.emit(
                        "cache_miss", trace_id=tids[i],
                        app=job.app, fingerprint=fp,
                    )
                future: "Future[Dict[str, Any]]" = Future()
                self._inflight[fp] = future
                owned[fp] = future
                to_run.append(i)

        try:
            try:
                with self.tracer.span(
                    "submit_many", category="service",
                    batch=len(jobs), distinct=len(to_run),
                ):
                    outcomes = self._runner.run(
                        [jobs[i] for i in to_run],
                        trace_ids=[tids[i] for i in to_run],
                    )
            except JobExecutionError:
                self.metrics.incr("jobs_failed")
                raise
            if self._runner.last_mode == "serial" and to_run:
                self.metrics.incr("serial_batches")

            for i, outcome in zip(to_run, outcomes):
                fp = fingerprints[i]
                self.cache.put(fp, outcome.summary)
                self.metrics.incr("jobs_completed")
                self.metrics.incr("job_attempts", outcome.attempts)
                self.metrics.observe("job_latency", outcome.duration_s)
                if self.profile_dir is not None and outcome.profiles:
                    self._persist_profiles(jobs[i], fp, outcome.profiles)
                if self.lint_dir is not None and outcome.lint is not None:
                    self._persist_lint(jobs[i], fp, outcome.lint)
                results[i] = JobResult(
                    job=jobs[i],
                    fingerprint=fp,
                    summary=outcome.summary,
                    attempts=outcome.attempts,
                    duration_s=outcome.duration_s,
                    result=outcome.result,
                    profiles=outcome.profiles,
                    lint=outcome.lint,
                    samples=outcome.samples,
                )
                owned[fp].set_result(outcome.summary)
        except BaseException as exc:
            # Resolve owned futures (with the real failure) *before*
            # blocking on other threads' futures below — that ordering
            # is what makes cross-thread joining deadlock-free.
            with self._lock:
                for fp, future in owned.items():
                    self._inflight.pop(fp, None)
                    if not future.done():
                        future.set_exception(exc)
            raise
        else:
            with self._lock:
                for fp in owned:
                    self._inflight.pop(fp, None)

        for i, future in joined:
            summary = future.result()  # re-raises the owner's failure
            results[i] = JobResult(
                job=jobs[i],
                fingerprint=fingerprints[i],
                summary=summary,
                coalesced=True,
            )

        # Resolve in-batch duplicates from their representative.
        for i, fp in enumerate(fingerprints):
            if results[i] is None:
                rep = results[first_seen[fp]]
                assert rep is not None
                results[i] = JobResult(
                    job=jobs[i],
                    fingerprint=fp,
                    summary=rep.summary,
                    cached=rep.cached,
                    coalesced=True,
                    result=rep.result,
                )
        return [r for r in results if r is not None]

    def _persist_profiles(
        self, job: DesignJob, fingerprint: str,
        profiles: Dict[str, Dict[str, Any]],
    ) -> pathlib.Path:
        """Write one job's profile set under :attr:`profile_dir`."""
        assert self.profile_dir is not None
        self.profile_dir.mkdir(parents=True, exist_ok=True)
        path = self.profile_dir / f"{fingerprint}.profile.json"
        save_json(
            {
                "kind": PROFILE_SET_KIND,
                "version": FORMAT_VERSION,
                "app": job.app,
                "fingerprint": fingerprint,
                "profiles": profiles,
            },
            path,
        )
        self.metrics.incr("profiles_persisted")
        return path

    def _persist_lint(
        self, job: DesignJob, fingerprint: str, lint: Dict[str, Any]
    ) -> pathlib.Path:
        """Write one job's lint report under :attr:`lint_dir`."""
        assert self.lint_dir is not None
        self.lint_dir.mkdir(parents=True, exist_ok=True)
        path = self.lint_dir / f"{fingerprint}.lint.json"
        save_json(
            {
                "kind": LINT_KIND,
                "version": FORMAT_VERSION,
                "app": job.app,
                "fingerprint": fingerprint,
                "report": lint,
            },
            path,
        )
        self.metrics.incr("lints_persisted")
        return path

    # -- observability -----------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Structured snapshot: metrics registry + cache accounting."""
        snap = self.metrics.snapshot()
        snap["cache"] = self.cache.stats.as_dict()
        snap["last_mode"] = self._runner.last_mode
        return snap

    def render_stats(self) -> str:
        """Text snapshot for CLI ``--stats`` output."""
        cache = self.cache.stats
        extra = (
            ("cache_hits", cache.hits),
            ("cache_misses", cache.misses),
            ("cache_evictions", cache.evictions),
            ("cache_invalidations", cache.invalidations),
            ("cache_hit_ratio", cache.hit_ratio),
            ("execution_mode", self._runner.last_mode),
        )
        return self.metrics.render(extra)
